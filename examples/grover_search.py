"""Grover's database search, simulated exactly (paper benchmark 1).

Searches a database of 2^n elements for one marked entry, compares the
exact algebraic and numerical simulations, and samples measurement
outcomes from the final decision diagram.

Run:  python examples/grover_search.py [num_qubits] [marked]
"""

import sys

from repro import Simulator, algebraic_manager
from repro.algorithms.grover import (
    grover_circuit,
    optimal_iterations,
    success_probability_bound,
)
from repro.sim.measure import sample_counts


def main() -> None:
    num_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    marked = int(sys.argv[2]) if len(sys.argv) > 2 else (1 << num_qubits) * 2 // 3

    iterations = optimal_iterations(num_qubits)
    circuit = grover_circuit(num_qubits, marked)
    print(
        f"Grover search: {1 << num_qubits} elements, marked = {marked}, "
        f"{iterations} iterations, {len(circuit)} gates"
    )

    result = Simulator(algebraic_manager(num_qubits)).run(circuit)
    probability = abs(result.amplitude(marked)) ** 2
    predicted = success_probability_bound(num_qubits, iterations)
    print(f"final DD size: {result.node_count} nodes "
          f"(state vector would be {1 << num_qubits} amplitudes)")
    print(f"P(measure marked) = {probability:.6f} (closed form: {predicted:.6f})")

    counts = sample_counts(result.manager, result.state, shots=1000, seed=7)
    top = sorted(counts.items(), key=lambda item: -item[1])[:5]
    print("top measurement outcomes over 1000 shots:")
    for index, count in top:
        tag = "  <-- marked" if index == marked else ""
        print(f"  |{index:0{num_qubits}b}> : {count}{tag}")


if __name__ == "__main__":
    main()
