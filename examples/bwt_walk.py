"""Binary Welded Tree quantum walk (paper benchmark 2).

Builds the welded-tree graph, runs the coined quantum walk exactly with
algebraic QMDDs, and tracks how probability mass spreads from the
entrance across the tree layers -- all amplitudes are exact dyadic
cyclotomic numbers.

Run:  python examples/bwt_walk.py [depth] [steps]
"""

import sys
from collections import defaultdict

from repro import Simulator, algebraic_manager
from repro.algorithms.bwt import bwt_circuit, bwt_register_sizes, welded_tree_graph


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    seed = 1

    graph, entrance, exit_vertex = welded_tree_graph(depth, seed=seed)
    print(
        f"welded tree: depth {depth}, {graph.number_of_nodes()} vertices, "
        f"{graph.number_of_edges()} edges; entrance={entrance} exit={exit_vertex}"
    )

    circuit = bwt_circuit(depth=depth, steps=steps, seed=seed)
    vertex_bits, coin_bits, _ = bwt_register_sizes(depth)
    print(f"walk circuit: {circuit.num_qubits} qubits "
          f"({vertex_bits} label + {coin_bits} coin + 1 flag), {len(circuit)} gates")

    result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
    print(f"final DD size: {result.node_count} nodes; "
          f"peak: {result.trace.peak_node_count}")

    amplitudes = result.final_amplitudes()
    shift = circuit.num_qubits - vertex_bits
    by_vertex = defaultdict(float)
    for index, amplitude in enumerate(amplitudes):
        probability = abs(amplitude) ** 2
        if probability > 1e-15:
            by_vertex[index >> shift] += probability

    # Aggregate probability by distance-from-entrance layer.
    import networkx as nx

    distances = nx.single_source_shortest_path_length(graph, entrance)
    by_layer = defaultdict(float)
    for vertex, probability in by_vertex.items():
        by_layer[distances[vertex]] += probability
    print("\nprobability by distance from the entrance:")
    for layer in sorted(by_layer):
        bar = "#" * int(60 * by_layer[layer])
        print(f"  d={layer}: {by_layer[layer]:.4f} {bar}")
    print(f"\nP(exit vertex) = {by_vertex.get(exit_vertex, 0.0):.6f}")


if __name__ == "__main__":
    main()
