"""Quickstart: exact quantum simulation with algebraic QMDDs.

Builds a small Clifford+T circuit, simulates it under the numerical
(floating point) and the algebraic (exact D[omega]/Q[omega])
representations, and shows the difference that is the subject of the
paper: the algebraic amplitudes are exact ring elements, and structural
equality checks are exact.

Run:  python examples/quickstart.py
"""

from repro import Circuit, Simulator, algebraic_manager, numeric_manager


def main() -> None:
    # A 3-qubit circuit: GHZ preparation plus a T-phase twirl.
    circuit = Circuit(3, name="quickstart")
    circuit.h(0).cx(0, 1).cx(1, 2)   # GHZ
    circuit.t(2).h(2).tdg(2).h(2)    # some non-trivial phases

    print(f"circuit: {circuit.name}, {len(circuit)} gates")
    print(f"exactly Clifford+T representable: {circuit.is_exactly_representable}")
    print()

    # --- algebraic (exact) simulation -------------------------------
    algebraic = Simulator(algebraic_manager(3)).run(circuit)
    print("algebraic (exact) simulation:")
    print(f"  final DD size: {algebraic.node_count} nodes")
    for index in range(8):
        amplitude = algebraic.manager.amplitude(algebraic.state, index)
        if not algebraic.manager.system.is_zero(amplitude):
            print(f"  amp |{index:03b}> = {amplitude}   (~ {complex(round(amplitude.to_complex().real, 6), round(amplitude.to_complex().imag, 6))})")
    print()

    # --- numerical simulation ----------------------------------------
    numeric = Simulator(numeric_manager(3, eps=0.0)).run(circuit)
    print("numerical (eps = 0) simulation:")
    print(f"  final DD size: {numeric.node_count} nodes")
    print(f"  amplitudes: {numeric.final_amplitudes().round(6)}")
    print()

    # --- the paper's point in one line --------------------------------
    # Undo the circuit: exactly the |000> state must come back.
    roundtrip = circuit + circuit.inverse()
    exact = Simulator(algebraic_manager(3)).run(roundtrip)
    is_zero_state = exact.manager.edges_equal(exact.state, exact.manager.zero_state())
    print(f"algebraic: circuit * inverse == |000> structurally: {is_zero_state}")

    floaty = Simulator(numeric_manager(3, eps=0.0)).run(roundtrip)
    is_zero_state_num = floaty.manager.edges_equal(
        floaty.state, floaty.manager.zero_state()
    )
    print(f"numeric eps=0: same check: {is_zero_state_num}  (floats miss the redundancy)")


if __name__ == "__main__":
    main()
