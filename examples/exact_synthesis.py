"""Exact single-qubit Clifford+T synthesis (the constructive side of [8]).

The paper's key fact is Giles/Selinger's theorem: a unitary is exactly
Clifford+T-implementable iff its entries lie in D[omega].  This example
shows the constructive direction -- take an exact unitary matrix, run
sde-reduction synthesis, and get back an {H, T} word that reproduces it
coefficient for coefficient.

Run:  python examples/exact_synthesis.py
"""

import random

from repro.rings.matrix2 import Matrix2
from repro.synth import synthesize_exact, word_to_matrix


def show(title: str, matrix: Matrix2) -> None:
    result = synthesize_exact(matrix)
    word = "".join(result.gates) or "(identity)"
    phase = f" * omega^{result.phase_exponent}" if result.phase_exponent else ""
    check = result.to_matrix() == matrix
    print(f"  {title}:")
    print(f"    word = {word}{phase}   (length {len(result.gates)}, "
          f"T-count {result.t_count})")
    print(f"    exact roundtrip: {check}")


def main() -> None:
    print("exact synthesis of named gates:")
    show("S gate", Matrix2.s_gate())
    show("X gate", Matrix2.x_gate())
    show("omega^3 * I (pure phase)", Matrix2.omega_phase(3))
    print()

    print("synthesising a deep scrambled unitary:")
    rng = random.Random(7)
    scramble = tuple(rng.choice("ht") for _ in range(120))
    target = word_to_matrix(scramble)
    print(f"  input: product of {len(scramble)} random H/T gates, "
          f"sde = {target.sde()}, coefficient bits = {target.max_bit_width()}")
    result = synthesize_exact(target)
    print(f"  synthesised word length: {len(result.gates)} "
          f"(T-count {result.t_count})")
    print(f"  exact roundtrip: {result.to_matrix() == target}")
    print()
    print("note: synthesis works from the *matrix alone* -- the original")
    print("gate sequence is never consulted.  This is only possible because")
    print("the matrix is stored exactly; float entries could not be reduced")
    print("in the ring.")
    print()

    # ------------------------------------------------------------------
    # Multi-qubit synthesis straight from a decision diagram.
    # ------------------------------------------------------------------
    from repro.circuits.circuit import Circuit
    from repro.dd.manager import algebraic_manager
    from repro.sim.simulator import Simulator
    from repro.synth import synthesize_from_dd

    print("multi-qubit synthesis from a matrix DD (Giles/Selinger [8]):")
    original = Circuit(3).h(0).t(0).cx(0, 1).s(1).ccx(0, 1, 2).h(2)
    manager = algebraic_manager(3)
    simulator = Simulator(manager)
    unitary = simulator.unitary(original)
    print(f"  original circuit: {len(original)} gates; unitary DD: "
          f"{manager.node_count(unitary)} nodes")
    resynthesised = synthesize_from_dd(manager, unitary)
    print(f"  resynthesised: {len(resynthesised)} (multi-controlled) gates")
    same = manager.edges_equal(unitary, simulator.unitary(resynthesised))
    print(f"  unitaries structurally identical (O(1) root check): {same}")


if __name__ == "__main__":
    main()
