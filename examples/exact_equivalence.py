"""Exact circuit equivalence checking (paper Section V-B).

The design task where exact representations shine: with algebraic
QMDDs, checking that two circuits implement the same unitary reduces to
an O(1) root-edge comparison after building the DDs -- no tolerance
tuning, no false verdicts.

Run:  python examples/exact_equivalence.py
"""

from repro import Circuit, algebraic_manager, numeric_manager
from repro.verify import check_equivalence


def show(title, first, second, **kwargs) -> None:
    verdict = check_equivalence(first, second, **kwargs)
    phase = ""
    if verdict.phase_factor is not None:
        phase = f" (global phase {verdict.phase_factor:.3f})"
    print(f"  {title}: {'EQUIVALENT' if verdict else 'different'}{phase}")


def main() -> None:
    print("exact equivalence checks (algebraic QMDD):")

    # A textbook rewrite: CX conjugated by Hadamards is CZ.
    show(
        "CX(0,1) == H(1) CZ(0,1) H(1)",
        Circuit(2).cx(0, 1),
        Circuit(2).h(1).cz(0, 1).h(1),
    )

    # SWAP as three CNOTs vs the library decomposition.
    show("SWAP == CX CX CX", Circuit(2).swap(0, 1), Circuit(2).cx(0, 1).cx(1, 0).cx(0, 1))

    # T*T == S but T != S.
    show("T T == S", Circuit(1).t(0).t(0), Circuit(1).s(0))
    show("T == S ?", Circuit(1).t(0), Circuit(1).s(0))

    # Equality up to global phase: XZXZ = -I.
    show("X Z X Z == I (up to phase)", Circuit(1).x(0).z(0).x(0).z(0), Circuit(1))

    print()
    print("the same check with floating point (eps = 0):")
    left = Circuit(1).h(0).h(0)
    right = Circuit(1)
    exact = check_equivalence(left, right)
    numeric = check_equivalence(
        left, right, manager=numeric_manager(1, eps=0.0), up_to_global_phase=False
    )
    print(f"  algebraic:  H H == I -> {bool(exact)}")
    print(f"  numeric:    H H == I -> {bool(numeric)}   "
          "(false negative: (1/sqrt2)^2 * 2 != 1 in doubles)")


if __name__ == "__main__":
    main()
