"""Detecting and locating faulty gates with exact equivalence checking.

The paper motivates design automation with fault detection/diagnosis
[7].  With algebraic QMDDs a fault is *provably* present (no tolerance
false verdicts), a distinguishing input can be extracted from the
difference DD, and the fault position is located by bisecting prefix
unitaries.

Run:  python examples/fault_diagnosis.py
"""

from repro.algorithms.grover import grover_circuit
from repro.verify import (
    Fault,
    check_equivalence,
    find_counterexample,
    inject_fault,
    locate_fault,
)


def main() -> None:
    reference = grover_circuit(4, 9)
    print(f"specification: {reference.name} ({len(reference)} gates)")

    # A subtle phase fault: one X of the diffusion operator becomes Z.
    position = 12
    fault = Fault("replace", position)
    try:
        faulty = inject_fault(reference, fault)
    except Exception:
        # fall back to a guaranteed-replaceable position
        position = next(
            i for i, op in enumerate(reference) if op.gate.name in ("h", "x")
        )
        fault = Fault("replace", position)
        faulty = inject_fault(reference, fault)
    print(f"injected fault: {fault} "
          f"({reference[position].gate.name} -> {faulty[position].gate.name})")
    print()

    verdict = check_equivalence(reference, faulty)
    print(f"equivalence check: {'EQUIVALENT' if verdict else 'FAULT DETECTED'}")

    witness = find_counterexample(reference, faulty)
    print(f"distinguishing basis input: |{witness:0{reference.num_qubits}b}>")

    located = locate_fault(reference, faulty)
    print(f"prefix bisection locates the fault at gate index: {located} "
          f"(injected at {position})")
    print()
    print("diagnosis is exact: the algebraic representation admits no")
    print("tolerance blind spots, so every functional single-gate fault is")
    print("caught and localised.")


if __name__ == "__main__":
    main()
