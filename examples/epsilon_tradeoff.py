"""The accuracy-vs-compactness trade-off in one experiment (Example 5 /
Section III of the paper).

Simulates Grover's algorithm under the numerical QMDD representation for
a sweep of tolerance values and under the exact algebraic representation,
then prints the per-gate node counts and errors: too-small eps blows the
DD up, too-large eps destroys the state, and the algebraic DD is compact
*and* exact.

Run:  python examples/epsilon_tradeoff.py [num_qubits]
"""

import sys

from repro.algorithms.grover import grover_circuit
from repro.evalsuite.experiments import shape_checks
from repro.evalsuite.reporting import render_series, render_summary
from repro.evalsuite.tradeoff import run_tradeoff


def main() -> None:
    num_qubits = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    marked = (1 << num_qubits) * 2 // 3
    circuit = grover_circuit(num_qubits, marked)
    print(f"sweeping tolerance values on {circuit.name} ({len(circuit)} gates)...\n")

    result = run_tradeoff(circuit)

    print(render_summary(result))
    print()
    print(render_series(result, "nodes", samples=8))
    print()
    print(render_series(result, "error", samples=8))
    print()
    print("the paper's qualitative claims on this instance:")
    for name, passed in shape_checks(result).items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    print()
    print("reading guide (paper Section V-A):")
    print("  * eps=0 / 1e-20: maximally precise floats, but redundancies are")
    print("    missed -> the DD grows far beyond the algebraic size.")
    print("  * eps=1e-15 .. 1e-10: the sweet spot -- if you can find it.")
    print("  * eps=1e-3: amplitudes get snapped onto table anchors -> the")
    print("    result is corrupted (error O(1)), possibly the zero vector.")
    print("  * algebraic: compact AND exact, no tuning knob.")


if __name__ == "__main__":
    main()
