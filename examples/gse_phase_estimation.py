"""Ground State Estimation via phase estimation (paper benchmark 3).

Shows the full paper pipeline: a diagonal model Hamiltonian, the raw
rotation circuit (not exactly representable), the Clifford+T compiled
version (exact, via repro.approx -- our Quipper substitute), and the
phase read-out, plus the bit-width growth that makes this the algebraic
representation's worst case (paper Fig. 5 / Section V-B).

Run:  python examples/gse_phase_estimation.py
"""

import math

import numpy as np

from repro import Simulator, algebraic_manager, numeric_manager
from repro.algorithms.gse import (
    default_hamiltonian,
    ground_state,
    gse_circuit,
    gse_rotation_circuit,
)


def main() -> None:
    num_sites, precision_bits, time = 2, 3, 0.5
    hamiltonian = default_hamiltonian(num_sites)
    index, energy = ground_state(hamiltonian)
    print(f"model Hamiltonian on {num_sites} sites; ground state |{index:0{num_sites}b}> "
          f"with energy {energy:.6f}")
    expected_phase = (energy * time / (2 * math.pi)) % 1.0
    print(f"expected phase reading: {expected_phase:.4f} "
          f"(~ {round(expected_phase * (1 << precision_bits))}/{1 << precision_bits})")
    print()

    raw = gse_rotation_circuit(num_sites, precision_bits, time, hamiltonian)
    print(f"raw phase-estimation circuit: {len(raw)} gates, "
          f"exactly representable: {raw.is_exactly_representable}")

    compiled = gse_circuit(num_sites, precision_bits, time, hamiltonian, max_words=4000)
    print(f"Clifford+T compiled: {len(compiled)} gates "
          f"(T-count {compiled.t_count()}), exactly representable: "
          f"{compiled.is_exactly_representable}")
    print()

    result = Simulator(
        algebraic_manager(compiled.num_qubits), record_bit_widths=True
    ).run(compiled)
    amplitudes = result.final_amplitudes()
    ancilla_probs = (np.abs(amplitudes) ** 2).reshape(1 << precision_bits, -1).sum(axis=1)
    measured = int(ancilla_probs.argmax())
    print("phase register distribution (algebraic, exact):")
    for value, probability in enumerate(ancilla_probs):
        if probability > 0.01:
            marker = " <-- peak" if value == measured else ""
            print(f"  {value}/{1 << precision_bits}: {probability:.4f}{marker}")
    print(f"measured phase {measured}/{1 << precision_bits} = "
          f"{measured / (1 << precision_bits):.4f}")
    print()

    widths = [step.max_bit_width for step in result.trace.steps]
    print("integer bit-width growth during the algebraic run "
          "(the paper's Fig. 5 overhead mechanism):")
    checkpoints = [0, len(widths) // 4, len(widths) // 2, 3 * len(widths) // 4, -1]
    for checkpoint in checkpoints:
        print(f"  after gate {checkpoint % len(widths):4d}: {widths[checkpoint]:4d} bits")

    numeric = Simulator(numeric_manager(compiled.num_qubits, eps=1e-12)).run(compiled)
    print(f"\nrun-time: algebraic {result.trace.total_seconds:.2f} s vs "
          f"numeric {numeric.trace.total_seconds:.2f} s "
          f"(overhead x{result.trace.total_seconds / max(numeric.trace.total_seconds, 1e-9):.1f})")


if __name__ == "__main__":
    main()
