"""Exact state preparation from a decision diagram.

Run a circuit, keep only its final state DD, forget the circuit -- and
synthesise a *new* preparation circuit for that exact state (Giles/
Selinger column reduction, repro.synth.stateprep).  The rebuilt state is
structurally identical to the original: an O(1) root comparison
certifies the synthesis.

Run:  python examples/state_preparation.py
"""

from repro import Circuit, Simulator, algebraic_manager
from repro.synth import prepare_state_from_dd


def main() -> None:
    # Some entangled Clifford+T state.
    original_circuit = Circuit(3, name="mystery")
    original_circuit.h(0).t(0).cx(0, 1).s(1).ccx(0, 1, 2).h(2).tdg(2)

    manager = algebraic_manager(3)
    simulator = Simulator(manager)
    state = simulator.run(original_circuit).state
    print(f"original circuit: {len(original_circuit)} gates")
    print(f"state DD: {manager.node_count(state)} nodes")
    print("exact amplitudes:")
    for index, amplitude in enumerate(manager.to_exact_amplitudes(state)):
        if not manager.system.is_zero(amplitude):
            print(f"  |{index:03b}> : {amplitude}")
    print()

    preparation = prepare_state_from_dd(manager, state)
    print(f"synthesised preparation circuit: {len(preparation)} "
          "(multi-controlled) gates")

    rebuilt = simulator.run(preparation).state
    print(f"rebuilt state structurally identical (O(1) root check): "
          f"{manager.edges_equal(rebuilt, state)}")
    print()
    print("the synthesis consumed only the exact decision diagram -- the")
    print("original gate list was never consulted.  With floating-point")
    print("amplitudes this factorisation in the ring would be impossible.")


if __name__ == "__main__":
    main()
