"""Development tooling for the repro codebase (not part of the library)."""
