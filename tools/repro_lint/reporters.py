"""Output layer: text, JSON and SARIF 2.1.0 reporters.

Text is the human/CI-log format (one ``path:line:col: CODE message``
per finding, matching compiler convention so editors can jump to it).
JSON is the machine format for ad-hoc tooling.  SARIF is the exchange
format code-scanning UIs ingest; the strict CI job uploads it as an
artifact.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from tools.repro_lint.core import Finding, Rule

__all__ = ["render", "render_text", "render_json", "render_sarif", "FORMATS"]

_TOOL_NAME = "repro_lint"
_INFO_URI = "https://example.invalid/repro/docs/STATIC_ANALYSIS.md"


def render_text(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    return "\n".join(str(finding) for finding in findings)


def render_json(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    payload = {
        "tool": _TOOL_NAME,
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rule(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.code,
        "name": rule.code,
        "shortDescription": {"text": rule.summary},
        "helpUri": _INFO_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _sarif_result(finding: Finding) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint()},
    }


def render_sarif(findings: Sequence[Finding], rules: Sequence[Rule]) -> str:
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": [_sarif_rule(rule) for rule in rules],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_sarif_result(finding) for finding in findings],
            }
        ],
    }
    return json.dumps(log, indent=2)


FORMATS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(
    fmt: str, findings: Iterable[Finding], rules: Sequence[Rule]
) -> str:
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(FORMATS)}"
        )
    ordered: List[Finding] = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    return renderer(ordered, rules)
