"""Framework core: findings, rules, pragmas and path scoping.

``repro_lint`` is organised as a small multi-pass static-analysis
framework:

* :class:`Rule` objects live in :mod:`tools.repro_lint.rules` (one
  module per rule family, auto-discovered by
  :mod:`tools.repro_lint.registry`).
* Each rule has a *per-file* check (AST + analysis context) and may
  additionally have a *project* check that runs once over the
  cross-module artifacts (call graph, purity summary, telemetry
  inventory) built by :mod:`tools.repro_lint.analysis`.
* The engine (:mod:`tools.repro_lint.engine`) drives both passes,
  backed by the incremental cache (:mod:`tools.repro_lint.cache`) and
  the committed baseline (:mod:`tools.repro_lint.baseline`).

Suppression pragmas:

``# repro-lint: allow[RL00X]``
    Silence the named rule(s) on this line (comma-separated codes).

``# repro-lint: transfers-ownership``
    On a ``def`` line: the function deliberately retains/hands off a
    root registration (RL009 stops tracking the whole function).
    On an ``inc_ref`` line: that acquisition transfers out.
    On a call line: the call consumes the root registrations of the
    owned edges it receives.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Set

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

__all__ = [
    "Finding",
    "Rule",
    "PRAGMA",
    "TRANSFER_PRAGMA",
    "parse_suppressions",
    "transfer_lines",
    "posix",
    "basename",
    "in_rings",
    "in_dd",
    "in_sim",
    "in_repro",
    "in_lint_corpus",
]

PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\s]+)\]")
TRANSFER_PRAGMA = re.compile(r"#\s*repro-lint:\s*transfers-ownership\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            message=str(payload["message"]),
        )

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline (line numbers
        drift on unrelated edits; rule + path + message do not)."""
        digest = hashlib.sha256(
            f"{self.rule}|{posix(self.path)}|{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class Rule:
    """A named check with a path scope.

    ``check`` runs once per file with the file's AST and the shared
    :class:`~tools.repro_lint.analysis.AnalysisContext`; ``project_check``
    (optional) runs once per lint invocation over the cross-module
    artifacts.  ``version`` participates in the incremental-cache key:
    bump it whenever the rule's behaviour changes so stale cached
    findings are invalidated.
    """

    code: str
    summary: str
    applies: Callable[[str], bool]
    check: Callable[[ast.AST, str, "AnalysisContext"], Iterator[Finding]]
    project_check: Optional[Callable[["AnalysisContext"], Iterator[Finding]]] = field(
        default=None
    )
    version: int = 1


# ---------------------------------------------------------------------------
# Path scoping helpers shared by every rule module
# ---------------------------------------------------------------------------


def posix(path: str) -> str:
    return path.replace(os.sep, "/")


def basename(path: str) -> str:
    return posix(path).rsplit("/", 1)[-1]


def in_rings(path: str) -> bool:
    return "repro/rings/" in posix(path)


def in_dd(path: str) -> bool:
    return "repro/dd/" in posix(path)


def in_sim(path: str) -> bool:
    return "repro/sim/" in posix(path)


def in_repro(path: str) -> bool:
    return "repro/" in posix(path) and not in_lint_corpus(path)


def in_lint_corpus(path: str) -> bool:
    """The linter's self-test corpus is exempt under its *real* path.

    Corpus files are deliberate violations linted under their declared
    virtual path by the tier-1 harness; the framework source itself
    (``tools/repro_lint/*.py``) is **not** exempt -- the CI
    ``lint-strict`` job self-lints it.
    """
    return "tools/repro_lint/tests/" in posix(path)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """``allow[...]`` pragma codes per line number."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = PRAGMA.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            allowed[lineno] = {code for code in codes if code}
    return allowed


def transfer_lines(source: str) -> Set[int]:
    """Line numbers carrying a ``transfers-ownership`` annotation."""
    lines: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if TRANSFER_PRAGMA.search(line):
            lines.add(lineno)
    return lines
