"""repro-lint: custom static analysis for the canonical QMDD core.

See :mod:`tools.repro_lint.linter` for the rule catalogue (RL001-RL005)
and the pragma syntax.  Run as ``python -m tools.repro_lint``.
"""

from tools.repro_lint.linter import (
    Finding,
    Rule,
    RULES,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    main,
)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
