"""repro-lint: a multi-pass static-analysis framework for the QMDD core.

The rule catalogue spans the range reported by
:func:`tools.repro_lint.registry.catalogue_line` (currently generated
from the registry, so this prose cannot go stale): run
``python -m tools.repro_lint --list-rules`` for the authoritative
table, or see ``docs/STATIC_ANALYSIS.md`` for the annotated catalogue
and the pragma syntax.

Layout:

* :mod:`tools.repro_lint.core` -- findings, rules, pragmas, scoping
* :mod:`tools.repro_lint.analysis` -- per-file facts + cross-module
  artifacts (call graph, purity summary, telemetry doc inventory)
* :mod:`tools.repro_lint.rules` -- one module per rule family,
  auto-discovered by :mod:`tools.repro_lint.registry`
* :mod:`tools.repro_lint.engine` -- two-pass driver (per-file pass is
  parallel + incrementally cached; project pass reruns from facts)
* :mod:`tools.repro_lint.baseline` / :mod:`tools.repro_lint.reporters`
  / :mod:`tools.repro_lint.cli` -- the output layer

Run as ``python -m tools.repro_lint [paths...]``.
"""

from tools.repro_lint.cli import main
from tools.repro_lint.core import Finding, Rule
from tools.repro_lint.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run_lint,
)
from tools.repro_lint.registry import RULES, catalogue_line

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "catalogue_line",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
    "main",
]
