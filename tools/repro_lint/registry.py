"""Rule registry: auto-discovers every rule family in ``rules/``.

Each module under :mod:`tools.repro_lint.rules` exports a module-level
``RULES`` tuple; the registry imports them all with
:func:`pkgutil.iter_modules`, validates code uniqueness, and exposes
the assembled catalogue sorted by rule code.  Adding a rule family is
dropping a module in the package -- there is no central list to edit.
"""

from __future__ import annotations

import hashlib
import importlib
import pkgutil
from typing import Dict, List, Tuple

from tools.repro_lint import rules as _rules_package
from tools.repro_lint.core import Rule

__all__ = ["discover_rules", "RULES", "rules_by_code", "rules_signature", "catalogue_line"]


def discover_rules() -> Tuple[Rule, ...]:
    """Import every rule module and collect its ``RULES`` tuple."""
    collected: List[Rule] = []
    seen: Dict[str, str] = {}
    for info in pkgutil.iter_modules(_rules_package.__path__):
        if info.name.startswith("_"):
            continue
        module = importlib.import_module(f"{_rules_package.__name__}.{info.name}")
        module_rules = getattr(module, "RULES", ())
        for rule in module_rules:
            if not isinstance(rule, Rule):
                raise TypeError(
                    f"{module.__name__}.RULES contains a non-Rule entry: {rule!r}"
                )
            if rule.code in seen:
                raise ValueError(
                    f"duplicate rule code {rule.code}: defined in both "
                    f"{seen[rule.code]} and {module.__name__}"
                )
            seen[rule.code] = module.__name__
            collected.append(rule)
    collected.sort(key=lambda rule: rule.code)
    return tuple(collected)


RULES: Tuple[Rule, ...] = discover_rules()


def rules_by_code() -> Dict[str, Rule]:
    return {rule.code: rule for rule in RULES}


def rules_signature() -> str:
    """Cache-key component covering the active rule set.

    Any change to the set of codes or to a rule's declared ``version``
    invalidates every cached per-file result.
    """
    payload = ";".join(f"{rule.code}@{rule.version}" for rule in RULES)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def catalogue_line() -> str:
    """Human-readable span of the registered catalogue, e.g.
    ``"RL001-RL013"`` -- used by the package docstring and ``--list-rules``
    so prose never goes stale again."""
    if not RULES:
        return "(no rules registered)"
    first, last = RULES[0].code, RULES[-1].code
    return first if first == last else f"{first}-{last}"
