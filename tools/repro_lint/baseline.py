"""Committed findings baseline (``.repro_lint_baseline.json``).

The strict CI job fails on any finding that is not *baselined*.  The
baseline maps finding fingerprints (rule + path + message, line-number
independent) to an occurrence count and a human justification, so:

* adopting a new rule does not require fixing every historic violation
  at once -- ``--write-baseline`` records the current state;
* a baselined finding that gets *fixed* does not silently leave a slot
  open for a new violation with the same fingerprint elsewhere --
  counts are matched, and surplus occurrences fail the run;
* every accepted violation carries a written reason in review.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from tools.repro_lint.core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro_lint_baseline.json"
_BASELINE_FORMAT = 1


@dataclass
class Baseline:
    """Fingerprint -> (allowed count, justification)."""

    path: "Path | None" = None
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        baseline = cls(path=path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return baseline
        except ValueError as exc:
            raise SystemExit(f"repro_lint: malformed baseline {path}: {exc}")
        if not isinstance(payload, dict) or payload.get("format") != _BASELINE_FORMAT:
            raise SystemExit(
                f"repro_lint: unsupported baseline format in {path}; "
                "regenerate with --write-baseline"
            )
        entries = payload.get("entries", {})
        if isinstance(entries, dict):
            baseline.entries = {
                str(fp): {
                    "count": int(entry.get("count", 1)),
                    "rule": str(entry.get("rule", "")),
                    "path": str(entry.get("path", "")),
                    "message": str(entry.get("message", "")),
                    "justification": str(entry.get("justification", "")),
                }
                for fp, entry in entries.items()
                if isinstance(entry, dict)
            }
        return baseline

    def filter(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined).

        Occurrences beyond a fingerprint's allowed count overflow into
        *new* -- the baseline grants a budget, not a blanket waiver.
        """
        budget = Counter(
            {fp: int(entry["count"]) for fp, entry in self.entries.items()}
        )
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        justification: str = "accepted at baseline capture",
    ) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = finding.fingerprint()
            entry = baseline.entries.setdefault(
                fp,
                {
                    "count": 0,
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                    "justification": justification,
                },
            )
            entry["count"] = int(entry["count"]) + 1
        return baseline

    def write(self, path: Path) -> None:
        payload = {
            "format": _BASELINE_FORMAT,
            "entries": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
