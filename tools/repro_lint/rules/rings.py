"""Exact-arithmetic hygiene: RL002, RL003 and the RL010 purity dataflow.

The paper's central claim -- algebraic/GCD number systems keep DD
simulation *exact* while floats silently drift -- only holds if the
ring layer stays a pure, integer-coefficient core.  RL002/RL003 police
the obvious leaks (float literals, naive float equality); RL010 is the
dataflow extension:

* ring functions must not mutate their ring-value arguments,
* the ring layer must not hold module-global mutable state, and
* no float/complex literal may *flow* into a ``NumberSystem`` weight
  operation in the DD/sim layers (``system.mul(w, 0.5)`` turns an
  algebraic computation into a numeric one without anyone choosing
  that trade-off).

The project-level pass additionally reports ring functions that are
directly pure but call an impure ring function (transitive impurity
via the cross-module call graph).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Set

from tools.repro_lint.core import (
    Finding,
    Rule,
    in_dd,
    in_rings,
    in_sim,
)

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

# ---------------------------------------------------------------------------
# RL002: the ring layer stays exact (no float literals / math imports)
# ---------------------------------------------------------------------------


def _rl002_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in ("math", "cmath"):
                    yield Finding(
                        "RL002",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"import of {root!r} inside the exact ring layer; "
                        "rings must not depend on floating-point math",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".", 1)[0]
            if root in ("math", "cmath"):
                yield Finding(
                    "RL002",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"import from {root!r} inside the exact ring layer; "
                    "rings must not depend on floating-point math",
                )
        elif isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
            yield Finding(
                "RL002",
                path,
                node.lineno,
                node.col_offset,
                f"{type(node.value).__name__} literal {node.value!r} inside "
                "the exact ring layer; exact rings are integer-coefficient "
                "(conversion boundaries may use a pragma)",
            )


# ---------------------------------------------------------------------------
# RL003: no naive float/complex equality
# ---------------------------------------------------------------------------


def _rl003_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        for operand in [node.left, *node.comparators]:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, (float, complex)
            ):
                yield Finding(
                    "RL003",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"==/!= against {type(operand.value).__name__} literal "
                    f"{operand.value!r}; use the tolerance machinery "
                    "(system.is_zero, ComplexTable) or math.isclose "
                    "(exact sentinel comparisons may use a pragma)",
                )
                break


def _in_repro_rl003(path: str) -> bool:
    from tools.repro_lint.core import in_repro

    return in_repro(path)


# ---------------------------------------------------------------------------
# RL010: ring purity (dataflow)
# ---------------------------------------------------------------------------

#: ``NumberSystem`` operations that consume interned ring weights.  A
#: float literal flowing into one of these is exactly the silent
#: exact->numeric downgrade the paper warns about.  Conversion
#: boundaries (``from_complex`` / ``to_complex``) are deliberately
#: absent: they exist to cross the float boundary.
WEIGHT_OPS = frozenset(
    {
        "add",
        "mul",
        "neg",
        "conj",
        "normalize",
        "normalize_keyed",
        "division_helper",
        "is_zero",
        "is_one",
        "key",
        "value_for_key",
    }
)


def _rl010_applies(path: str) -> bool:
    return in_rings(path) or in_dd(path) or in_sim(path)


def _float_tainted_names(fn: ast.AST) -> Set[str]:
    """Names assigned a float/complex literal (one level of flow)."""

    def is_float_expr(expr: ast.expr, tainted: Set[str]) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, (float, complex)):
            return True
        if isinstance(expr, ast.Name) and expr.id in tainted:
            return True
        if isinstance(expr, ast.BinOp):
            return is_float_expr(expr.left, tainted) or is_float_expr(
                expr.right, tainted
            )
        if isinstance(expr, ast.UnaryOp):
            return is_float_expr(expr.operand, tainted)
        return False

    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and node.value is not None:
                if is_float_expr(node.value, tainted):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id not in tainted:
                            tainted.add(target.id)
                            changed = True
    return tainted


def _receiver_is_number_system(func: ast.Attribute) -> bool:
    """Heuristic: the receiver expression names a number system.

    Matches ``system.mul``, ``self.system.add``, ``manager.system.key``,
    ``self._system.normalize`` -- anything whose receiver path ends in
    ``system`` (set/dict ``.add`` false positives are excluded because
    their receivers do not).
    """
    try:
        text = ast.unparse(func.value)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return False
    return text == "system" or text.endswith(".system") or text.endswith("_system")


def _rl010_float_flow(
    tree: ast.AST, path: str
) -> Iterator[Finding]:
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            continue
        tainted = _float_tainted_names(scope)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in WEIGHT_OPS
                and _receiver_is_number_system(func)
            ):
                continue
            for arg in node.args:
                bad = None
                if isinstance(arg, ast.Constant) and isinstance(
                    arg.value, (float, complex)
                ):
                    bad = repr(arg.value)
                elif isinstance(arg, ast.Name) and arg.id in tainted:
                    bad = f"{arg.id} (assigned a float literal)"
                if bad is not None:
                    yield Finding(
                        "RL010",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"float value {bad} flows into NumberSystem weight "
                        f"op .{func.attr}(); interned ring weights must come "
                        "from the system's own constructors / from_complex "
                        "(conversion boundaries may use a pragma)",
                    )


def _rl010_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    if in_rings(path):
        facts = ctx.facts_for(path)
        if facts is None:
            return
        for issue in facts.module_purity_issues:
            yield Finding("RL010", path, issue.line, issue.col, issue.message)
        for fn in facts.functions:
            if fn.name in ("__init__", "__new__", "__post_init__"):
                continue
            for issue in fn.purity_issues:
                yield Finding("RL010", path, issue.line, issue.col, issue.message)
    else:
        seen: Set[tuple] = set()
        for finding in _rl010_float_flow(tree, path):
            key = (finding.line, finding.col, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding


def _rl010_project(ctx: "AnalysisContext") -> Iterator[Finding]:
    """Transitive impurity: pure ring functions calling impure ones."""
    impure: Dict[str, List[str]] = {}
    ring_functions = []
    for path, facts in ctx.facts.items():
        if not in_rings(path):
            continue
        for fn in facts.functions:
            if fn.name in ("__init__", "__new__", "__post_init__"):
                continue
            ring_functions.append((path, fn))
            if not fn.directly_pure:
                impure.setdefault(fn.name, []).append(fn.qualname)

    # Fixpoint: calling an impure ring function is itself impure.
    transitively: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for path, fn in ring_functions:
            if fn.name in impure or fn.name in transitively:
                continue
            culprits = fn.calls & (set(impure) | set(transitively))
            if culprits:
                transitively[fn.name] = sorted(culprits)[0]
                changed = True

    for path, fn in ring_functions:
        if fn.name in transitively:
            yield Finding(
                "RL010",
                path,
                fn.lineno,
                0,
                f"ring function {fn.qualname!r} is transitively impure: it "
                f"calls {transitively[fn.name]!r}, which mutates arguments "
                "or module state",
            )


RULES = (
    Rule("RL002", "float/math leakage into exact rings", in_rings, _rl002_check),
    Rule("RL003", "naive float/complex equality", _in_repro_rl003, _rl003_check),
    Rule(
        "RL010",
        "ring purity: argument mutation, module state, float dataflow",
        _rl010_applies,
        _rl010_check,
        project_check=_rl010_project,
        version=1,
    ),
)
