"""Node-lifecycle rules: RL007, RL009 (refcount balance), RL013
(exception safety on GC trigger paths).

PR 4 made node liveness a *protocol*: external roots are registered
with ``inc_ref`` and released with ``dec_ref``; the mark-and-sweep
collector trusts those counts.  A missed ``dec_ref`` is a silent leak
the runtime audit only catches late and expensively -- RL009 certifies
the pairing statically.  RL013 guards the other direction: a
``MemoryBudgetExceeded`` raised between a budget check and the commit
of dependent state leaves the manager half-updated.
"""

from __future__ import annotations

import ast
import copy
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.repro_lint.core import Finding, Rule, basename, in_dd, in_repro, in_sim

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

# ---------------------------------------------------------------------------
# RL007: unique-table internals stay behind the lifecycle API
# ---------------------------------------------------------------------------

_UNIQUE_TABLE_INTERNALS = frozenset({"_table", "_next_uid"})
_UNIQUE_TABLE_PRIVILEGED = frozenset({"unique_table.py", "mem.py"})


def _rl007_applies(path: str) -> bool:
    return in_repro(path) and basename(path) not in _UNIQUE_TABLE_PRIVILEGED


def _rl007_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in _UNIQUE_TABLE_INTERNALS:
            continue
        receiver = node.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            continue
        yield Finding(
            "RL007",
            path,
            node.lineno,
            node.col_offset,
            f"access to unique-table internal {node.attr!r} outside the "
            "lifecycle layer; resident-set changes must go through "
            "sweep/retain/clear (or DDManager.memory) so refcounts stay "
            "balanced and derived caches are invalidated",
        )


# ---------------------------------------------------------------------------
# RL009: every inc_ref reaches a matching dec_ref (or a declared transfer)
# ---------------------------------------------------------------------------

_INC_NAMES = frozenset({"inc_ref", "incref"})
_DEC_NAMES = frozenset({"dec_ref", "decref"})


def _rl009_applies(path: str) -> bool:
    return in_dd(path) or in_sim(path)


def _called_simple_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _expr_key(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return f"<expr@{expr.lineno}>"


class _OwnershipState:
    """Multiset of outstanding root registrations, keyed by the source
    text of the registered edge expression."""

    __slots__ = ("owned",)

    def __init__(self) -> None:
        self.owned: Dict[str, List[int]] = {}

    def clone(self) -> "_OwnershipState":
        fresh = _OwnershipState()
        fresh.owned = {key: list(lines) for key, lines in self.owned.items()}
        return fresh

    def acquire(self, key: str, line: int) -> None:
        self.owned.setdefault(key, []).append(line)

    def release(self, key: str) -> None:
        lines = self.owned.get(key)
        if lines:
            lines.pop()
            if not lines:
                del self.owned[key]

    def rebind(self, target: str, source: str) -> None:
        """``target = source``: the names now alias; outstanding
        registrations made under the source name follow the value."""
        lines = self.owned.pop(source, None)
        if lines:
            self.owned.setdefault(target, []).extend(lines)

    def merge_max(self, other: "_OwnershipState") -> None:
        """Path join for leak detection: a registration outstanding on
        *either* branch stays outstanding (flag the leakiest path)."""
        for key, lines in other.owned.items():
            mine = self.owned.setdefault(key, [])
            if len(lines) > len(mine):
                self.owned[key] = list(lines)

    def outstanding(self) -> List[Tuple[str, int]]:
        return [
            (key, lines[0]) for key, lines in sorted(self.owned.items()) if lines
        ]


class _OwnershipWalker:
    """Path-sensitive inc_ref/dec_ref pairing over one function body.

    Models branches (max-join), loops (one symbolic iteration joined
    with the zero-iteration path), ``try/finally`` (finalisers apply to
    every exit), name rebinding (``state = new_state`` moves the
    registration), and ``# repro-lint: transfers-ownership``
    annotations (on the acquisition line, on a consuming call, or on
    the ``def`` line to exempt the whole function).
    """

    def __init__(self, path: str, transfer_lines: Set[int]) -> None:
        self.path = path
        self.transfer_lines = transfer_lines
        self.findings: List[Finding] = []
        self._reported: Set[Tuple[str, int]] = set()

    # -- call effects ----------------------------------------------------

    def _apply_calls(self, node: ast.AST, state: _OwnershipState) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _called_simple_name(call)
            if name in _INC_NAMES and call.args:
                if call.lineno in self.transfer_lines:
                    continue  # acquisition explicitly transfers out
                state.acquire(_expr_key(call.args[0]), call.lineno)
            elif name in _DEC_NAMES and call.args:
                state.release(_expr_key(call.args[0]))
            elif call.lineno in self.transfer_lines:
                # An annotated call consumes the registrations of the
                # owned edges it receives (ownership transfer).
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    state.release(_expr_key(arg))

    # -- exits -----------------------------------------------------------

    def _exit(
        self,
        state: _OwnershipState,
        finals: Sequence[Sequence[ast.stmt]],
        node: ast.stmt,
        kind: str,
    ) -> None:
        at_exit = state.clone()
        for final_body in reversed(list(finals)):
            for stmt in final_body:
                self._apply_calls(stmt, at_exit)
        for key, acquired in at_exit.outstanding():
            mark = (key, acquired)
            if mark in self._reported:
                continue
            self._reported.add(mark)
            self.findings.append(
                Finding(
                    "RL009",
                    self.path,
                    acquired,
                    0,
                    f"inc_ref({key}) on line {acquired} is not released on "
                    f"the path {kind} at line {node.lineno}; every root "
                    "registration must reach a matching dec_ref or a "
                    "declared '# repro-lint: transfers-ownership'",
                )
            )

    # -- statement walk --------------------------------------------------

    def walk(
        self,
        body: Sequence[ast.stmt],
        state: _OwnershipState,
        finals: List[Sequence[ast.stmt]],
    ) -> _OwnershipState:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes are analysed on their own
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._apply_calls(stmt.value, state)
                self._exit(state, finals, stmt, "returning")
                return state
            if isinstance(stmt, ast.Raise):
                self._apply_calls(stmt, state)
                self._exit(state, finals, stmt, "raising")
                return state
            if isinstance(stmt, ast.If):
                self._apply_calls(stmt.test, state)
                then_state = self.walk(list(stmt.body), state.clone(), finals)
                else_state = self.walk(list(stmt.orelse), state.clone(), finals)
                state = then_state
                state.merge_max(else_state)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._apply_calls(stmt.iter, state)
                after_body = self.walk(list(stmt.body), state.clone(), finals)
                state.merge_max(after_body)
                state = self.walk(list(stmt.orelse), state, finals)
                continue
            if isinstance(stmt, ast.While):
                self._apply_calls(stmt.test, state)
                after_body = self.walk(list(stmt.body), state.clone(), finals)
                state.merge_max(after_body)
                state = self.walk(list(stmt.orelse), state, finals)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._apply_calls(item.context_expr, state)
                state = self.walk(list(stmt.body), state, finals)
                continue
            if isinstance(stmt, ast.Try):
                final_body: Sequence[ast.stmt] = stmt.finalbody or ()
                inner_finals = finals + [final_body] if final_body else finals
                pre = state.clone()
                body_state = self.walk(list(stmt.body), state, inner_finals)
                merged = body_state
                for handler in stmt.handlers:
                    handler_state = self.walk(
                        list(handler.body), pre.clone(), inner_finals
                    )
                    merged.merge_max(handler_state)
                merged = self.walk(list(stmt.orelse), merged, inner_finals)
                state = self.walk(list(final_body), merged, finals)
                continue
            # Plain statement: apply call effects, then aliasing.
            self._apply_calls(stmt, state)
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Name)
            ):
                state.rebind(stmt.targets[0].id, stmt.value.id)
        return state

    def run(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[Finding]:
        state = self.walk(list(fn.body), _OwnershipState(), [])
        if fn.body:
            self._exit(state, [], fn.body[-1], "falling off the function end")
        return self.findings


def _rl009_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    facts = ctx.facts_for(path)
    transfers = facts.transfer_lines if facts is not None else set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in _INC_NAMES or node.name in _DEC_NAMES:
            continue  # the registry primitives themselves
        def_lines = set(range(node.lineno, node.body[0].lineno + 1))
        if def_lines & transfers:
            continue  # whole function declared as transferring ownership
        walker = _OwnershipWalker(path, transfers)
        yield from walker.run(node)


# ---------------------------------------------------------------------------
# RL013: no stranded state on MemoryBudgetExceeded paths
# ---------------------------------------------------------------------------

_RL013_FILES = frozenset({"mem.py", "manager.py"})
_BUDGET_EXC = "MemoryBudgetExceeded"


def _rl013_applies(path: str) -> bool:
    return in_dd(path) and basename(path) in _RL013_FILES


def _mutated_self_attrs(stmt: ast.stmt) -> List[Tuple[str, int, int]]:
    """``self``-state mutations committed by one statement."""
    mutations: List[Tuple[str, int, int]] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            mutations.append((base.attr, target.lineno, target.col_offset))
    return mutations


def _risky_calls(stmt: ast.stmt, may_raise: Set[str]) -> List[Tuple[str, int]]:
    risky: List[Tuple[str, int]] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            name = _called_simple_name(node)
            if name is not None and name in may_raise:
                risky.append((name, node.lineno))
        elif isinstance(node, ast.Raise):
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func  # type: ignore[assignment]
            if (
                isinstance(exc, (ast.Name, ast.Attribute))
                and (exc.id if isinstance(exc, ast.Name) else exc.attr)
                == _BUDGET_EXC
            ):
                risky.append((f"raise {_BUDGET_EXC}", node.lineno))
    return risky


def _flatten(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for field_name in ("body", "orelse", "finalbody"):
            yield from _flatten(getattr(stmt, field_name, ()) or ())
        for handler in getattr(stmt, "handlers", ()) or ():
            yield from _flatten(handler.body)


def _rl013_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    may_raise = ctx.may_raise(_BUDGET_EXC)
    if not may_raise:
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in ("__init__", "__new__"):
            continue
        pending: List[Tuple[str, int, int]] = []
        flagged: Set[Tuple[str, int]] = set()
        for stmt in _flatten(node.body):
            # Calls evaluate before the enclosing statement's own
            # assignment commits, so risky calls are processed first.
            risky = _risky_calls(stmt, may_raise - {node.name})
            if risky:
                callee, at_line = risky[0]
                for attr, line, col in pending:
                    mark = (attr, line)
                    if mark in flagged:
                        continue
                    flagged.add(mark)
                    yield Finding(
                        "RL013",
                        path,
                        line,
                        col,
                        f"self.{attr} is committed before {callee!r} (line "
                        f"{at_line}), which may raise {_BUDGET_EXC}; a "
                        "budget failure would strand this state -- commit "
                        "policy/bookkeeping updates only after the budget "
                        "check passes, or annotate why stranding is safe",
                    )
            pending.extend(_mutated_self_attrs(stmt))


RULES = (
    Rule(
        "RL007",
        "unique-table internals accessed outside the lifecycle layer",
        _rl007_applies,
        _rl007_check,
    ),
    Rule(
        "RL009",
        "unbalanced inc_ref/dec_ref on a return or raise path",
        _rl009_applies,
        _rl009_check,
    ),
    Rule(
        "RL013",
        "state mutation stranded by a MemoryBudgetExceeded path",
        _rl013_applies,
        _rl013_check,
    ),
)
