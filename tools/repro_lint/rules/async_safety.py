"""Async-safety rule: RL014.

The service frontend (``repro.serve``) multiplexes every request
through one asyncio event loop; a single blocking call inside an
``async def`` handler stalls *all* queues, deadlines and dispatchers
at once -- the classic "one slow request freezes the service" trap.
Blocking work belongs in the worker clients, reached through
``loop.run_in_executor``.  RL014 flags synchronous sleeps and
subprocess launches lexically inside async functions under
``repro/serve``; nested *sync* ``def``s are exempt (they are exactly
the executor-targeted escape hatch).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.core import Finding, Rule, posix

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

#: ``module.attr`` calls that block the calling thread outright.
_BLOCKING_ATTRS = frozenset(
    {
        ("time", "sleep"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("os", "system"),
    }
)

#: Bare names that block even when imported directly
#: (``from time import sleep``).
_BLOCKING_NAMES = frozenset({"sleep", "check_call", "check_output", "Popen"})


def _in_serve(path: str) -> bool:
    return "repro/serve/" in posix(path)


def _blocking_reason(node: ast.Call) -> "str | None":
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in _BLOCKING_ATTRS
    ):
        return f"{func.value.id}.{func.attr}()"
    if isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
        return f"{func.id}()"
    return None


def _async_body_calls(scope: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically in the async scope, not in nested sync defs.

    A nested ``def`` is the blessed shape for executor offloading, so
    its body is *not* part of the event-loop critical path; a nested
    ``async def`` is, and is walked when visited as its own scope.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _rl014_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for scope in ast.walk(tree):
        if not isinstance(scope, ast.AsyncFunctionDef):
            continue
        for call in _async_body_calls(scope):
            reason = _blocking_reason(call)
            if reason is None:
                continue
            yield Finding(
                "RL014",
                path,
                call.lineno,
                call.col_offset,
                f"blocking {reason} inside async handler "
                f"{scope.name!r} stalls the whole service event loop; "
                "await asyncio.sleep() for delays and push blocking "
                "work through loop.run_in_executor",
            )


RULES = (
    Rule(
        "RL014",
        "blocking call inside a repro.serve async handler",
        _in_serve,
        _rl014_check,
    ),
)
