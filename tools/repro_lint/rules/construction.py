"""Construction-privilege rules: RL001 (nodes), RL008 (simulators).

Hash-consing and the facade are both "single construction path"
invariants: a node built outside the unique table can never be the
canonical resident for its key, and a ``Simulator`` built outside
``repro.api`` re-opens the loose-kwarg surface the facade deprecates.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from tools.repro_lint.core import Finding, Rule, basename, in_repro, posix

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

_NODE_ALLOWED_FILES = frozenset({"unique_table.py", "edge.py"})


def _called_name(node: ast.Call) -> "str | None":
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _rl001_applies(path: str) -> bool:
    return in_repro(path) and basename(path) not in _NODE_ALLOWED_FILES


def _rl001_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _called_name(node) == "Node":
            yield Finding(
                "RL001",
                path,
                node.lineno,
                node.col_offset,
                "direct Node(...) construction bypasses the unique table; "
                "build nodes through DDManager.make_node so they are "
                "normalised and hash-consed",
            )


def _rl008_applies(path: str) -> bool:
    return in_repro(path) and not posix(path).endswith("repro/api.py")


def _rl008_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _called_name(node) == "Simulator":
            yield Finding(
                "RL008",
                path,
                node.lineno,
                node.col_offset,
                "direct Simulator(...) construction outside repro.api; "
                "build a SimulatorConfig and go through repro.api "
                "(run / run_batch / make_simulator / "
                "SimulatorConfig.create_simulator)",
            )


RULES = (
    Rule("RL001", "Node() outside the unique table", _rl001_applies, _rl001_check),
    Rule(
        "RL008",
        "Simulator() construction outside the repro.api facade",
        _rl008_applies,
        _rl008_check,
    ),
)
