"""Observability rules: RL006 (ad-hoc reporting) and RL012 (name drift).

``docs/OBSERVABILITY.md`` is the contract dashboards and benchmark
tooling are written against.  RL006 keeps reporting on the
``repro.obs`` registry; RL012 keeps the registry and the contract in
sync in *both* directions: an instrument registered in code must match
a documented name pattern (and kind), and every concretely documented
push instrument must be registered somewhere in the tree.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Set, Tuple

from tools.repro_lint.core import Finding, Rule, in_dd, in_repro, posix

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

# ---------------------------------------------------------------------------
# RL006: engine observability goes through the repro.obs layer
# ---------------------------------------------------------------------------

_COUNTER_DICT_TAGS = ("counter", "stat", "metric")


def _rl006_applies(path: str) -> bool:
    return in_dd(path) or "repro/numeric/" in posix(path)


def _is_empty_dict(value: "ast.expr | None") -> bool:
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
        and not value.keywords
    ):
        return True
    return False


def _rl006_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield Finding(
                    "RL006",
                    path,
                    node.lineno,
                    node.col_offset,
                    "print() inside the engine core; report through the "
                    "repro.obs metrics registry / tracer and render at a "
                    "consumer layer (CLI, benchmarks)",
                )
            continue
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if not _is_empty_dict(value):
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            lowered = target.attr.lower()
            if any(tag in lowered for tag in _COUNTER_DICT_TAGS):
                yield Finding(
                    "RL006",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"self.{target.attr} is an ad-hoc counter dict; register "
                    "instruments on the repro.obs MetricsRegistry (or keep "
                    "plain integer attributes read by a collector)",
                )


# ---------------------------------------------------------------------------
# RL012: instrument-name drift between code and docs/OBSERVABILITY.md
# ---------------------------------------------------------------------------


def _rl012_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    """Forward direction: every registration matches a documented row."""
    inventory = ctx.doc_inventory
    if inventory is None:
        return  # no catalog available in this run; nothing to drift from
    facts = ctx.facts_for(path)
    if facts is None:
        return
    for name, kind, line, col in facts.registrations:
        entries = inventory.lookup(name)
        if not entries:
            yield Finding(
                "RL012",
                path,
                line,
                col,
                f"instrument {name!r} ({kind}) is not documented in "
                "docs/OBSERVABILITY.md; add a catalog row (dashboards are "
                "written against that table) or rename to a documented "
                "pattern",
            )
            continue
        if not any(kind in entry.kinds for entry in entries):
            documented = sorted({k for entry in entries for k in entry.kinds})
            yield Finding(
                "RL012",
                path,
                line,
                col,
                f"instrument {name!r} is registered as a {kind} but "
                f"documented as {'/'.join(documented)} in "
                "docs/OBSERVABILITY.md; reconcile the kind on whichever "
                "side is wrong",
            )


def _rl012_project(ctx: "AnalysisContext") -> Iterator[Finding]:
    """Reverse direction: every concretely documented push instrument is
    registered somewhere.  Only meaningful on a full-tree run; wildcard
    rows (``<label>`` with no finite alternation) are skipped because
    their expansions are data-dependent.
    """
    inventory = ctx.doc_inventory
    if inventory is None or not ctx.is_full_tree:
        return
    registered: Set[str] = set()
    for path, facts in ctx.facts.items():
        if in_repro(path):
            registered.update(name for name, _kind, _l, _c in facts.registrations)
    doc_path = posix(str(ctx.doc_path))
    seen: Set[Tuple[str, int]] = set()
    for entry in inventory.push_entries():
        for name in entry.concrete_names:
            if name in registered:
                continue
            mark = (name, entry.line)
            if mark in seen:
                continue
            seen.add(mark)
            yield Finding(
                "RL012",
                doc_path,
                entry.line,
                0,
                f"documented push instrument {name!r} (row {entry.display!r}) "
                "is not registered anywhere under src/repro; drop the row or "
                "restore the registration",
            )


RULES = (
    Rule(
        "RL006",
        "ad-hoc reporting (print / counter dicts) in the engine core",
        _rl006_applies,
        _rl006_check,
    ),
    Rule(
        "RL012",
        "instrument-name drift between code and docs/OBSERVABILITY.md",
        in_repro,
        _rl012_check,
        project_check=_rl012_project,
    ),
)
