"""Process-safety rule: RL011.

The batch engine ships jobs to worker *processes*; everything crossing
the pool boundary is pickled.  Lambdas, locally-defined closures and
bound methods either fail to pickle outright or silently drag the
enclosing object graph (simulator state, open handles) into the worker
-- the classic "works with threads, explodes with processes" trap.
RL011 flags unpicklable callables and open file handles at the
submission sites (``pool.submit`` / ``pool.map`` / ``run_batch``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Set

from tools.repro_lint.core import Finding, Rule, in_repro

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

_SUBMIT_METHODS = frozenset({"submit", "map"})
_BATCH_ENTRYPOINTS = frozenset({"run_batch"})


def _call_simple_name(node: ast.Call) -> "str | None":
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _lambda_bound_names(scope: ast.AST) -> Set[str]:
    """Names assigned a lambda anywhere in the scope."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _nested_function_names(scope: ast.AST) -> Set[str]:
    """Functions defined *inside* this scope (unpicklable by qualname)."""
    names: Set[str] = set()
    for node in ast.iter_child_nodes(scope):
        for inner in ast.walk(node):
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inner is not scope:
                    names.add(inner.name)
    return names


def _describe_unpicklable(
    arg: ast.expr,
    lambda_names: Set[str],
    nested_names: Set[str],
    first_positional: bool,
) -> "str | None":
    """Why this argument cannot cross a process boundary, or ``None``."""
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name) and arg.id in lambda_names:
        return f"{arg.id!r}, which is bound to a lambda"
    if first_positional:
        if isinstance(arg, ast.Name) and arg.id in nested_names:
            return f"locally-defined function {arg.id!r}"
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
        ):
            return f"bound method 'self.{arg.attr}'"
    if isinstance(arg, ast.Call) and _call_simple_name(arg) == "open":
        return "an open file handle"
    return None


def _rl011_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    # A call nested in a function is visited from both the module scope
    # and its enclosing function scope(s); report each site once.
    seen: "Set[tuple]" = set()
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            continue
        lambda_names = _lambda_bound_names(scope)
        nested_names = (
            _nested_function_names(scope)
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
            else set()
        )
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            name = _call_simple_name(node)
            is_submit = (
                isinstance(node.func, ast.Attribute) and name in _SUBMIT_METHODS
            )
            is_batch = name in _BATCH_ENTRYPOINTS
            if not (is_submit or is_batch):
                continue
            boundary = (
                f"pool.{name}()" if is_submit else f"{name}()"
            )
            args = list(node.args) + [kw.value for kw in node.keywords]
            for position, arg in enumerate(args):
                first_positional = is_submit and position == 0
                # For submit/map only the callable slot gets the
                # bound-method / nested-function treatment; handles and
                # lambdas are rejected in any slot.
                reason = _describe_unpicklable(
                    arg, lambda_names, nested_names, first_positional
                )
                if reason is None and not first_positional:
                    # Walk nested expressions (e.g. a lambda inside a
                    # list of jobs handed to run_batch).
                    for inner in ast.walk(arg):
                        if inner is arg:
                            continue
                        if isinstance(inner, ast.Lambda):
                            reason = "a lambda"
                            break
                        if isinstance(inner, ast.Name) and inner.id in lambda_names:
                            reason = f"{inner.id!r}, which is bound to a lambda"
                            break
                        if (
                            isinstance(inner, ast.Call)
                            and _call_simple_name(inner) == "open"
                        ):
                            reason = "an open file handle"
                            break
                if reason is not None:
                    mark = (arg.lineno, arg.col_offset)
                    if mark in seen:
                        break
                    seen.add(mark)
                    yield Finding(
                        "RL011",
                        path,
                        arg.lineno,
                        arg.col_offset,
                        f"{reason} is handed to {boundary}, which crosses a "
                        "process boundary; workers receive arguments by "
                        "pickling, so pass a module-level function and "
                        "plain-data payloads (open files inside the worker)",
                    )
                    break  # one finding per submission call is enough


RULES = (
    Rule(
        "RL011",
        "unpicklable callable or handle crossing the process-pool boundary",
        in_repro,
        _rl011_check,
    ),
)
