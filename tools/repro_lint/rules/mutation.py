"""Interned-state mutation rules: RL004 (weights), RL005 (dict memos).

Ring elements and ``ComplexEntry`` instances are hash-consed and
shared: mutating one corrupts every DD that references it.  Operation
caches must go through ``ComputeTable`` (bounded, counted, evicted) so
``cache_stats`` and the GC can see them.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List

from tools.repro_lint.core import Finding, Rule, in_dd, in_repro, in_rings

if TYPE_CHECKING:
    from tools.repro_lint.analysis import AnalysisContext

#: Attribute slots of the interned weight classes (``ComplexEntry``,
#: ``DOmega``, ``QOmega``, ``ZOmega``, ``ZSqrt2``) that must never be
#: assigned through a non-``self`` receiver.
_WEIGHT_SLOTS = frozenset(
    {"value", "index", "zeta", "k", "e", "a", "b", "c", "d", "u", "v"}
)


def _receiver_name(target: ast.expr) -> str:
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.value.id
    return ""


def _rl004_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    rings = in_rings(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                first = node.args[0] if node.args else None
                self_receiver = isinstance(first, ast.Name) and first.id == "self"
                # Ring constructors initialise their frozen slots through
                # object.__setattr__(self, ...); anywhere else this is an
                # immutability escape hatch aimed at someone's interned
                # object.
                if not (rings and self_receiver):
                    yield Finding(
                        "RL004",
                        path,
                        node.lineno,
                        node.col_offset,
                        "object.__setattr__ outside a ring constructor "
                        "mutates frozen interned state",
                    )
            continue
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = _receiver_name(target)
            if receiver in ("", "self", "cls"):
                continue
            if target.attr in _WEIGHT_SLOTS:
                yield Finding(
                    "RL004",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"assignment to {receiver}.{target.attr}: weight objects "
                    "are interned and shared -- build a new value instead of "
                    "mutating",
                )


def _is_empty_dict(value: "ast.expr | None") -> bool:
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
        and not value.keywords
    ):
        return True
    return False


def _rl005_check(
    tree: ast.AST, path: str, ctx: "AnalysisContext"
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if not _is_empty_dict(value):
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            lowered = target.attr.lower()
            if "cache" in lowered or "memo" in lowered:
                yield Finding(
                    "RL005",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"self.{target.attr} is an unbounded dict memo; "
                    "DD-layer caches must use ComputeTable (bounded, "
                    "counted, evictable) -- structurally bounded tables "
                    "may use a pragma",
                )


RULES = (
    Rule("RL004", "mutation of interned weights", in_repro, _rl004_check),
    Rule("RL005", "unbounded dict memo in repro/dd", in_dd, _rl005_check),
)
