"""Rule plugins, one module per rule family.

Every module in this package defines a module-level ``RULES`` tuple of
:class:`tools.repro_lint.core.Rule` objects; the registry
(:mod:`tools.repro_lint.registry`) auto-discovers them with
:func:`pkgutil.iter_modules`, so adding a rule family is: drop a module
here, define ``RULES``, done -- no central list to keep in sync.
"""
