"""Back-compat shim for the pre-framework single-module linter.

The monolithic implementation was split into the framework packages
(:mod:`tools.repro_lint.core`, :mod:`tools.repro_lint.analysis`,
:mod:`tools.repro_lint.rules`, :mod:`tools.repro_lint.engine`, ...).
This module keeps the old import surface alive for external callers;
new code should import from :mod:`tools.repro_lint` directly.
"""

from tools.repro_lint.cli import main
from tools.repro_lint.core import (
    PRAGMA as _PRAGMA,
    Finding,
    Rule,
    parse_suppressions as _suppressions,
)
from tools.repro_lint.engine import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from tools.repro_lint.registry import RULES

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
