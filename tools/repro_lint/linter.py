r"""Project-specific static analysis for the canonical QMDD core.

The runtime sanitizer (:mod:`repro.dd.sanitizer`) catches invariant
violations when they *happen*; this linter rejects the code patterns
that cause them before they run.  Every rule encodes one way the
codebase has to protect canonicity:

``RL001`` -- **no ``Node(...)`` construction outside the unique table.**
    A node built by hand bypasses hash-consing: it can never be the
    unique-table resident for its key, so pointer-equality canonicity
    (and with it ``edges_equal`` and every compute-table key) silently
    breaks.  Only ``repro/dd/unique_table.py`` (the interning site) and
    ``repro/dd/edge.py`` (the terminal singleton) may call ``Node``.

``RL002`` -- **no float/complex literals or ``math``/``cmath`` imports
    in ``repro/rings/*``.**
    The ring layer is the *exact* arithmetic core; a float sneaking in
    turns an algebraic computation into a numeric one without anyone
    choosing that trade-off.  Conversion boundaries (``to_complex``)
    legitimately need float constants -- mark them with a pragma.

``RL003`` -- **no ``==``/``!=`` against float or complex literals.**
    The paper is *about* what happens when floating-point values are
    compared naively; use the tolerance machinery (``ComplexTable``,
    ``system.is_zero``) or an epsilon-aware helper.  Exact sentinel
    comparisons (``eps == 0.0``) are pragma-annotated.

``RL004`` -- **no mutation of interned weight objects.**
    Ring elements and ``ComplexEntry`` instances are hash-consed and
    shared; mutating one corrupts every DD that references it.  Flags
    ``object.__setattr__`` escapes outside the ring constructors and
    attribute assignment to known weight slots on anything but ``self``.

``RL005`` -- **no unbounded dict memos in ``repro/dd/*``.**
    Operation caches must go through :class:`ComputeTable` (bounded,
    counted, evicted); a raw ``self._foo_cache = {}`` grows without
    limit over a long simulation and is invisible to ``cache_stats``.
    Small structurally-bounded tables (e.g. one entry per level) may be
    pragma-annotated.

``RL006`` -- **engine layers report through ``repro.obs``, not ad hoc.**
    ``print(...)`` inside ``repro/dd``/``repro/numeric`` bypasses every
    consumer surface (CLI tables, exporters, CI assertions), and a
    ``self._op_counters = {}``-style dict is an unnamed metrics registry
    nobody can snapshot.  Count through a registry instrument or expose
    plain integer attributes read by a collector.

``RL007`` -- **no reaching into unique-table internals.**
    ``table._table`` / ``table._next_uid`` accessed on anything but
    ``self`` mutates node residency behind the refcount and GC
    bookkeeping: a node popped from the raw dict leaves its children's
    refcounts stale and skips the compute-table invalidation hook.
    Resident-set changes go through ``sweep``/``retain``/``clear`` (or
    the memory manager); only ``repro/dd/unique_table.py`` and
    ``repro/dd/mem.py`` may touch the internals.

``RL008`` -- **no direct ``Simulator(...)`` construction outside the
    facade.**
    :mod:`repro.api` is the single construction path: a
    ``SimulatorConfig`` validates eagerly, wires the sanitizer/GC/
    telemetry consistently, and keeps jobs picklable for the batch
    engine.  A hand-built ``Simulator(manager, gc=..., sanitize=...)``
    re-opens the loose-kwarg surface the facade deprecates.  Only
    ``repro/api.py`` may call the constructor; tests and benchmarks
    (outside ``repro/``) are exempt by scope.

Suppression: append ``# repro-lint: allow[RL00X]`` (comma-separated
codes allowed) to the offending line.

Usage::

    python -m tools.repro_lint [path ...]     # default: src/repro

Exit status is 1 iff any finding survives suppression.  The linter is
dependency-free (stdlib ``ast`` only) so it runs anywhere the tests run.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "main",
]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: Attribute slots of the interned weight classes (``ComplexEntry``,
#: ``DOmega``, ``QOmega``, ``ZOmega``, ``ZSqrt2``) that must never be
#: assigned through a non-``self`` receiver.
_WEIGHT_SLOTS = frozenset(
    {"value", "index", "zeta", "k", "e", "a", "b", "c", "d", "u", "v"}
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A named check with a path scope."""

    code: str
    summary: str
    applies: Callable[[str], bool]
    check: Callable[[ast.AST, str], Iterator[Finding]]


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _basename(path: str) -> str:
    return _posix(path).rsplit("/", 1)[-1]


def _in_rings(path: str) -> bool:
    return "repro/rings/" in _posix(path)


def _in_dd(path: str) -> bool:
    return "repro/dd/" in _posix(path)


def _in_repro(path: str) -> bool:
    return "repro/" in _posix(path) and not _in_lint_corpus_real(path)


def _in_lint_corpus_real(path: str) -> bool:
    # The linter's own source and real (non-virtual) corpus paths are
    # exempt -- corpus files are linted under their *declared* virtual
    # path instead (see tests).
    return "tools/repro_lint/" in _posix(path)


# ---------------------------------------------------------------------------
# RL001: Node() construction is the unique table's privilege
# ---------------------------------------------------------------------------

_NODE_ALLOWED_FILES = frozenset({"unique_table.py", "edge.py"})


def _rl001_applies(path: str) -> bool:
    return _in_repro(path) and _basename(path) not in _NODE_ALLOWED_FILES


def _rl001_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "Node":
            yield Finding(
                "RL001",
                path,
                node.lineno,
                node.col_offset,
                "direct Node(...) construction bypasses the unique table; "
                "build nodes through DDManager.make_node so they are "
                "normalised and hash-consed",
            )


# ---------------------------------------------------------------------------
# RL002: the ring layer stays exact
# ---------------------------------------------------------------------------


def _rl002_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in ("math", "cmath"):
                    yield Finding(
                        "RL002",
                        path,
                        node.lineno,
                        node.col_offset,
                        f"import of {root!r} inside the exact ring layer; "
                        "rings must not depend on floating-point math",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".", 1)[0]
            if root in ("math", "cmath"):
                yield Finding(
                    "RL002",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"import from {root!r} inside the exact ring layer; "
                    "rings must not depend on floating-point math",
                )
        elif isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
            yield Finding(
                "RL002",
                path,
                node.lineno,
                node.col_offset,
                f"{type(node.value).__name__} literal {node.value!r} inside "
                "the exact ring layer; exact rings are integer-coefficient "
                "(conversion boundaries may use a pragma)",
            )


# ---------------------------------------------------------------------------
# RL003: no naive float/complex equality
# ---------------------------------------------------------------------------


def _rl003_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, (float, complex)
            ):
                yield Finding(
                    "RL003",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"==/!= against {type(operand.value).__name__} literal "
                    f"{operand.value!r}; use the tolerance machinery "
                    "(system.is_zero, ComplexTable) or math.isclose "
                    "(exact sentinel comparisons may use a pragma)",
                )
                break


# ---------------------------------------------------------------------------
# RL004: interned weights are immutable
# ---------------------------------------------------------------------------


def _receiver_name(target: ast.expr) -> str:
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.value.id
    return ""


def _rl004_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    in_rings = _in_rings(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                first = node.args[0] if node.args else None
                self_receiver = isinstance(first, ast.Name) and first.id == "self"
                # Ring constructors initialise their frozen slots through
                # object.__setattr__(self, ...); anywhere else this is an
                # immutability escape hatch aimed at someone's interned
                # object.
                if not (in_rings and self_receiver):
                    yield Finding(
                        "RL004",
                        path,
                        node.lineno,
                        node.col_offset,
                        "object.__setattr__ outside a ring constructor "
                        "mutates frozen interned state",
                    )
            continue
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = _receiver_name(target)
            if receiver in ("", "self", "cls"):
                continue
            if target.attr in _WEIGHT_SLOTS:
                yield Finding(
                    "RL004",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"assignment to {receiver}.{target.attr}: weight objects "
                    "are interned and shared -- build a new value instead of "
                    "mutating",
                )


def _rl004_applies(path: str) -> bool:
    return _in_repro(path)


# ---------------------------------------------------------------------------
# RL005: DD-layer memos go through ComputeTable
# ---------------------------------------------------------------------------


def _is_empty_dict(value: "ast.expr | None") -> bool:
    if isinstance(value, ast.Dict) and not value.keys:
        return True
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
        and not value.keywords
    ):
        return True
    return False


def _rl005_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if not _is_empty_dict(value):
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            lowered = target.attr.lower()
            if "cache" in lowered or "memo" in lowered:
                yield Finding(
                    "RL005",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"self.{target.attr} is an unbounded dict memo; "
                    "DD-layer caches must use ComputeTable (bounded, "
                    "counted, evictable) -- structurally bounded tables "
                    "may use a pragma",
                )


# ---------------------------------------------------------------------------
# RL006: engine observability goes through the repro.obs layer
# ---------------------------------------------------------------------------

_COUNTER_DICT_TAGS = ("counter", "stat", "metric")


def _rl006_applies(path: str) -> bool:
    return _in_dd(path) or "repro/numeric/" in _posix(path)


def _rl006_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                yield Finding(
                    "RL006",
                    path,
                    node.lineno,
                    node.col_offset,
                    "print() inside the engine core; report through the "
                    "repro.obs metrics registry / tracer and render at a "
                    "consumer layer (CLI, benchmarks)",
                )
            continue
        value = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if not _is_empty_dict(value):
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            lowered = target.attr.lower()
            if any(tag in lowered for tag in _COUNTER_DICT_TAGS):
                yield Finding(
                    "RL006",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"self.{target.attr} is an ad-hoc counter dict; register "
                    "instruments on the repro.obs MetricsRegistry (or keep "
                    "plain integer attributes read by a collector)",
                )


# ---------------------------------------------------------------------------
# RL007: unique-table internals stay behind the lifecycle API
# ---------------------------------------------------------------------------

_UNIQUE_TABLE_INTERNALS = frozenset({"_table", "_next_uid"})
_UNIQUE_TABLE_PRIVILEGED = frozenset({"unique_table.py", "mem.py"})


def _rl007_applies(path: str) -> bool:
    return _in_repro(path) and _basename(path) not in _UNIQUE_TABLE_PRIVILEGED


def _rl007_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in _UNIQUE_TABLE_INTERNALS:
            continue
        receiver = node.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            continue
        yield Finding(
            "RL007",
            path,
            node.lineno,
            node.col_offset,
            f"access to unique-table internal {node.attr!r} outside the "
            "lifecycle layer; resident-set changes must go through "
            "sweep/retain/clear (or DDManager.memory) so refcounts stay "
            "balanced and derived caches are invalidated",
        )


# ---------------------------------------------------------------------------
# RL008: Simulator construction is the facade's privilege
# ---------------------------------------------------------------------------


def _rl008_applies(path: str) -> bool:
    return _in_repro(path) and not _posix(path).endswith("repro/api.py")


def _rl008_check(tree: ast.AST, path: str) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "Simulator":
            yield Finding(
                "RL008",
                path,
                node.lineno,
                node.col_offset,
                "direct Simulator(...) construction outside repro.api; "
                "build a SimulatorConfig and go through repro.api "
                "(run / run_batch / make_simulator / "
                "SimulatorConfig.create_simulator)",
            )


RULES: Tuple[Rule, ...] = (
    Rule("RL001", "Node() outside the unique table", _rl001_applies, _rl001_check),
    Rule("RL002", "float/math leakage into exact rings", _in_rings, _rl002_check),
    Rule("RL003", "naive float/complex equality", _in_repro, _rl003_check),
    Rule("RL004", "mutation of interned weights", _rl004_applies, _rl004_check),
    Rule("RL005", "unbounded dict memo in repro/dd", _in_dd, _rl005_check),
    Rule(
        "RL006",
        "ad-hoc observability in the engine core",
        _rl006_applies,
        _rl006_check,
    ),
    Rule(
        "RL007",
        "unique-table internals accessed outside the lifecycle layer",
        _rl007_applies,
        _rl007_check,
    ),
    Rule(
        "RL008",
        "Simulator() construction outside the repro.api facade",
        _rl008_applies,
        _rl008_check,
    ),
)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _suppressions(source: str) -> Dict[int, Set[str]]:
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            allowed[lineno] = {code for code in codes if code}
    return allowed


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint ``source`` as if it lived at ``path`` (rule scoping uses the
    path, so tests can lint corpus snippets under virtual paths)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                "RL000",
                path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"syntax error: {error.msg}",
            )
        ]
    allowed = _suppressions(source)
    findings: List[Finding] = []
    for rule in RULES:
        if not rule.applies(path):
            continue
        for finding in rule.check(tree, path):
            if finding.rule in allowed.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in ("__pycache__", ".git")]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for root in paths:
        for path in iter_python_files(root):
            findings.extend(lint_file(path))
    return findings


def main(argv: "Sequence[str] | None" = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="project-specific static checks for the QMDD core",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)")
        return 1
    print("repro-lint: clean")
    return 0
