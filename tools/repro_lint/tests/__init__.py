"""Self-test corpus for repro-lint.

``cases/`` holds one minimal *bad example* per rule.  Each case file
declares the virtual path it should be linted under (rules are
path-scoped) with a ``# lint-path:`` header and marks every line that
must fire with ``# lint-expect: RL00X``.  The harness in
``tests/test_repro_lint.py`` asserts the finding set matches the
markers exactly -- each rule fires precisely where expected, nowhere
else -- and that the real ``src/repro`` tree stays clean.
"""
