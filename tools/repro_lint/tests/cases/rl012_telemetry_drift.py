# lint-path: src/repro/obs/rogue_metrics.py
"""RL012: instrument names must match the docs/OBSERVABILITY.md table."""


def register_instruments(registry):
    undocumented = registry.counter("rogue.instrument.name")  # lint-expect: RL012
    wrong_kind = registry.histogram("sim.gates")  # lint-expect: RL012
    documented = registry.counter("sim.gates")
    return undocumented, wrong_kind, documented


def register_pattern_member(registry):
    # Matches the documented `exec.batch.*` rows.
    return registry.gauge("exec.batch.workers")


def suppressed_experiment(registry):
    # Experimental instrument, deliberately not in the catalog yet.
    return registry.counter("exp.scratch.probe")  # repro-lint: allow[RL012]
