# lint-path: src/repro/rings/sloppy_ring.py
"""RL002: floats and math imports must not leak into the exact rings."""

import math  # lint-expect: RL002
from cmath import exp  # lint-expect: RL002

HALF = 0.5  # lint-expect: RL002
PHASE = 1j  # lint-expect: RL002

ANCHOR = 1.4142135623730951  # repro-lint: allow[RL002] (conversion boundary)

INTEGERS_ARE_FINE = 42


def uses(value):
    return exp(value) * math.pi
