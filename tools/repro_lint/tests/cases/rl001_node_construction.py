# lint-path: src/repro/dd/rogue_builder.py
"""RL001: hand-built nodes bypass hash-consing."""

from repro.dd.edge import Edge, Node
from repro.dd import edge as edge_mod


def rogue(level, children):
    node = Node(17, level, tuple(children))  # lint-expect: RL001
    also = edge_mod.Node(18, level, ())  # lint-expect: RL001
    return Edge(node, 1), also


def fine(manager, level, children):
    # The blessed path: normalised and interned.
    return manager.make_node(level, children)
