# lint-path: src/repro/rings/rogue_ring.py
"""RL010: ring purity -- no argument mutation, no module state."""

_MEMO = {}  # lint-expect: RL010


def scale_in_place(values, factor):
    for index in range(len(values)):
        values[index] = values[index] * factor  # lint-expect: RL010
    return values


def append_conjugate(values, item):
    values.append(item)  # lint-expect: RL010
    return values


def count_calls(key):
    global _CALLS  # lint-expect: RL010
    _CALLS = key
    return key


def normalize_pair(left, right):  # lint-expect: RL010
    # Directly pure, but transitively impure: it delegates to the
    # in-place helper above (flagged by the project-level pass).
    return scale_in_place(left, right)


def defensive_copy(values, factor):
    # Rebinding the parameter to a fresh list first keeps this pure.
    values = list(values)
    values[0] = values[0] * factor
    return values


def suppressed_scrub(values):
    # Deliberate in-place API, documented at every call site.
    values.clear()  # repro-lint: allow[RL010]
