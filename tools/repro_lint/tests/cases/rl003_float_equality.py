# lint-path: src/repro/numeric/sloppy_compare.py
"""RL003: naive equality against float/complex literals."""


def classify(amplitude, norm):
    if amplitude == 0.0:  # lint-expect: RL003
        return "zero"
    if norm != 1.0:  # lint-expect: RL003
        return "unnormalised"
    if amplitude == 1j:  # lint-expect: RL003
        return "imaginary unit"
    if norm == 1:  # integer sentinel: not flagged
        return "unit"
    exact_eps = 0.0
    if exact_eps == 0.0:  # repro-lint: allow[RL003] (exact sentinel)
        return "exact mode"
    return "other"
