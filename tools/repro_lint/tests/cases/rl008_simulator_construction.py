# lint-path: src/repro/evalsuite/rogue_driver.py
"""RL008: Simulator construction belongs to the repro.api facade."""

from repro import sim
from repro.api import SimulatorConfig, make_simulator
from repro.sim.simulator import Simulator


def rogue(manager, circuit):
    simulator = Simulator(manager, sanitize="check-on-root")  # lint-expect: RL008
    qualified = sim.simulator.Simulator(manager)  # lint-expect: RL008
    return simulator.run(circuit), qualified


def fine(manager, circuit):
    # The blessed paths: the facade validates and wires everything.
    config = SimulatorConfig(sanitize="check-on-root")
    by_manager = make_simulator(manager, config)
    by_config = config.create_simulator(circuit.num_qubits)
    return by_manager.run(circuit), by_config
