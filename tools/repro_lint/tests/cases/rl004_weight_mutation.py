# lint-path: src/repro/dd/weight_mutator.py
"""RL004: interned weight objects are shared -- never mutate them."""


def corrupt(entry, weight):
    entry.value = complex(0, 0)  # lint-expect: RL004
    weight.k += 1  # lint-expect: RL004
    object.__setattr__(weight, "zeta", None)  # lint-expect: RL004
    return entry


class Holder:
    def __init__(self, value):
        # Plain self-attribute assignment is not a weight mutation.
        self.value = value
