# lint-path: src/repro/dd/noisy_kernel.py
"""RL006: engine layers report through repro.obs, not print/ad-hoc dicts."""

from typing import Dict


class NoisyKernel:
    def __init__(self):
        self._op_counters = {}  # lint-expect: RL006
        self.statistics_by_gate: Dict[str, int] = dict()  # lint-expect: RL006
        self._metric_totals = {}  # repro-lint: allow[RL006] (migration shim)
        self.hits = 0  # plain integer counter read by a collector: fine

    def apply(self, gate):
        print("applying", gate)  # lint-expect: RL006
        self.hits += 1

    def debug(self, message):
        print(f"debug: {message}")  # lint-expect: RL006
