# lint-path: src/repro/exec/rogue_batch.py
"""RL011: payloads crossing the process-pool boundary must pickle."""


def execute_job(job):
    # Module-level function: picklable by qualified name.
    return job


def submit_lambda(pool, jobs):
    return [pool.submit(lambda job: job.run(), job) for job in jobs]  # lint-expect: RL011


def submit_named_lambda(pool, job):
    runner = lambda: job.run()  # noqa: E731 -- deliberate bad example
    return pool.submit(runner)  # lint-expect: RL011


def submit_nested(pool, payload):
    def worker(item):
        return item

    return pool.submit(worker, payload)  # lint-expect: RL011


def submit_open_handle(pool, path):
    return pool.submit(execute_job, open(path, "rb"))  # lint-expect: RL011


def batch_with_lambda_callback(requests, run_batch):
    post = lambda result: result.node_count  # noqa: E731
    return run_batch(requests, on_result=post)  # lint-expect: RL011


class RogueRunner:
    def run_all(self, pool, jobs):
        return [pool.submit(self.execute, job) for job in jobs]  # lint-expect: RL011

    def execute(self, job):
        return job


def clean_submission(pool, jobs):
    # The blessed shape: module-level callable, plain-data payloads.
    return [pool.submit(execute_job, job) for job in jobs]


def suppressed(pool, job):
    # In-process executor shim used by a test double.
    return pool.submit(lambda: job)  # repro-lint: allow[RL011]
