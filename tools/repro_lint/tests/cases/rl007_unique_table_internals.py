# lint-path: src/repro/dd/rogue_pruner.py
"""RL007: node residency changes bypass the lifecycle layer.

Popping nodes out of the raw unique-table dict leaves child refcounts
stale and skips the compute-table invalidation hook; minting uids by
hand breaks the shared uid space of the vector and matrix tables.
"""


def rogue_prune(manager, live_uids):
    table = manager._vector_table
    for key in list(table._table):  # lint-expect: RL007
        if table._table[key].uid not in live_uids:  # lint-expect: RL007
            del table._table[key]  # lint-expect: RL007


def rogue_uid(table):
    return table._next_uid()  # lint-expect: RL007


def fine(manager, live_uids):
    # The blessed path: refcount-aware sweep plus derived-cache
    # invalidation through the memory manager.
    manager._vector_table.retain(live_uids)
    return manager.memory.collect()
