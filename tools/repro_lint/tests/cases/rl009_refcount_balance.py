# lint-path: src/repro/dd/rogue_roots.py
"""RL009: every inc_ref must reach a dec_ref or a declared transfer."""


def leaks_on_early_return(memory, state, flag):
    memory.inc_ref(state)  # lint-expect: RL009
    if flag:
        return None  # leak: still registered on this path
    memory.dec_ref(state)
    return state


def leaks_on_raise(memory, edge):
    memory.inc_ref(edge)  # lint-expect: RL009
    if edge.node.is_terminal:
        raise ValueError("terminal edges need no root")
    memory.dec_ref(edge)


def balanced_with_finally(memory, edge, compute):
    memory.inc_ref(edge)
    try:
        return compute(edge)
    finally:
        memory.dec_ref(edge)


def balanced_alias_move(memory, state, operations):
    # The evolving-state idiom from Simulator.run: registration follows
    # the value through `state = new_state`.
    memory.inc_ref(state)
    for operation in operations:
        new_state = operation(state)
        memory.inc_ref(new_state)
        memory.dec_ref(state)
        state = new_state
    memory.dec_ref(state)


def declared_transfer(memory, result_factory, state):
    # Ownership deliberately moves into the returned result object;
    # the annotated call consumes the registration.
    memory.inc_ref(state)
    return result_factory(state)  # repro-lint: transfers-ownership


def declared_transfer_acquisition(memory, registry, edge):
    # Annotating the acquisition itself: the registration is handed to
    # a long-lived registry that releases it at shutdown.
    memory.inc_ref(edge)  # repro-lint: transfers-ownership
    registry.adopt(edge)


def suppressed_leak(memory, edge):
    # Deliberate: kept alive for the life of the process.
    memory.inc_ref(edge)  # repro-lint: allow[RL009]
    return edge
