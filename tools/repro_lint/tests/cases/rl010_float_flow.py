# lint-path: src/repro/dd/rogue_weights.py
"""RL010: float literals must not flow into NumberSystem weight ops."""


def shrink_direct(system, weight):
    return system.mul(weight, 0.5)  # lint-expect: RL010


def shrink_via_local(system, weight):
    half = 1.0 / 2  # tainted local
    return system.mul(weight, half)  # lint-expect: RL010


def blessed_boundary(system, amplitude):
    # from_complex is the conversion boundary: floats are expected.
    return system.from_complex(amplitude * 0.5)


def exact_scale(system, weight, factor):
    # Exact path: the factor is already an interned ring value.
    return system.mul(weight, factor)


def suppressed_probe(system, weight):
    # Calibration probe, deliberately numeric.
    return system.mul(weight, 0.25)  # repro-lint: allow[RL010]
