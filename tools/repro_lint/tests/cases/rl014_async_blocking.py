# lint-path: src/repro/serve/rogue_frontend.py
"""RL014: async service handlers must never block the event loop."""

import asyncio
import os
import subprocess
import time
from subprocess import Popen, check_output
from time import sleep


async def poll_with_sync_sleep(queue):
    while queue.empty():
        time.sleep(0.05)  # lint-expect: RL014
    return queue.get_nowait()


async def poll_with_imported_sleep(queue):
    sleep(0.05)  # lint-expect: RL014
    return queue.get_nowait()


async def shell_out(request):
    subprocess.run(["repro-qmdd", "simulate"], check=True)  # lint-expect: RL014
    check_output(["repro-qmdd", "report"])  # lint-expect: RL014
    return request


async def spawn_worker(command):
    os.system(command)  # lint-expect: RL014
    return Popen(command)  # lint-expect: RL014


async def clean_handler(loop, pool, client, serve_request):
    # The blessed shapes: async sleep, blocking work in the executor.
    await asyncio.sleep(0.05)

    def blocking_probe():
        # Nested *sync* def: runs on an executor thread, exempt.
        time.sleep(0.01)
        return client.execute(serve_request)

    return await loop.run_in_executor(pool, blocking_probe)


def sync_helper():
    # Plain sync function: blocking is its job.
    time.sleep(0.01)


async def suppressed_handler():
    time.sleep(0.0)  # repro-lint: allow[RL014]
