# lint-path: src/repro/dd/mem.py
"""RL013: no state committed between budget check and a possible raise."""


class RogueManager:
    def enforce_budget(self):
        if self.over_budget():
            raise MemoryBudgetExceeded("live state exceeds the budget")

    def trigger(self):
        self._threshold = self._threshold * 2  # lint-expect: RL013
        self.enforce_budget()
        self._collections = self._collections + 1  # safe: after the check

    def trigger_transitively(self):
        self._policy["mode"] = "grow"  # lint-expect: RL013
        self.trigger()

    def safe_order(self):
        self.enforce_budget()
        self._threshold = self._threshold * 2

    def suppressed_high_water(self, nodes):
        # Monotone high-water mark: truthful even if enforcement raises.
        self.peak_nodes = max(self.peak_nodes, nodes)  # repro-lint: allow[RL013]
        self.enforce_budget()
