# lint-path: src/repro/dd/greedy_cache.py
"""RL005: DD-layer memos must be bounded ComputeTables."""

from typing import Any, Dict


class GreedyKernel:
    def __init__(self):
        self._result_cache = {}  # lint-expect: RL005
        self._walk_memo: Dict[int, Any] = dict()  # lint-expect: RL005
        self._level_cache: Dict[int, Any] = {}  # repro-lint: allow[RL005] (one entry per level)
        self._signatures = {}  # not a cache/memo name: not flagged

    def compute(self, key):
        # Function-local memos are bounded by the call and are fine.
        memo = {}
        memo[key] = key
        return memo[key]
