"""Lint engine: drives the per-file and project passes.

Pass one parses each file once, runs every applicable per-file rule
check, and extracts the serialisable :class:`FileFacts` record -- this
pass is parallelisable (``--jobs``) and cacheable, because its output
is a pure function of the file's content (plus the rule set and the
observability catalog, both folded into the cache version).  Pass two
runs each rule's optional ``project_check`` over the
:class:`AnalysisContext` assembled from *all* facts; it reruns on every
invocation so cross-file findings never go stale, but costs no parsing.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from tools.repro_lint.analysis import AnalysisContext, FileFacts, extract_facts
from tools.repro_lint.cache import DEFAULT_CACHE_NAME, LintCache, file_digest
from tools.repro_lint.core import Finding, posix
from tools.repro_lint.registry import RULES, rules_signature

__all__ = [
    "LintRun",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "run_lint",
    "resolve_jobs",
]


def iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in ("__pycache__", ".git")]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _syntax_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(
        "RL000",
        path,
        error.lineno or 1,
        (error.offset or 1) - 1,
        f"syntax error: {error.msg}",
    )


def _check_file(
    source: str, path: str, doc_path: Optional[Path] = None
) -> Tuple[List[Finding], Optional[FileFacts]]:
    """Per-file pass for one file: parse, facts, applicable rule checks,
    line-pragma suppression.  Returns ``(findings, facts)``; facts are
    ``None`` when the file does not parse."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [_syntax_finding(path, error)], None
    facts = extract_facts(tree, path, source)
    ctx = AnalysisContext({facts.path: facts}, doc_path=doc_path)
    findings: List[Finding] = []
    for rule in RULES:
        if not rule.applies(path):
            continue
        for finding in rule.check(tree, path, ctx):
            if facts.allows(finding.line, finding.rule):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, facts


def _project_findings(ctx: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for rule in RULES:
        if rule.project_check is None:
            continue
        findings.extend(rule.project_check(ctx))
    return ctx.suppress(findings)


# ---------------------------------------------------------------------------
# Single-file convenience API (tier-1 corpus harness, editors)
# ---------------------------------------------------------------------------


def lint_source(
    source: str, path: str, doc_path: Optional[Path] = None
) -> List[Finding]:
    """Lint ``source`` as if it lived at ``path`` (rule scoping uses the
    path, so tests can lint corpus snippets under virtual paths).

    Runs the per-file checks *and* the project checks over a
    single-file context, so dataflow rules with a project component
    (e.g. transitive ring purity) are exercised too; project checks
    that need the full tree gate themselves on ``ctx.is_full_tree``.
    """
    findings, facts = _check_file(source, path, doc_path=doc_path)
    if facts is not None:
        ctx = AnalysisContext({facts.path: facts}, doc_path=doc_path)
        findings.extend(_project_findings(ctx))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Full two-pass lint of ``paths`` (no cache, sequential)."""
    return run_lint(paths, jobs=1, use_cache=False).findings


# ---------------------------------------------------------------------------
# Batch engine with cache + jobs
# ---------------------------------------------------------------------------


@dataclass
class LintRun:
    """Outcome of one engine invocation."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    @property
    def cached_fraction(self) -> float:
        return self.cache_hits / self.files if self.files else 0.0


def resolve_jobs(spec: "str | int | None") -> int:
    """``--jobs`` value -> worker count (``auto`` = CPU count)."""
    if spec is None:
        return 1
    if isinstance(spec, int):
        return max(1, spec)
    text = str(spec).strip().lower()
    if text == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(text))
    except ValueError:
        raise SystemExit(f"repro_lint: invalid --jobs value {spec!r}")


def _worker_check(
    payload: Tuple[str, str, Optional[str]]
) -> Tuple[str, List[Finding], Optional[FileFacts]]:
    """Top-level (picklable) per-file task for the process pool."""
    path, source, doc = payload
    findings, facts = _check_file(
        source, path, doc_path=Path(doc) if doc is not None else None
    )
    return path, findings, facts


def _cache_version(doc_path: Path) -> str:
    try:
        doc_hash = file_digest(doc_path.read_bytes())
    except OSError:
        doc_hash = "absent"
    return f"{rules_signature()}:{doc_hash}"


def run_lint(
    paths: Sequence[str],
    *,
    jobs: int = 1,
    use_cache: bool = True,
    cache_path: Optional[Path] = None,
    doc_path: Optional[Path] = None,
) -> LintRun:
    """Two-pass lint of every Python file under ``paths``."""
    from tools.repro_lint.analysis import default_doc_path

    resolved_doc = doc_path if doc_path is not None else default_doc_path()
    files: List[str] = []
    for root in paths:
        files.extend(iter_python_files(root))

    cache: Optional[LintCache] = None
    if use_cache:
        resolved_cache = (
            cache_path if cache_path is not None else Path(DEFAULT_CACHE_NAME)
        )
        cache = LintCache.load(resolved_cache, _cache_version(resolved_doc))

    run = LintRun(jobs=jobs, files=len(files))
    all_facts: Dict[str, FileFacts] = {}
    findings: List[Finding] = []
    pending: List[Tuple[str, str, os.stat_result, str]] = []  # path, source, stat, digest

    for path in files:
        key = posix(path)
        stat = os.stat(path)
        if cache is not None:
            entry = cache.lookup(key, stat)
            if entry is not None:
                findings.extend(entry.findings)
                if entry.facts is not None:
                    all_facts[entry.facts.path] = entry.facts
                continue
        with open(path, "rb") as handle:
            data = handle.read()
        digest = file_digest(data)
        if cache is not None:
            entry = cache.lookup_by_digest(key, stat, digest)
            if entry is not None:
                findings.extend(entry.findings)
                if entry.facts is not None:
                    all_facts[entry.facts.path] = entry.facts
                continue
        pending.append((path, data.decode("utf-8"), stat, digest))

    doc_arg = str(resolved_doc)
    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _worker_check,
                    [
                        (path, source, doc_arg)
                        for path, source, _stat, _digest in pending
                    ],
                )
            )
    else:
        results = [
            _worker_check((path, source, doc_arg))
            for path, source, _stat, _digest in pending
        ]

    by_path = {path: (file_findings, facts) for path, file_findings, facts in results}
    for path, _source, stat, digest in pending:
        file_findings, facts = by_path[path]
        findings.extend(file_findings)
        if facts is not None:
            all_facts[facts.path] = facts
        if cache is not None:
            cache.store(posix(path), stat, digest, file_findings, facts)

    if cache is not None:
        run.cache_hits, run.cache_misses = cache.stats()
        cache.prune({posix(path) for path in files})
        cache.save()
    else:
        run.cache_misses = len(pending)

    ctx = AnalysisContext(all_facts, doc_path=resolved_doc)
    findings.extend(_project_findings(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    run.findings = findings
    return run
