"""Shared analysis core: per-file facts and cross-module artifacts.

The framework runs in two passes.  Pass one parses each file once and
runs the per-file rule checks; while the AST is hot it also extracts a
serialisable :class:`FileFacts` record (function inventory, call edges,
raised exceptions, purity issues, telemetry-instrument registrations,
pragma lines).  Pass two never re-reads source: the *project* checks
(transitive ring purity, telemetry-name drift) and the cross-module
artifacts -- the import/call graph, the purity summary, the may-raise
sets -- are all derived from facts, which the incremental cache
(:mod:`tools.repro_lint.cache`) persists alongside findings.  A warm
run therefore skips parsing entirely for unchanged files while the
project-level analyses still see the whole tree.
"""

from __future__ import annotations

import ast
import itertools
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.repro_lint.core import (
    Finding,
    parse_suppressions,
    posix,
    transfer_lines,
)

__all__ = [
    "PurityIssue",
    "FunctionFact",
    "FileFacts",
    "CallGraph",
    "DocEntry",
    "DocInventory",
    "AnalysisContext",
    "extract_facts",
    "summarize_function_purity",
    "summarize_module_purity",
    "default_doc_path",
]

#: Receiver methods that mutate their receiver in place.  Calling one
#: of these on a function parameter makes the function impure.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "__setitem__",
        "__delitem__",
    }
)

#: Files whose joint presence marks a full-tree run (project checks
#: that need the whole source tree, e.g. the reverse direction of
#: RL012, only fire in full-tree mode).
FULL_TREE_SENTINELS = (
    "repro/sim/simulator.py",
    "repro/dd/mem.py",
    "repro/exec/batch.py",
)


# ---------------------------------------------------------------------------
# Per-file facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PurityIssue:
    """One reason a function (or module) is impure."""

    line: int
    col: int
    kind: str  # "global-decl" | "param-mutation" | "module-global"
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PurityIssue":
        return cls(
            line=int(payload["line"]),
            col=int(payload["col"]),
            kind=str(payload["kind"]),
            message=str(payload["message"]),
        )


@dataclass
class FunctionFact:
    """Inventory record for one function definition."""

    qualname: str
    name: str
    lineno: int
    calls: Set[str] = field(default_factory=set)
    raises: Set[str] = field(default_factory=set)
    purity_issues: List[PurityIssue] = field(default_factory=list)

    @property
    def directly_pure(self) -> bool:
        return not self.purity_issues

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "calls": sorted(self.calls),
            "raises": sorted(self.raises),
            "purity_issues": [issue.to_dict() for issue in self.purity_issues],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionFact":
        return cls(
            qualname=str(payload["qualname"]),
            name=str(payload["name"]),
            lineno=int(payload["lineno"]),
            calls=set(payload.get("calls", ())),
            raises=set(payload.get("raises", ())),
            purity_issues=[
                PurityIssue.from_dict(issue)
                for issue in payload.get("purity_issues", ())
            ],
        )


@dataclass
class FileFacts:
    """Everything the project-level passes need to know about a file.

    Facts are a pure function of the file's content, so they are safe
    to cache by content hash and reuse even when *other* files change.
    """

    path: str
    functions: List[FunctionFact] = field(default_factory=list)
    module_purity_issues: List[PurityIssue] = field(default_factory=list)
    #: (instrument name, kind, line, col) for every literal
    #: ``.counter("x")`` / ``.gauge("x")`` / ``.histogram("x", ...)``.
    registrations: List[Tuple[str, str, int, int]] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    transfer_lines: Set[int] = field(default_factory=set)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "functions": [fn.to_dict() for fn in self.functions],
            "module_purity_issues": [
                issue.to_dict() for issue in self.module_purity_issues
            ],
            "registrations": [list(item) for item in self.registrations],
            "suppressions": {
                str(line): sorted(codes)
                for line, codes in self.suppressions.items()
            },
            "transfer_lines": sorted(self.transfer_lines),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FileFacts":
        return cls(
            path=str(payload["path"]),
            functions=[
                FunctionFact.from_dict(fn) for fn in payload.get("functions", ())
            ],
            module_purity_issues=[
                PurityIssue.from_dict(issue)
                for issue in payload.get("module_purity_issues", ())
            ],
            registrations=[
                (str(name), str(kind), int(line), int(col))
                for name, kind, line, col in payload.get("registrations", ())
            ],
            suppressions={
                int(line): set(codes)
                for line, codes in payload.get("suppressions", {}).items()
            },
            transfer_lines=set(payload.get("transfer_lines", ())),
        )

    def allows(self, line: int, code: str) -> bool:
        return code in self.suppressions.get(line, ())


# ---------------------------------------------------------------------------
# Facts extraction
# ---------------------------------------------------------------------------

_REGISTRATION_KINDS = frozenset({"counter", "gauge", "histogram"})


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func  # type: ignore[assignment]
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def summarize_function_purity(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[PurityIssue]:
    """Direct impurity evidence for one function body.

    Three kinds of evidence, matching the RL010 contract for the exact
    ring layer: ``global`` declarations, in-place mutation of a
    parameter (attribute/item assignment or a mutating method call on a
    parameter name), and nothing else -- constructors initialising
    ``self`` are exempt by parameter filtering.
    """
    params = {
        arg.arg
        for arg in itertools.chain(
            fn.args.posonlyargs, fn.args.args, fn.args.kwonlyargs
        )
    }
    if fn.args.vararg is not None:
        params.add(fn.args.vararg.arg)
    if fn.args.kwarg is not None:
        params.add(fn.args.kwarg.arg)
    params.discard("self")
    params.discard("cls")

    # A parameter rebound to a local value (``values = list(values)``)
    # is a defensive copy; mutations through the new binding are local.
    rebound: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.FunctionDef) and node is not fn:
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    rebound.add(target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name):
                rebound.add(target.id)

    tracked = params - rebound
    issues: List[PurityIssue] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            issues.append(
                PurityIssue(
                    node.lineno,
                    node.col_offset,
                    "global-decl",
                    f"'global {', '.join(node.names)}' introduces module-global "
                    "state into a ring function",
                )
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                if isinstance(base, (ast.Attribute, ast.Subscript)) and isinstance(
                    base.value, ast.Name
                ):
                    if base.value.id in tracked:
                        what = (
                            f"{base.value.id}.{base.attr}"
                            if isinstance(base, ast.Attribute)
                            else f"{base.value.id}[...]"
                        )
                        issues.append(
                            PurityIssue(
                                target.lineno,
                                target.col_offset,
                                "param-mutation",
                                f"assignment to {what} mutates a ring-value "
                                "argument in place",
                            )
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in tracked
            ):
                issues.append(
                    PurityIssue(
                        node.lineno,
                        node.col_offset,
                        "param-mutation",
                        f"{func.value.id}.{func.attr}(...) mutates a ring-value "
                        "argument in place",
                    )
                )
    issues.sort(key=lambda issue: (issue.line, issue.col))
    return issues


def _is_mutable_literal(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("dict", "list", "set", "bytearray")
    ):
        return True
    return False


def summarize_module_purity(tree: ast.Module) -> List[PurityIssue]:
    """Module-level mutable state (the ring layer must not have any)."""
    issues: List[PurityIssue] = []
    for node in tree.body:
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if value is None or not _is_mutable_literal(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not (
                target.id.startswith("__") and target.id.endswith("__")
            ):
                issues.append(
                    PurityIssue(
                        node.lineno,
                        node.col_offset,
                        "module-global",
                        f"module-level mutable container {target.id!r}; ring "
                        "state must live in the (GC-swept, observable) "
                        "number-system layer, not in hidden module globals",
                    )
                )
    return issues


def extract_facts(tree: ast.Module, path: str, source: str) -> FileFacts:
    """One-pass facts extraction while the AST is hot."""
    facts = FileFacts(
        path=posix(path),
        suppressions=parse_suppressions(source),
        transfer_lines=transfer_lines(source),
    )
    facts.module_purity_issues = summarize_module_purity(tree)

    def visit_scope(
        body: Sequence[ast.stmt], prefix: str
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}" if prefix else node.name
                fact = FunctionFact(
                    qualname=qualname,
                    name=node.name,
                    lineno=node.lineno,
                    purity_issues=summarize_function_purity(node),
                )
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Call):
                        name = _call_name(inner)
                        if name is not None:
                            fact.calls.add(name)
                    elif isinstance(inner, ast.Raise):
                        name = _raised_name(inner)
                        if name is not None:
                            fact.raises.add(name)
                facts.functions.append(fact)
                visit_scope(node.body, f"{qualname}.")
            elif isinstance(node, ast.ClassDef):
                visit_scope(node.body, f"{prefix}{node.name}.")

    visit_scope(tree.body, "")

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _REGISTRATION_KINDS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            facts.registrations.append(
                (node.args[0].value, func.attr, node.lineno, node.col_offset)
            )
    return facts


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class CallGraph:
    """Name-based call graph over every function fact in the run.

    Edges connect a function (keyed ``path::qualname``) to the *simple*
    names it calls.  Resolution is intentionally name-based and
    conservative -- for invariants like "may transitively raise
    MemoryBudgetExceeded" an over-approximation is the safe direction.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionFact] = {}
        self._by_simple_name: Dict[str, List[str]] = {}

    @classmethod
    def build(cls, facts: Iterable[FileFacts]) -> "CallGraph":
        graph = cls()
        for file_facts in facts:
            for fn in file_facts.functions:
                key = f"{file_facts.path}::{fn.qualname}"
                graph.functions[key] = fn
                graph._by_simple_name.setdefault(fn.name, []).append(key)
        return graph

    def keys_for_name(self, name: str) -> List[str]:
        return list(self._by_simple_name.get(name, ()))

    def callees(self, key: str) -> Set[str]:
        return set(self.functions[key].calls)

    def callers_of(self, name: str) -> List[str]:
        """Keys of every function whose body calls ``name``."""
        return [
            key for key, fn in self.functions.items() if name in fn.calls
        ]

    def may_raise(self, exception: str) -> Set[str]:
        """Simple names of functions that may (transitively) raise.

        Seeds are functions with a literal ``raise <exception>``;
        propagation follows call edges by simple name to a fixpoint.
        """
        tainted: Set[str] = {
            fn.name for fn in self.functions.values() if exception in fn.raises
        }
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                if fn.name not in tainted and fn.calls & tainted:
                    tainted.add(fn.name)
                    changed = True
        return tainted


# ---------------------------------------------------------------------------
# Telemetry documentation inventory (docs/OBSERVABILITY.md)
# ---------------------------------------------------------------------------

_PUSH_KINDS = frozenset({"counter", "gauge", "histogram"})
_DOC_KINDS = _PUSH_KINDS | {"collected"}
_CODE_SPAN = re.compile(r"`([^`]+)`")


@dataclass(frozen=True)
class DocEntry:
    """One instrument-name pattern from the documentation catalog."""

    display: str
    regex: "re.Pattern[str]"
    kinds: frozenset
    line: int
    #: Concrete expansions (empty when the pattern has an open
    #: ``<wildcard>`` segment -- such rows are skipped by the reverse
    #: drift direction).
    concrete_names: Tuple[str, ...] = ()

    def matches(self, name: str) -> bool:
        return self.regex.fullmatch(name) is not None


def _expand_pattern(pattern: str) -> Tuple[str, List[str]]:
    """Doc pattern -> (regex source, concrete expansions).

    ``{a,b}`` and ``<a|b>`` are finite alternations; ``<word>`` without
    an alternative is an open wildcard (one dotted segment).
    """
    regex_parts: List[str] = []
    expansions: List[List[str]] = []
    wildcard = False
    index = 0
    token = re.compile(r"\{([^}]*)\}|<([^>]*)>")
    for match in token.finditer(pattern):
        literal = pattern[index : match.start()]
        regex_parts.append(re.escape(literal))
        expansions.append([literal])
        body = match.group(1) if match.group(1) is not None else match.group(2)
        body = body.replace("\\|", "|")
        if match.group(1) is not None:
            options = [item.strip() for item in body.split(",")]
        elif "|" in body:
            options = [item.strip() for item in body.split("|")]
        else:
            options = []
        if options:
            regex_parts.append("(?:" + "|".join(re.escape(o) for o in options) + ")")
            expansions.append(options)
        else:
            regex_parts.append(r"[^.]+")
            expansions.append([])
            wildcard = True
        index = match.end()
    tail = pattern[index:]
    regex_parts.append(re.escape(tail))
    expansions.append([tail])
    if wildcard:
        return "".join(regex_parts), []
    concrete = [
        "".join(parts) for parts in itertools.product(*expansions)
    ]
    return "".join(regex_parts), concrete


class DocInventory:
    """Parsed instrument catalog of ``docs/OBSERVABILITY.md``."""

    def __init__(self, entries: List[DocEntry]) -> None:
        self.entries = entries

    @classmethod
    def parse(cls, text: str) -> "DocInventory":
        entries: List[DocEntry] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped.startswith("|"):
                continue
            cells = [
                cell.strip()
                for cell in re.split(r"(?<!\\)\|", stripped)
            ]
            # ['', name, kind, meaning, ..., ''] after the outer pipes.
            if len(cells) < 4:
                continue
            name_cell, kind_cell = cells[1], cells[2]
            kinds = [
                token
                for token in ("counter", "gauge", "histogram", "collected")
                if re.search(rf"\b{token}\b", kind_cell)
            ]
            if not kinds:
                continue
            names = _CODE_SPAN.findall(name_cell)
            if not names:
                continue
            kind_tokens = [
                token
                for token in re.split(r"\s*/\s*", kind_cell)
                if token in _DOC_KINDS
            ]
            positional = len(kind_tokens) == len(names) and len(names) > 1
            for position, name in enumerate(names):
                if positional:
                    entry_kinds = frozenset({kind_tokens[position]})
                else:
                    entry_kinds = frozenset(kinds)
                regex_src, concrete = _expand_pattern(name)
                entries.append(
                    DocEntry(
                        display=name,
                        regex=re.compile(regex_src),
                        kinds=entry_kinds,
                        line=lineno,
                        concrete_names=tuple(concrete),
                    )
                )
        return cls(entries)

    def lookup(self, name: str) -> List[DocEntry]:
        return [entry for entry in self.entries if entry.matches(name)]

    def push_entries(self) -> List[DocEntry]:
        """Entries documented as push instruments (counter/gauge/histogram)."""
        return [
            entry
            for entry in self.entries
            if entry.kinds & _PUSH_KINDS
        ]


def default_doc_path() -> Path:
    """``docs/OBSERVABILITY.md`` resolved relative to the repo root."""
    return Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


# ---------------------------------------------------------------------------
# The context handed to every rule check
# ---------------------------------------------------------------------------


class AnalysisContext:
    """Facts for every file in the run plus lazy cross-module artifacts."""

    def __init__(
        self,
        facts: Dict[str, FileFacts],
        doc_path: Optional[Path] = None,
    ) -> None:
        self.facts = facts
        self.doc_path = doc_path if doc_path is not None else default_doc_path()
        self._call_graph: Optional[CallGraph] = None
        self._doc_inventory: "Optional[DocInventory] | bool" = None
        self._may_raise: Dict[str, Set[str]] = {}

    # -- artifact accessors ----------------------------------------------

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = CallGraph.build(self.facts.values())
        return self._call_graph

    def may_raise(self, exception: str) -> Set[str]:
        if exception not in self._may_raise:
            self._may_raise[exception] = self.call_graph.may_raise(exception)
        return self._may_raise[exception]

    @property
    def doc_inventory(self) -> Optional[DocInventory]:
        """The observability catalog, or ``None`` when the doc is absent."""
        if self._doc_inventory is None:
            try:
                text = self.doc_path.read_text(encoding="utf-8")
            except OSError:
                self._doc_inventory = False
            else:
                self._doc_inventory = DocInventory.parse(text)
        return self._doc_inventory if self._doc_inventory is not False else None

    @property
    def is_full_tree(self) -> bool:
        """Whether the run covers the whole engine source tree.

        Project checks that reason about *absence* (an instrument
        documented but registered nowhere) only make sense when every
        registration site is part of the run.
        """
        suffixes = set()
        for path in self.facts:
            for sentinel in FULL_TREE_SENTINELS:
                if path.endswith(sentinel):
                    suffixes.add(sentinel)
        return len(suffixes) == len(FULL_TREE_SENTINELS)

    def facts_for(self, path: str) -> Optional[FileFacts]:
        return self.facts.get(posix(path))

    def file_allows(self, path: str, line: int, code: str) -> bool:
        facts = self.facts_for(path)
        return facts is not None and facts.allows(line, code)

    def suppress(self, findings: Iterable[Finding]) -> List[Finding]:
        """Drop findings carrying an ``allow[...]`` pragma on their line."""
        kept: List[Finding] = []
        for finding in findings:
            if self.file_allows(finding.path, finding.line, finding.rule):
                continue
            kept.append(finding)
        return kept
