"""Incremental result cache (``.repro_lint_cache.json``).

Per-file lint results are a pure function of (file content, rule set,
observability catalog), so they are safe to reuse across runs:

* **Fast path** -- if a file's ``(mtime_ns, size)`` pair is unchanged,
  its entry is reused without reading the file at all.
* **Content path** -- otherwise the file is hashed (sha256); an entry
  with the same digest is still valid (e.g. ``touch``-ed files).
* **Global version** -- the cache stores a version string combining the
  rules signature (codes + declared versions) and the content hash of
  ``docs/OBSERVABILITY.md``; a mismatch drops every entry, because rule
  edits and catalog edits can change any file's findings.

Entries carry both the per-file *findings* and the serialized
:class:`~tools.repro_lint.analysis.FileFacts`, so project-level passes
(which always rerun) see the whole tree even on a fully warm run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.repro_lint.analysis import FileFacts
from tools.repro_lint.core import Finding

__all__ = ["CacheEntry", "LintCache", "DEFAULT_CACHE_NAME", "file_digest"]

DEFAULT_CACHE_NAME = ".repro_lint_cache.json"
_CACHE_FORMAT = 1


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass
class CacheEntry:
    """Cached outcome of linting one file."""

    digest: str
    mtime_ns: int
    size: int
    findings: List[Finding] = field(default_factory=list)
    facts: Optional[FileFacts] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "mtime_ns": self.mtime_ns,
            "size": self.size,
            "findings": [finding.to_dict() for finding in self.findings],
            "facts": self.facts.to_dict() if self.facts is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CacheEntry":
        facts_payload = payload.get("facts")
        return cls(
            digest=str(payload["digest"]),
            mtime_ns=int(payload["mtime_ns"]),  # type: ignore[arg-type]
            size=int(payload["size"]),  # type: ignore[arg-type]
            findings=[
                Finding.from_dict(item)  # type: ignore[arg-type]
                for item in payload.get("findings", ())  # type: ignore[union-attr]
            ],
            facts=(
                FileFacts.from_dict(facts_payload)  # type: ignore[arg-type]
                if facts_payload
                else None
            ),
        )


class LintCache:
    """mtime+content-hash keyed cache of per-file lint results."""

    def __init__(self, path: Path, version: str) -> None:
        self.path = path
        self.version = version
        self.entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: Path, version: str) -> "LintCache":
        cache = cls(path, version)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _CACHE_FORMAT
            or payload.get("version") != version
        ):
            # Rule set or observability catalog changed: every cached
            # result is suspect, start cold.
            return cache
        for key, entry in payload.get("entries", {}).items():
            try:
                cache.entries[key] = CacheEntry.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue
        return cache

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "format": _CACHE_FORMAT,
            "version": self.version,
            "entries": {
                key: entry.to_dict() for key, entry in self.entries.items()
            },
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)
        self._dirty = False

    # -- lookup ----------------------------------------------------------

    def lookup(self, key: str, stat: os.stat_result) -> Optional[CacheEntry]:
        """Fast-path lookup by (mtime_ns, size); no file read."""
        entry = self.entries.get(key)
        if (
            entry is not None
            and entry.mtime_ns == stat.st_mtime_ns
            and entry.size == stat.st_size
        ):
            self.hits += 1
            return entry
        return None

    def lookup_by_digest(
        self, key: str, stat: os.stat_result, digest: str
    ) -> Optional[CacheEntry]:
        """Content-path lookup; refreshes the stat signature on hit."""
        entry = self.entries.get(key)
        if entry is not None and entry.digest == digest:
            entry.mtime_ns = stat.st_mtime_ns
            entry.size = stat.st_size
            self._dirty = True
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        key: str,
        stat: os.stat_result,
        digest: str,
        findings: List[Finding],
        facts: Optional[FileFacts],
    ) -> None:
        self.entries[key] = CacheEntry(
            digest=digest,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            findings=list(findings),
            facts=facts,
        )
        self._dirty = True

    def prune(self, live_keys: "set[str]") -> None:
        """Drop entries for files no longer part of the run."""
        stale = [key for key in self.entries if key not in live_keys]
        for key in stale:
            del self.entries[key]
        if stale:
            self._dirty = True

    def stats(self) -> Tuple[int, int]:
        return self.hits, self.misses
