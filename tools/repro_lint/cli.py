"""Command-line front end.

Exit status: 0 when every finding is baselined (or there are none),
1 otherwise -- so ``python -m tools.repro_lint src tools`` is directly
usable as a CI gate.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from tools.repro_lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from tools.repro_lint.cache import DEFAULT_CACHE_NAME
from tools.repro_lint.core import Finding
from tools.repro_lint.engine import resolve_jobs, run_lint
from tools.repro_lint.registry import RULES, catalogue_line
from tools.repro_lint.reporters import FORMATS, render

__all__ = ["main"]


def _build_parser() -> "argparse.ArgumentParser":
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "project-specific static checks for the QMDD core "
            f"({catalogue_line()})"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        metavar="N|auto",
        default="1",
        help="per-file workers; 'auto' uses the CPU count (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=DEFAULT_CACHE_NAME,
        help=f"cache location (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE_NAME,
        help=(
            "accepted-findings baseline; findings matching it do not fail "
            f"the run (default: ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="capture the current findings as the baseline and exit 0",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            marker = "+project" if rule.project_check is not None else ""
            print(f"{rule.code}  {rule.summary}  {marker}".rstrip())
        return 0

    started = time.perf_counter()
    run = run_lint(
        args.paths,
        jobs=resolve_jobs(args.jobs),
        use_cache=not args.no_cache,
        cache_path=Path(args.cache_file),
    )
    elapsed = time.perf_counter() - started

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        Baseline.from_findings(run.findings).write(baseline_path)
        print(
            f"repro-lint: baseline with {len(run.findings)} finding(s) "
            f"written to {baseline_path}"
        )
        return 0

    baseline = (
        Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
    )
    new_findings, accepted = baseline.filter(run.findings)

    report = render(args.format, new_findings, RULES)
    if args.output:
        output_path: Optional[Path] = Path(args.output)
        output_path.write_text(report + "\n", encoding="utf-8")
    elif report:
        print(report)

    _summary(run, new_findings, accepted, elapsed)
    return 1 if new_findings else 0


def _summary(
    run: "object",
    new_findings: List[Finding],
    accepted: List[Finding],
    elapsed: float,
) -> None:
    parts = [
        f"{run.files} file(s)",  # type: ignore[attr-defined]
        f"{run.cache_hits} cached",  # type: ignore[attr-defined]
        f"{elapsed * 1000.0:.0f} ms",
    ]
    if accepted:
        parts.append(f"{len(accepted)} baselined")
    status = (
        f"{len(new_findings)} finding(s)" if new_findings else "clean"
    )
    print(f"repro-lint: {status} ({', '.join(parts)})", file=sys.stderr)
