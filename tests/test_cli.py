"""Tests for the repro-qmdd command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_grover_algebraic(self, capsys):
        assert main(["simulate", "--algorithm", "grover", "--qubits", "4"]) == 0
        output = capsys.readouterr().out
        assert "grover_4q" in output
        assert "algebraic" in output
        assert "zero collapse: no" in output

    def test_grover_numeric(self, capsys):
        code = main(
            ["simulate", "--algorithm", "grover", "--qubits", "3",
             "--system", "numeric", "--eps", "1e-10"]
        )
        assert code == 0
        assert "numeric(eps=1e-10)" in capsys.readouterr().out

    def test_bwt(self, capsys):
        code = main(
            ["simulate", "--algorithm", "bwt", "--depth", "1", "--steps", "2"]
        )
        assert code == 0
        assert "bwt_d1_s2" in capsys.readouterr().out

    def test_gcd_system(self, capsys):
        code = main(
            ["simulate", "--algorithm", "grover", "--qubits", "3",
             "--system", "algebraic-gcd"]
        )
        assert code == 0


class TestTradeoff:
    def test_small_grover_sweep(self, capsys):
        # n = 6 gives ~200 gates -- enough for the eps = 1e-3 corruption
        # to accumulate so that every shape check passes.
        code = main(["tradeoff", "--algorithm", "grover", "--qubits", "6"])
        output = capsys.readouterr().out
        assert code == 0  # all shape checks pass
        assert "summary" in output
        assert "shape checks" in output
        assert "PASS" in output


class TestAblation:
    def test_ablation(self, capsys):
        assert main(["ablation", "--qubits", "4"]) == 0
        output = capsys.readouterr().out
        assert "algebraic-q (Alg.2)" in output
        assert "algebraic-gcd (Alg.3)" in output

    def test_ablation_skip_gcd(self, capsys):
        assert main(["ablation", "--qubits", "4", "--skip-gcd"]) == 0
        assert "Alg.3" not in capsys.readouterr().out


class TestParsing:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig9"])
