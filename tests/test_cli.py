"""Tests for the repro-qmdd command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_grover_algebraic(self, capsys):
        assert main(["simulate", "--algorithm", "grover", "--qubits", "4"]) == 0
        output = capsys.readouterr().out
        assert "grover_4q" in output
        assert "algebraic" in output
        assert "zero collapse: no" in output

    def test_grover_numeric(self, capsys):
        code = main(
            ["simulate", "--algorithm", "grover", "--qubits", "3",
             "--system", "numeric", "--eps", "1e-10"]
        )
        assert code == 0
        assert "numeric(eps=1e-10)" in capsys.readouterr().out

    def test_bwt(self, capsys):
        code = main(
            ["simulate", "--algorithm", "bwt", "--depth", "1", "--steps", "2"]
        )
        assert code == 0
        assert "bwt_d1_s2" in capsys.readouterr().out

    def test_gcd_system(self, capsys):
        code = main(
            ["simulate", "--algorithm", "grover", "--qubits", "3",
             "--system", "algebraic-gcd"]
        )
        assert code == 0


class TestBatch:
    def test_batch_sweep_with_report(self, tmp_path, capsys):
        import json

        report = tmp_path / "batch.json"
        code = main(
            ["batch", "--algorithm", "grover", "--qubits", "3",
             "--workers", "2", "--report", str(report)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "2 worker(s)" in output
        assert "fleet-merged telemetry" in output
        document = json.loads(report.read_text())
        assert document["failed"] == 0
        assert document["workers"] == 2
        assert document["metrics"]["exec.batch.jobs"] == document["jobs"]
        labels = [job["label"] for job in document["results"]]
        assert "algebraic" in labels and "eps=0" in labels
        for job in document["results"]:
            assert job["state_payload"]
            assert job["metrics"]

    def test_batch_custom_epsilons(self, capsys):
        code = main(
            ["batch", "--algorithm", "grover", "--qubits", "3",
             "--epsilons", "0,1e-8"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "eps=1e-08" in output

    def test_shared_flags_spelled_identically(self):
        # Satellite guarantee: the config flags parse on every
        # sweep-capable subcommand with the same spelling.
        from repro.cli import _config_parents

        _, config_parent = _config_parents()
        args = config_parent.parse_args([])
        assert args.system == "algebraic"
        assert args.eps == 0.0
        assert args.gc is None
        assert args.sanitize == "off"
        assert args.workers == 1


class TestTradeoff:
    def test_small_grover_sweep(self, capsys):
        # n = 6 gives ~200 gates -- enough for the eps = 1e-3 corruption
        # to accumulate so that every shape check passes.
        code = main(["tradeoff", "--algorithm", "grover", "--qubits", "6"])
        output = capsys.readouterr().out
        assert code == 0  # all shape checks pass
        assert "summary" in output
        assert "shape checks" in output
        assert "PASS" in output


class TestAblation:
    def test_ablation(self, capsys):
        assert main(["ablation", "--qubits", "4"]) == 0
        output = capsys.readouterr().out
        assert "algebraic-q (Alg.2)" in output
        assert "algebraic-gcd (Alg.3)" in output

    def test_ablation_skip_gcd(self, capsys):
        assert main(["ablation", "--qubits", "4", "--skip-gcd"]) == 0
        assert "Alg.3" not in capsys.readouterr().out


class TestProfile:
    def test_profile_grover(self, capsys):
        code = main(["profile", "--algorithm", "grover", "--qubits", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "top spans by total time" in output
        assert "sim.gate" in output
        assert "dd.apply.direct" in output
        assert "engine table hit rates:" in output
        assert "dd.ct.apply" in output

    def test_profile_detail_spans(self, capsys):
        code = main(
            ["profile", "--algorithm", "grover", "--qubits", "3", "--detail"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dd.ut.lookup" in output

    def test_profile_numeric(self, capsys):
        code = main(
            ["profile", "--algorithm", "grover", "--qubits", "3",
             "--system", "numeric", "--eps", "1e-10"]
        )
        assert code == 0
        assert "numeric(eps=1e-10)" in capsys.readouterr().out


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--algorithm", "grover", "--qubits", "3",
             "--out", str(out)]
        )
        assert code == 0
        assert "perfetto" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]}
        assert "process_name" in names
        assert "sim.gate" in names

    def test_trace_jsonl_sidecar(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "spans.jsonl"
        code = main(
            ["trace", "--algorithm", "grover", "--qubits", "3",
             "--out", str(out), "--jsonl", str(jsonl)]
        )
        assert code == 0
        lines = jsonl.read_text().splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"name", "start", "seconds", "depth", "pid", "tid", "attrs"} == set(
            record
        )


class TestParsing:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig9"])


class TestBatchTraceOut:
    def test_trace_out_writes_multiprocess_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "batch_trace.json"
        code = main(
            ["batch", "--algorithm", "grover", "--qubits", "3",
             "--workers", "2", "--trace-out", str(out)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "trace id" in output
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = {event["name"] for event in events}
        assert {"exec.batch", "exec.job", "sim.gate"} <= names
        worker_pids = {e["pid"] for e in events if e["name"] == "exec.job"}
        assert worker_pids and 0 not in worker_pids


class TestPerf:
    def _record(self, directory, repeats=2):
        return main(
            ["perf", "record", "--workloads", "ghz_16q",
             "--repeats", str(repeats), "--out-dir", str(directory)]
        )

    def test_record_writes_schema_json(self, tmp_path, capsys):
        import json

        assert self._record(tmp_path) == 0
        output = capsys.readouterr().out
        assert "recorded ghz_16q" in output
        payload = json.loads((tmp_path / "BENCH_ghz_16q.json").read_text())
        assert payload["schema"] == 1
        assert payload["workload"] == "ghz_16q"
        assert payload["timing"]["repeats"] == 2
        assert payload["counters"]["sim.gates"] == 16

    def test_record_unknown_workload_exits_2(self, tmp_path, capsys):
        code = main(
            ["perf", "record", "--workloads", "nope",
             "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_compare_back_to_back_passes(self, tmp_path, capsys):
        base, current = tmp_path / "base", tmp_path / "cur"
        assert self._record(base) == 0
        assert self._record(current) == 0
        code = main(
            ["perf", "compare", "--baseline-dir", str(base),
             "--current-dir", str(current)]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_flags_injected_2x_slowdown(self, tmp_path, capsys):
        import json

        base, current = tmp_path / "base", tmp_path / "cur"
        assert self._record(base) == 0
        record_path = current / "BENCH_ghz_16q.json"
        current.mkdir()
        payload = json.loads((base / "BENCH_ghz_16q.json").read_text())
        # Pin tight synthetic samples first: a genuinely noisy 2-repeat
        # recording can carry a MAD wide enough to absorb even a 2x
        # shift, which is exactly what the band is designed to do.
        payload["timing"] = {
            "median_seconds": 1.0,
            "mad_seconds": 0.01,
            "repeats": 2,
            "samples_seconds": [0.99, 1.01],
        }
        (base / "BENCH_ghz_16q.json").write_text(json.dumps(payload))
        timing = dict(payload["timing"])
        timing["samples_seconds"] = [s * 2 for s in timing["samples_seconds"]]
        timing["median_seconds"] *= 2
        timing["mad_seconds"] *= 2
        payload = dict(payload, timing=timing)
        record_path.write_text(json.dumps(payload))
        code = main(
            ["perf", "compare", "--baseline-dir", str(base),
             "--current-dir", str(current)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_informational_never_gates(self, tmp_path, capsys):
        import json

        base, current = tmp_path / "base", tmp_path / "cur"
        assert self._record(base) == 0
        current.mkdir()
        payload = json.loads((base / "BENCH_ghz_16q.json").read_text())
        payload["timing"]["median_seconds"] *= 10
        payload["timing"]["samples_seconds"] = [
            s * 10 for s in payload["timing"]["samples_seconds"]
        ]
        (current / "BENCH_ghz_16q.json").write_text(json.dumps(payload))
        code = main(
            ["perf", "compare", "--baseline-dir", str(base),
             "--current-dir", str(current), "--informational"]
        )
        assert code == 0
        assert "informational" in capsys.readouterr().out

    def test_compare_without_baselines_exits_2(self, tmp_path, capsys):
        code = main(
            ["perf", "compare", "--baseline-dir", str(tmp_path / "none"),
             "--current-dir", str(tmp_path)]
        )
        assert code == 2
        assert "no baselines" in capsys.readouterr().err

    def test_compare_malformed_record_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "base"
        bad.mkdir()
        (bad / "BENCH_x.json").write_text("{broken")
        code = main(
            ["perf", "compare", "--baseline-dir", str(bad),
             "--current-dir", str(tmp_path)]
        )
        assert code == 2
        assert "JSON" in capsys.readouterr().err

    def test_report_lists_records(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        capsys.readouterr()
        code = main(["perf", "report", "--dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "ghz_16q" in output and "median" in output

    def test_report_empty_dir(self, tmp_path, capsys):
        code = main(["perf", "report", "--dir", str(tmp_path)])
        assert code == 0
        assert "no BENCH_" in capsys.readouterr().out
