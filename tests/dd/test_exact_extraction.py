"""Tests for exact dense extraction (amplitudes and matrix entries)."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.rings.qomega import QOmega
from repro.sim.simulator import Simulator


class TestExactAmplitudes:
    def test_matches_amplitude_queries(self):
        manager = algebraic_manager(3)
        state = Simulator(manager).run(Circuit(3).h(0).t(0).cx(0, 1).s(2)).state
        amplitudes = manager.to_exact_amplitudes(state)
        assert len(amplitudes) == 8
        for index, amplitude in enumerate(amplitudes):
            assert amplitude == manager.amplitude(state, index)

    def test_exact_ring_elements(self):
        manager = algebraic_manager(1)
        state = Simulator(manager).run(Circuit(1).h(0)).state
        amplitudes = manager.to_exact_amplitudes(state)
        assert amplitudes == [QOmega.one_over_sqrt2(), QOmega.one_over_sqrt2()]

    def test_zero_edge(self):
        manager = algebraic_manager(2)
        amplitudes = manager.to_exact_amplitudes(manager.zero_edge())
        assert all(a.is_zero() for a in amplitudes)
        assert len(amplitudes) == 4

    def test_matches_float_conversion(self):
        manager = numeric_manager(3, eps=1e-12)
        state = Simulator(manager).run(Circuit(3).h(0).cx(0, 2).t(1)).state
        exact = manager.to_exact_amplitudes(state)
        dense = manager.to_statevector(state)
        for weight, value in zip(exact, dense):
            assert abs(manager.system.to_complex(weight) - value) < 1e-12


class TestExactMatrix:
    def test_identity(self):
        manager = algebraic_manager(2)
        grid = manager.to_exact_matrix(manager.identity())
        for row in range(4):
            for col in range(4):
                expected = QOmega.one() if row == col else QOmega.zero()
                assert grid[row][col] == expected

    def test_matches_float_matrix(self):
        manager = algebraic_manager(2)
        unitary = Simulator(manager).unitary(Circuit(2).h(0).cx(0, 1).t(1))
        grid = manager.to_exact_matrix(unitary)
        dense = manager.to_matrix(unitary)
        for row in range(4):
            for col in range(4):
                assert abs(grid[row][col].to_complex() - dense[row][col]) < 1e-12

    def test_exact_unitarity_from_extraction(self):
        """U U^dag = I verified entry-wise in the ring -- an end-to-end
        exactness check that floats could never provide."""
        manager = algebraic_manager(2)
        unitary = Simulator(manager).unitary(Circuit(2).h(0).t(0).cx(0, 1).s(1))
        grid = manager.to_exact_matrix(unitary)
        size = 4
        for row in range(size):
            for col in range(size):
                total = QOmega.zero()
                for inner in range(size):
                    total = total + grid[row][inner] * grid[col][inner].conj()
                expected = QOmega.one() if row == col else QOmega.zero()
                assert total == expected
