"""Tests for the DD sanitizer (:mod:`repro.dd.sanitizer`).

Two halves:

* **No false positives** -- on clean random Clifford+T circuits (up to
  6 qubits, all number systems) ``check-every-op`` reports zero
  findings, both via explicit seeds (20 circuits per system, the
  acceptance matrix) and via hypothesis-generated circuits.
* **No false negatives** -- deliberately corrupted DDs (denormalised
  weight tuple, shadow duplicate node, non-interned weight instance,
  stale compute-table entry) are each caught with the expected
  ``SanitizerError`` code.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.grover import grover_circuit
from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.dd.edge import Edge, Node, TERMINAL
from repro.dd.sanitizer import Sanitizer, SanitizerMode, sanitize_dd
from repro.errors import SanitizerError
from repro.sim.simulator import Simulator

from tests.dd.conftest import MANAGER_KINDS, make_managers

SINGLE_QUBIT = ["x", "y", "z", "h", "s", "sdg", "t", "tdg"]


def random_circuit(rng: random.Random, num_qubits: int, depth: int) -> Circuit:
    circuit = Circuit(num_qubits, name="sanitizer_random")
    for _ in range(depth):
        target = rng.randrange(num_qubits)
        if num_qubits == 1 or rng.random() < 0.6:
            getattr(circuit, rng.choice(SINGLE_QUBIT))(target)
        else:
            control = rng.choice([q for q in range(num_qubits) if q != target])
            if rng.random() < 0.3:
                circuit.append(gates.X, target, negative_controls=(control,))
            else:
                circuit.cx(control, target)
    return circuit


class TestCleanCircuits:
    """Acceptance matrix: zero findings on 20 clean circuits/system."""

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_twenty_clean_circuits_per_system(self, kind):
        for seed in range(20):
            rng = random.Random(1000 + seed)
            num_qubits = rng.randint(2, 6)
            circuit = random_circuit(rng, num_qubits, 15)
            manager = make_managers(num_qubits)[kind]
            simulator = Simulator(manager, sanitize="check-every-op")
            simulator.run(circuit)  # raises SanitizerError on any finding
            assert simulator.sanitizer.total.ok

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_hypothesis_circuits_stay_clean(self, kind, data):
        num_qubits = data.draw(st.integers(min_value=1, max_value=6))
        depth = data.draw(st.integers(min_value=0, max_value=12))
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        circuit = random_circuit(random.Random(seed), num_qubits, depth)
        manager = make_managers(num_qubits)[kind]
        simulator = Simulator(manager, sanitize="check-every-op")
        result = simulator.run(circuit)
        report = simulator.sanitizer.check_state(result.state)
        assert report.ok


class TestSanitizerModes:
    def test_mode_coercion(self):
        assert SanitizerMode.coerce(None) is SanitizerMode.OFF
        assert SanitizerMode.coerce(False) is SanitizerMode.OFF
        assert SanitizerMode.coerce(True) is SanitizerMode.CHECK_ON_ROOT
        assert SanitizerMode.coerce("root") is SanitizerMode.CHECK_ON_ROOT
        assert SanitizerMode.coerce("check-every-op") is SanitizerMode.CHECK_EVERY_OP
        assert SanitizerMode.coerce(SanitizerMode.OFF) is SanitizerMode.OFF
        with pytest.raises(ValueError):
            SanitizerMode.coerce("sometimes")

    def test_simulator_off_by_default(self):
        manager = make_managers(2)["algebraic-gcd"]
        assert Simulator(manager).sanitizer is None

    def test_check_on_root_checks_final_state(self):
        manager = make_managers(2)["numeric"]
        circuit = Circuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        simulator = Simulator(manager, sanitize="check-on-root")
        simulator.run(circuit)
        total = simulator.sanitizer.total
        assert total.ok and total.nodes_checked > 0 and total.amplitudes_checked > 0


class TestCorruptedDDs:
    """No false negatives: each corruption is caught with its code."""

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_denormalized_weights_caught(self, kind):
        manager = make_managers(1)[kind]
        system = manager.system
        two = system.add(system.one, system.one)
        # A hand-built node whose weight tuple (2, 1) is not a fixed
        # point of the normalisation rule (eta = 2 must factor out).
        rogue = Node(10**6, 1, (Edge(TERMINAL, two), Edge(TERMINAL, system.one)))
        with pytest.raises(SanitizerError) as excinfo:
            manager.sanitize(Edge(rogue, system.one))
        assert excinfo.value.code == "normalization"
        assert excinfo.value.node_uid == 10**6

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_duplicate_node_caught(self, kind):
        manager = make_managers(2)[kind]
        circuit = Circuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        state = Simulator(manager).run(circuit).state
        # A structural clone of the (interned) root node: same level,
        # same children, fresh identity -- a shadow escaping the table.
        duplicate = Node(state.node.uid + 10**6, state.node.level, state.node.edges)
        with pytest.raises(SanitizerError) as excinfo:
            manager.sanitize(Edge(duplicate, state.weight))
        assert excinfo.value.code == "shadow-node"

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_shadow_weight_instance_caught(self, kind):
        manager = make_managers(2)[kind]
        circuit = Circuit(2, name="plus")
        circuit.h(0)
        circuit.h(1)
        state = Simulator(manager).run(circuit).state
        weight = state.weight
        if hasattr(weight, "e"):  # Q[omega] ring element
            clone = type(weight)(weight.zeta, weight.k, weight.e)
        elif hasattr(weight, "zeta"):  # D[omega] ring element
            clone = type(weight)(weight.zeta, weight.k)
        else:  # numeric ComplexEntry
            clone = type(weight)(weight.value, weight.index)
        with pytest.raises(SanitizerError) as excinfo:
            manager.sanitize(Edge(state.node, clone))
        assert excinfo.value.code == "weight-form"

    @pytest.mark.parametrize("kind", MANAGER_KINDS)
    def test_stale_mat_vec_entry_caught(self, kind):
        manager = make_managers(2)[kind]
        circuit = Circuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        # The matrix path populates the mat-vec compute table.
        state = Simulator(manager, use_apply_kernel=False).run(circuit).state
        cache = manager._mat_vec_cache
        assert len(cache) > 0
        key, good = next(iter(cache.items()))
        wrong = manager.one_edge() if manager.is_zero_edge(good) else manager.zero_edge()
        cache.put(key, wrong)
        with pytest.raises(SanitizerError) as excinfo:
            manager.sanitize(state)
        assert excinfo.value.code == "stale-memo"

    @pytest.mark.parametrize("kind", ["numeric", "numeric-tolerant"])
    def test_stale_add_entry_caught(self, kind):
        manager = make_managers(3)[kind]
        circuit = grover_circuit(3, 5)
        state = Simulator(manager, use_apply_kernel=False).run(circuit).state
        cache = manager._add_cache
        assert len(cache) > 0
        key, good = next(iter(cache.items()))
        wrong = manager.one_edge() if manager.is_zero_edge(good) else manager.zero_edge()
        cache.put(key, wrong)
        with pytest.raises(SanitizerError) as excinfo:
            manager.sanitize(state)
        assert excinfo.value.code == "stale-memo"

    def test_non_raising_report_collects_all(self):
        manager = make_managers(1)["numeric"]
        system = manager.system
        two = system.add(system.one, system.one)
        rogue = Node(10**6, 1, (Edge(TERMINAL, two), Edge(TERMINAL, system.one)))
        report = manager.sanitize(Edge(rogue, system.one), raise_on_violation=False)
        assert not report.ok
        codes = {violation.code for violation in report.violations}
        # Denormalised weights also imply the node cannot be the
        # unique-table resident for its key.
        assert "normalization" in codes and "shadow-node" in codes

    def test_error_carries_path(self):
        manager = make_managers(2)["algebraic-gcd"]
        system = manager.system
        two = system.add(system.one, system.one)
        bad_child = Node(10**6, 1, (Edge(TERMINAL, two), Edge(TERMINAL, system.one)))
        good = manager.basis_state(0)
        rogue_root = Node(
            10**6 + 1, 2, (Edge(bad_child, system.one), manager.zero_edge())
        )
        report = manager.sanitize(Edge(rogue_root, system.one), raise_on_violation=False)
        paths = {v.path for v in report.violations if v.code == "normalization"}
        assert (0,) in paths  # the bad child sits under child index 0
        assert good is not None


class TestSanitizeDDHelper:
    def test_matrix_dd_structural_check(self):
        manager = make_managers(2)["algebraic-q"]
        identity = manager.identity()
        report = sanitize_dd(manager, identity, raise_on_violation=False)
        assert report.ok and report.nodes_checked == 2

    def test_terminal_edge_is_clean(self):
        manager = make_managers(2)["numeric"]
        report = sanitize_dd(manager, manager.one_edge(), raise_on_violation=False)
        assert report.ok
