"""Tests for DD metrics collection and DOT export."""

import math

import pytest

from repro.dd.gatebuild import build_gate_dd
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.dd.metrics import collect_metrics, count_trivial_weights
from repro.dd.dot import to_dot
from repro.rings.domega import DOmega

H_EXACT = (
    DOmega.one_over_sqrt2(),
    DOmega.one_over_sqrt2(),
    DOmega.one_over_sqrt2(),
    -DOmega.one_over_sqrt2(),
)


def exact(manager, entries):
    return tuple(manager.system.from_domega(e) for e in entries)


class TestMetrics:
    def test_basis_state_metrics(self):
        manager = algebraic_manager(4)
        metrics = collect_metrics(manager, manager.basis_state(5))
        assert metrics.node_count == 4
        assert metrics.edge_count == 5  # root edge + one per level
        assert metrics.trivial_weights == 5
        assert metrics.max_bit_width == 1

    def test_trivial_fraction_qomega_at_least_half(self):
        """Paper Section V-B: the Q[omega] normalisation keeps >= half of
        the edge weights trivial."""
        manager = algebraic_manager(4)
        state = manager.zero_state()
        h = exact(manager, H_EXACT)
        for qubit in range(4):
            state = manager.mat_vec(build_gate_dd(manager, h, qubit), state)
        cx = (manager.system.zero, manager.system.one, manager.system.one, manager.system.zero)
        for qubit in range(3):
            state = manager.mat_vec(
                build_gate_dd(manager, cx, qubit + 1, controls=[qubit]), state
            )
        metrics = collect_metrics(manager, state)
        assert metrics.trivial_weight_fraction >= 0.5

    def test_bit_width_zero_for_numeric(self):
        manager = numeric_manager(3)
        state = manager.basis_state(1)
        assert collect_metrics(manager, state).max_bit_width == 0

    def test_bit_width_grows_for_gcd(self):
        manager = algebraic_gcd_manager(2)
        weights = [manager.system.from_domega(DOmega.from_int(n)) for n in (3, 5, 7, 1)]
        state = manager.vector_from_weights(weights)
        assert collect_metrics(manager, state).max_bit_width >= 3

    def test_count_trivial_weights(self):
        manager = algebraic_manager(2)
        trivial, total = count_trivial_weights(manager, manager.basis_state(0))
        assert trivial == total == 3

    def test_zero_edge_metrics(self):
        manager = algebraic_manager(2)
        metrics = collect_metrics(manager, manager.zero_edge())
        assert metrics.node_count == 0
        assert metrics.trivial_weight_fraction == 0.0 or metrics.edge_count == 1


class TestDot:
    def test_dot_contains_structure(self):
        manager = algebraic_manager(2)
        gate = build_gate_dd(manager, exact(manager, H_EXACT), 0)
        dot = to_dot(manager, gate, name="fig1c")
        assert dot.startswith("digraph fig1c {")
        assert "terminal" in dot
        assert "q0" in dot and "q1" in dot
        assert "0.7071" in dot  # the extracted 1/sqrt2 root factor

    def test_dot_zero_stubs(self):
        manager = numeric_manager(1)
        t = build_gate_dd(
            manager,
            (
                manager.system.one,
                manager.system.zero,
                manager.system.zero,
                manager.system.from_complex(1j),
            ),
            0,
        )
        dot = to_dot(manager, t)
        assert "style=dashed" in dot  # zero edges drawn as stubs
        assert "1i" in dot

    def test_dot_terminal_edge(self):
        manager = algebraic_manager(1)
        dot = to_dot(manager, manager.one_edge())
        assert "root -> terminal" in dot
