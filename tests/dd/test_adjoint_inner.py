"""Tests for DD adjoints, inner products and fidelity."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, uniform_superposition
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import LevelMismatchError
from repro.rings.qomega import QOmega
from repro.sim.simulator import Simulator


class TestAdjoint:
    def test_adjoint_of_identity(self, manager_factory):
        manager = manager_factory(3)
        identity = manager.identity()
        assert manager.edges_equal(manager.adjoint(identity), identity)

    def test_adjoint_matches_dense(self, manager_factory):
        manager = manager_factory(3)
        circuit = Circuit(3).h(0).t(1).cx(0, 2).s(2)
        unitary = Simulator(manager).unitary(circuit)
        np.testing.assert_allclose(
            manager.to_matrix(manager.adjoint(unitary)),
            manager.to_matrix(unitary).conj().T,
            atol=1e-9,
        )

    def test_adjoint_is_involution_algebraic(self):
        manager = algebraic_manager(2)
        unitary = Simulator(manager).unitary(Circuit(2).h(0).t(0).cx(0, 1))
        assert manager.edges_equal(manager.adjoint(manager.adjoint(unitary)), unitary)

    def test_u_udagger_is_identity_algebraic(self):
        """The exact representation recognises U U^dag = I structurally."""
        manager = algebraic_manager(2)
        unitary = Simulator(manager).unitary(Circuit(2).h(0).t(1).cx(1, 0))
        product = manager.mat_mat(unitary, manager.adjoint(unitary))
        assert manager.edges_equal(product, manager.identity())

    def test_adjoint_of_zero(self, manager_factory):
        manager = manager_factory(2)
        assert manager.is_zero_edge(manager.adjoint(manager.zero_edge()))


class TestInnerProduct:
    def test_orthonormal_basis(self, manager_factory):
        manager = manager_factory(3)
        a = manager.basis_state(2)
        b = manager.basis_state(5)
        assert manager.system.is_one(manager.inner_product(a, a))
        assert manager.system.is_zero(manager.inner_product(a, b))

    def test_exact_overlap_value(self):
        """<0|H T H|0> = (1 + omega)/2, exactly."""
        manager = algebraic_manager(1)
        state = Simulator(manager).run(Circuit(1).h(0).t(0).h(0)).state
        overlap = manager.inner_product(manager.basis_state(0), state)
        expected = (QOmega.one() + QOmega.omega_power(1)) * QOmega.one_over_sqrt2(2)
        assert overlap == expected

    def test_matches_dense_vdot(self, manager_factory):
        manager = manager_factory(3)
        simulator = Simulator(manager)
        left = simulator.run(ghz_circuit(3)).state
        right = simulator.run(uniform_superposition(3)).state
        dense = np.vdot(manager.to_statevector(left), manager.to_statevector(right))
        assert abs(manager.system.to_complex(manager.inner_product(left, right)) - dense) < 1e-9

    def test_conjugate_symmetry(self):
        manager = algebraic_manager(2)
        simulator = Simulator(manager)
        left = simulator.run(Circuit(2).h(0).t(0)).state
        right = simulator.run(Circuit(2).h(1).s(1)).state
        forward = manager.inner_product(left, right)
        backward = manager.inner_product(right, left)
        assert forward == backward.conj()

    def test_zero_edge(self, manager_factory):
        manager = manager_factory(2)
        state = manager.basis_state(0)
        assert manager.system.is_zero(manager.inner_product(state, manager.zero_edge()))

    def test_level_mismatch(self):
        manager = algebraic_manager(2)
        top = manager.basis_state(0)
        sub = top.node.edges[0]
        with pytest.raises(LevelMismatchError):
            manager.inner_product(top, sub)


class TestFidelity:
    def test_self_fidelity_one(self, manager_factory):
        manager = manager_factory(2)
        state = Simulator(manager).run(ghz_circuit(2)).state
        assert manager.fidelity(state, state) == pytest.approx(1.0)

    def test_ghz_vs_uniform(self):
        manager = algebraic_manager(2)
        simulator = Simulator(manager)
        ghz = simulator.run(ghz_circuit(2)).state
        uniform = simulator.run(uniform_superposition(2)).state
        # |<GHZ|++>|^2 = |(1/sqrt2 * 1/2) * 2|^2 = 1/2
        assert manager.fidelity(ghz, uniform) == pytest.approx(0.5)
