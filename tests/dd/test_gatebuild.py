"""Tests for direct gate-DD construction against dense numpy references."""

import math

import numpy as np
import pytest

from repro.dd.gatebuild import build_diagonal_dd, build_gate_dd
from repro.errors import CircuitError
from repro.rings.domega import DOmega

SQRT2 = math.sqrt(2)

H_DENSE = np.array([[1, 1], [1, -1]]) / SQRT2
X_DENSE = np.array([[0, 1], [1, 0]], dtype=complex)
T_DENSE = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]])
Z_DENSE = np.array([[1, 0], [0, -1]], dtype=complex)

H_EXACT = (
    DOmega.one_over_sqrt2(),
    DOmega.one_over_sqrt2(),
    DOmega.one_over_sqrt2(),
    -DOmega.one_over_sqrt2(),
)
X_EXACT = (DOmega.zero(), DOmega.one(), DOmega.one(), DOmega.zero())
T_EXACT = (DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.omega_power(1))
Z_EXACT = (DOmega.one(), DOmega.zero(), DOmega.zero(), DOmega.from_int(-1))


def embed(base, target, n, controls=(), neg_controls=()):
    """Dense reference for a (multi-)controlled gate on n qubits."""
    size = 1 << n
    matrix = np.eye(size, dtype=complex)
    for row in range(size):
        for col in range(size):
            row_bits = [(row >> (n - 1 - q)) & 1 for q in range(n)]
            col_bits = [(col >> (n - 1 - q)) & 1 for q in range(n)]
            if any(row_bits[q] != col_bits[q] for q in range(n) if q != target):
                matrix[row][col] = 0.0
                continue
            satisfied = all(col_bits[c] == 1 for c in controls) and all(
                col_bits[c] == 0 for c in neg_controls
            )
            if satisfied:
                matrix[row][col] = base[row_bits[target]][col_bits[target]]
            else:
                matrix[row][col] = 1.0 if row_bits[target] == col_bits[target] else 0.0
    return matrix


def exact_entries(manager, entries):
    return tuple(manager.system.from_domega(entry) for entry in entries)


class TestSingleQubitGates:
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_hadamard_placement(self, manager_factory, target):
        manager = manager_factory(3)
        gate = build_gate_dd(manager, exact_entries(manager, H_EXACT), target)
        np.testing.assert_allclose(
            manager.to_matrix(gate), embed(H_DENSE, target, 3), atol=1e-9
        )

    def test_figure_1c_structure(self, manager_factory):
        """Paper Fig. 1: H (x) I_2 is two nodes with root weight 1/sqrt2."""
        manager = manager_factory(2)
        gate = build_gate_dd(manager, exact_entries(manager, H_EXACT), 0)
        assert manager.node_count(gate) == 2
        assert abs(manager.system.to_complex(gate.weight) - 1 / SQRT2) < 1e-12

    @pytest.mark.parametrize(
        "exact,dense", [(X_EXACT, X_DENSE), (T_EXACT, T_DENSE), (Z_EXACT, Z_DENSE)]
    )
    def test_common_gates(self, manager_factory, exact, dense):
        manager = manager_factory(2)
        gate = build_gate_dd(manager, exact_entries(manager, exact), 1)
        np.testing.assert_allclose(manager.to_matrix(gate), embed(dense, 1, 2), atol=1e-9)

    def test_gate_dd_is_linear_size(self, manager_factory):
        manager = manager_factory(7)
        gate = build_gate_dd(manager, exact_entries(manager, H_EXACT), 3)
        assert manager.node_count(gate) == 7


class TestControlledGates:
    def test_cnot_control_above_target(self, manager_factory):
        manager = manager_factory(2)
        gate = build_gate_dd(manager, exact_entries(manager, X_EXACT), 1, controls=[0])
        # Paper Example 2's CNOT matrix.
        expected = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        np.testing.assert_allclose(manager.to_matrix(gate), expected, atol=1e-12)

    def test_cnot_control_below_target(self, manager_factory):
        manager = manager_factory(2)
        gate = build_gate_dd(manager, exact_entries(manager, X_EXACT), 0, controls=[1])
        np.testing.assert_allclose(
            manager.to_matrix(gate), embed(X_DENSE, 0, 2, controls=[1]), atol=1e-12
        )

    @pytest.mark.parametrize("target,controls", [(0, [1, 2]), (1, [0, 2]), (2, [0, 1])])
    def test_toffoli_all_layouts(self, manager_factory, target, controls):
        manager = manager_factory(3)
        gate = build_gate_dd(manager, exact_entries(manager, X_EXACT), target, controls=controls)
        np.testing.assert_allclose(
            manager.to_matrix(gate), embed(X_DENSE, target, 3, controls=controls), atol=1e-12
        )

    def test_negative_control(self, manager_factory):
        manager = manager_factory(2)
        gate = build_gate_dd(
            manager, exact_entries(manager, X_EXACT), 1, negative_controls=[0]
        )
        np.testing.assert_allclose(
            manager.to_matrix(gate), embed(X_DENSE, 1, 2, neg_controls=[0]), atol=1e-12
        )

    def test_mixed_controls(self, manager_factory):
        manager = manager_factory(4)
        gate = build_gate_dd(
            manager,
            exact_entries(manager, Z_EXACT),
            2,
            controls=[0, 3],
            negative_controls=[1],
        )
        np.testing.assert_allclose(
            manager.to_matrix(gate),
            embed(Z_DENSE, 2, 4, controls=[0, 3], neg_controls=[1]),
            atol=1e-12,
        )

    def test_multi_controlled_z_node_count(self, manager_factory):
        """The Grover diffusion MCZ stays linear in the qubit count."""
        manager = manager_factory(8)
        gate = build_gate_dd(
            manager, exact_entries(manager, Z_EXACT), 7, controls=list(range(7))
        )
        assert manager.node_count(gate) <= 3 * 8

    def test_controlled_gate_is_unitary(self, manager_factory):
        manager = manager_factory(3)
        gate = build_gate_dd(
            manager, exact_entries(manager, H_EXACT), 1, controls=[2], negative_controls=[0]
        )
        dense = manager.to_matrix(gate)
        np.testing.assert_allclose(dense @ dense.conj().T, np.eye(8), atol=1e-9)


class TestValidation:
    def test_target_cannot_be_control(self, manager_factory):
        manager = manager_factory(2)
        with pytest.raises(CircuitError):
            build_gate_dd(manager, exact_entries(manager, X_EXACT), 0, controls=[0])

    def test_conflicting_controls(self, manager_factory):
        manager = manager_factory(3)
        with pytest.raises(CircuitError):
            build_gate_dd(
                manager, exact_entries(manager, X_EXACT), 0, controls=[1], negative_controls=[1]
            )

    def test_out_of_range_qubit(self, manager_factory):
        manager = manager_factory(2)
        with pytest.raises(CircuitError):
            build_gate_dd(manager, exact_entries(manager, X_EXACT), 5)

    def test_wrong_entry_count(self, manager_factory):
        manager = manager_factory(2)
        with pytest.raises(CircuitError):
            build_gate_dd(manager, exact_entries(manager, X_EXACT)[:3], 0)


class TestDiagonal:
    def test_phase_diagonal(self, manager_factory):
        manager = manager_factory(2)
        omega = manager.system.from_domega(DOmega.omega_power(1))
        diagonal = build_diagonal_dd(manager, {0: omega, 1: omega})
        dense = manager.to_matrix(diagonal)
        phases = np.exp(1j * math.pi / 4 * np.array([0, 1, 1, 2]))
        np.testing.assert_allclose(dense, np.diag(phases), atol=1e-9)

    def test_empty_diagonal_is_identity(self, manager_factory):
        manager = manager_factory(3)
        diagonal = build_diagonal_dd(manager, {})
        assert manager.edges_equal(diagonal, manager.identity())


class TestComposition:
    def test_hh_is_identity(self, manager_factory):
        """H*H = I -- with eps = 0, (1/sqrt2)^2 * 2 != 1 in doubles, so
        only tolerant or algebraic representations recognise identity
        structurally (the paper's Example 4)."""
        manager = manager_factory(3)
        h = build_gate_dd(manager, exact_entries(manager, H_EXACT), 1)
        product = manager.mat_mat(h, h)
        if manager_factory.kind in ("numeric", "numeric-maxnorm"):
            np.testing.assert_allclose(manager.to_matrix(product), np.eye(8), atol=1e-12)
        else:
            assert manager.edges_equal(product, manager.identity())

    def test_t8_is_identity(self, manager_factory):
        """T^8 = I -- recognised *structurally* only by the algebraic
        systems; floating point may leave a 1+2^-52 residue (this is the
        paper's core observation)."""
        manager = manager_factory(2)
        t = build_gate_dd(manager, exact_entries(manager, T_EXACT), 0)
        accumulator = manager.identity()
        for _ in range(8):
            accumulator = manager.mat_mat(t, accumulator)
        if manager_factory.kind.startswith("algebraic"):
            assert manager.edges_equal(accumulator, manager.identity())
        else:
            np.testing.assert_allclose(manager.to_matrix(accumulator), np.eye(4), atol=1e-12)

    def test_bell_state_preparation(self, manager_factory):
        manager = manager_factory(2)
        h = build_gate_dd(manager, exact_entries(manager, H_EXACT), 0)
        cx = build_gate_dd(manager, exact_entries(manager, X_EXACT), 1, controls=[0])
        state = manager.mat_vec(cx, manager.mat_vec(h, manager.zero_state()))
        dense = manager.to_statevector(state)
        expected = np.array([1, 0, 0, 1]) / SQRT2
        np.testing.assert_allclose(dense, expected, atol=1e-12)
        # Bell state: root plus one distinct node per branch ([1,0], [0,1]).
        assert manager.node_count(state) == 3
