"""Core QMDD manager tests: construction, arithmetic, canonicity.

Every operation is cross-checked against dense numpy linear algebra on
exactly representable (D[omega]) inputs so that all three number
systems -- numeric, algebraic Q[omega] and algebraic GCD -- must agree.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import LevelMismatchError
from repro.rings.domega import DOmega

from .conftest import dense_of, import_weights, small_domegas


def random_domega_vector(draw_count, rng):
    values = []
    for _ in range(draw_count):
        coeffs = [rng.randint(-3, 3) for _ in range(4)]
        values.append(DOmega.from_coefficients(*coeffs, k=rng.randint(0, 3)))
    return values


class TestBasisStates:
    def test_zero_state_amplitudes(self, manager_factory):
        manager = manager_factory(3)
        state = manager.zero_state()
        dense = manager.to_statevector(state)
        expected = np.zeros(8, dtype=complex)
        expected[0] = 1.0
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    @pytest.mark.parametrize("index", [0, 1, 5, 7])
    def test_basis_state_amplitudes(self, manager_factory, index):
        manager = manager_factory(3)
        dense = manager.to_statevector(manager.basis_state(index))
        expected = np.zeros(8, dtype=complex)
        expected[index] = 1.0
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    def test_basis_state_node_count_linear(self, manager_factory):
        manager = manager_factory(6)
        assert manager.node_count(manager.basis_state(37)) == 6

    def test_basis_state_out_of_range(self, manager_factory):
        manager = manager_factory(2)
        with pytest.raises(ValueError):
            manager.basis_state(4)

    def test_amplitude_query_matches_dense(self, manager_factory):
        manager = manager_factory(3)
        values = [DOmega.from_coefficients(i % 3 - 1, 0, i % 2, 1, k=1) for i in range(8)]
        state = manager.vector_from_weights(import_weights(manager, values))
        dense = manager.to_statevector(state)
        for index in range(8):
            amp = manager.system.to_complex(manager.amplitude(state, index))
            assert abs(amp - dense[index]) < 1e-9


class TestVectorRoundtrip:
    @given(st.lists(small_domegas, min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_algebraic(self, values):
        manager = algebraic_manager(3)
        state = manager.vector_from_weights(import_weights(manager, values))
        np.testing.assert_allclose(
            manager.to_statevector(state), dense_of(values), atol=1e-7
        )

    @given(st.lists(small_domegas, min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_numeric(self, values):
        manager = numeric_manager(2)
        state = manager.vector_from_weights(import_weights(manager, values))
        np.testing.assert_allclose(
            manager.to_statevector(state), dense_of(values), atol=1e-9
        )

    def test_all_zero_vector_collapses(self, manager_factory):
        manager = manager_factory(3)
        zero = manager.vector_from_weights([manager.system.zero] * 8)
        assert manager.is_zero_edge(zero)
        assert manager.node_count(zero) == 0


class TestCanonicity:
    """Structurally equal DDs must be pointer-equal (paper Section II-B)."""

    def test_same_vector_same_node(self, manager_factory):
        manager = manager_factory(3)
        values = [DOmega.from_coefficients(1, 0, 0, 1), DOmega.zero()] * 4
        first = manager.vector_from_weights(import_weights(manager, values))
        second = manager.vector_from_weights(import_weights(manager, values))
        assert first.node is second.node
        assert manager.edges_equal(first, second)

    def test_scaled_vector_shares_node_algebraic(self):
        """Sub-structures differing by a scalar share nodes via weights."""
        manager = algebraic_manager(3)
        values = [DOmega.from_coefficients(0, 0, 0, n) for n in range(1, 9)]
        scaled = [value * DOmega.from_coefficients(0, 0, 1, 0) for value in values]  # * omega
        first = manager.vector_from_weights(import_weights(manager, values))
        second = manager.vector_from_weights(import_weights(manager, scaled))
        assert first.node is second.node  # only the root weight differs
        assert not manager.edges_equal(first, second)

    def test_construction_order_independent(self, manager_factory):
        manager = manager_factory(2)
        half = DOmega.one_over_sqrt2(2)
        values = import_weights(manager, [half, half, half, half])
        direct = manager.vector_from_weights(values)
        # Same state via addition of two basis-pair states.
        upper = manager.vector_from_weights(
            [values[0], values[1], manager.system.zero, manager.system.zero]
        )
        lower = manager.vector_from_weights(
            [manager.system.zero, manager.system.zero, values[2], values[3]]
        )
        combined = manager.add(upper, lower)
        assert manager.edges_equal(direct, combined)


class TestAddition:
    @given(
        st.lists(small_domegas, min_size=4, max_size=4),
        st.lists(small_domegas, min_size=4, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_add_matches_dense_algebraic(self, left_values, right_values):
        manager = algebraic_manager(2)
        left = manager.vector_from_weights(import_weights(manager, left_values))
        right = manager.vector_from_weights(import_weights(manager, right_values))
        np.testing.assert_allclose(
            manager.to_statevector(manager.add(left, right)),
            dense_of(left_values) + dense_of(right_values),
            atol=1e-7,
        )

    def test_add_with_zero(self, manager_factory):
        manager = manager_factory(2)
        state = manager.basis_state(2)
        assert manager.add(state, manager.zero_edge()) is state
        assert manager.add(manager.zero_edge(), state) is state

    def test_add_commutes(self, manager_factory):
        manager = manager_factory(2)
        a = manager.basis_state(1)
        b = manager.basis_state(2)
        assert manager.edges_equal(manager.add(a, b), manager.add(b, a))

    def test_add_cancellation(self, manager_factory):
        manager = manager_factory(2)
        state = manager.basis_state(3)
        negated = manager.scale(state, manager.system.neg(manager.system.one))
        assert manager.is_zero_edge(manager.add(state, negated))

    def test_level_mismatch_raises(self):
        manager = algebraic_manager(3)
        top = manager.basis_state(0)
        sub = top.node.edges[0]  # a level-2 edge
        with pytest.raises(LevelMismatchError):
            manager.add(top, sub)


class TestMatrixOps:
    def _random_case(self, rng, n):
        manager = algebraic_manager(n)
        size = 1 << n
        matrix_values = [
            random_domega_vector(size, rng) for _ in range(size)
        ]
        vector_values = random_domega_vector(size, rng)
        matrix = manager.matrix_from_weights(
            [import_weights(manager, row) for row in matrix_values]
        )
        vector = manager.vector_from_weights(import_weights(manager, vector_values))
        dense_matrix = np.array(
            [[value.to_complex() for value in row] for row in matrix_values]
        )
        dense_vector = dense_of(vector_values)
        return manager, matrix, vector, dense_matrix, dense_vector

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mat_vec_matches_dense(self, seed):
        import random

        rng = random.Random(seed)
        manager, matrix, vector, dense_matrix, dense_vector = self._random_case(rng, 3)
        result = manager.mat_vec(matrix, vector)
        np.testing.assert_allclose(
            manager.to_statevector(result), dense_matrix @ dense_vector, atol=1e-6
        )

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_mat_mat_matches_dense(self, seed):
        import random

        rng = random.Random(seed)
        manager, matrix, _, dense_matrix, _ = self._random_case(rng, 2)
        size = 4
        other_values = [random_domega_vector(size, rng) for _ in range(size)]
        other = manager.matrix_from_weights(
            [import_weights(manager, row) for row in other_values]
        )
        dense_other = np.array([[v.to_complex() for v in row] for row in other_values])
        product = manager.mat_mat(matrix, other)
        np.testing.assert_allclose(
            manager.to_matrix(product), dense_matrix @ dense_other, atol=1e-6
        )

    def test_identity_is_neutral(self, manager_factory):
        manager = manager_factory(3)
        identity = manager.identity()
        state = manager.basis_state(5)
        assert manager.edges_equal(manager.mat_vec(identity, state), state)
        assert manager.edges_equal(manager.mat_mat(identity, identity), identity)

    def test_identity_node_count(self, manager_factory):
        manager = manager_factory(5)
        assert manager.node_count(manager.identity()) == 5

    def test_mat_vec_zero(self, manager_factory):
        manager = manager_factory(2)
        assert manager.is_zero_edge(manager.mat_vec(manager.zero_edge(), manager.basis_state(0)))
        assert manager.is_zero_edge(manager.mat_vec(manager.identity(), manager.zero_edge()))


class TestKron:
    def test_kron_of_identities(self):
        manager = algebraic_manager(4)
        two = algebraic_manager(2)
        # Build identity over two levels inside the 4-qubit manager.
        sub_identity = manager.one_edge()
        for level in (1, 2):
            sub_identity = manager.make_node(
                level, [sub_identity, manager.zero_edge(), manager.zero_edge(), sub_identity]
            )
        full = manager.kron(sub_identity, sub_identity, bottom_levels=2)
        assert manager.edges_equal(full, manager.identity())

    def test_kron_matches_dense(self):
        import random

        rng = random.Random(7)
        manager = algebraic_manager(2)
        rows_a = [random_domega_vector(2, rng) for _ in range(2)]
        rows_b = [random_domega_vector(2, rng) for _ in range(2)]
        # Build 1-level matrices inside the 2-qubit manager.
        weights_a = [[manager.system.from_domega(v) for v in row] for row in rows_a]
        weights_b = [[manager.system.from_domega(v) for v in row] for row in rows_b]
        a_edge = manager.make_node(
            1,
            [
                manager.terminal_edge(weights_a[0][0]),
                manager.terminal_edge(weights_a[0][1]),
                manager.terminal_edge(weights_a[1][0]),
                manager.terminal_edge(weights_a[1][1]),
            ],
        )
        b_edge = manager.make_node(
            1,
            [
                manager.terminal_edge(weights_b[0][0]),
                manager.terminal_edge(weights_b[0][1]),
                manager.terminal_edge(weights_b[1][0]),
                manager.terminal_edge(weights_b[1][1]),
            ],
        )
        product = manager.kron(a_edge, b_edge, bottom_levels=1)
        dense_a = np.array([[v.to_complex() for v in row] for row in rows_a])
        dense_b = np.array([[v.to_complex() for v in row] for row in rows_b])
        np.testing.assert_allclose(
            manager.to_matrix(product), np.kron(dense_a, dense_b), atol=1e-7
        )


class TestNormSquared:
    def test_norm_of_basis_state(self, manager_factory):
        manager = manager_factory(3)
        norm = manager.norm_squared(manager.basis_state(4))
        assert abs(manager.system.to_complex(norm) - 1.0) < 1e-9

    def test_norm_of_uniform_superposition(self):
        manager = algebraic_manager(2)
        half = manager.system.from_domega(DOmega.one_over_sqrt2(2))
        state = manager.vector_from_weights([half] * 4)
        assert manager.system.is_one(manager.norm_squared(state))

    def test_norm_of_zero(self, manager_factory):
        manager = manager_factory(2)
        assert manager.system.is_zero(manager.norm_squared(manager.zero_edge()))


class TestHousekeeping:
    def test_statistics_and_cache_clear(self, manager_factory):
        manager = manager_factory(2)
        manager.add(manager.basis_state(0), manager.basis_state(3))
        stats = manager.statistics()
        assert stats["vector_nodes"] > 0
        manager.clear_caches()
        assert manager.statistics()["add_cache"] == 0

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            numeric_manager(0)

    def test_vector_from_weights_size_check(self, manager_factory):
        manager = manager_factory(2)
        with pytest.raises(ValueError):
            manager.vector_from_weights([manager.system.one] * 3)
