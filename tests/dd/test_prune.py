"""Tests for unique-table garbage collection (prune)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager
from repro.sim.simulator import Simulator


class TestPrune:
    def test_dead_nodes_dropped(self):
        manager = algebraic_manager(4)
        simulator = Simulator(manager)
        final = simulator.run(Circuit(4).h(0).cx(0, 1).t(1).cx(1, 2).h(3)).state
        before = manager.statistics()["vector_nodes"]
        dropped = manager.prune([final])
        after = manager.statistics()["vector_nodes"]
        assert dropped["vector_dropped"] > 0
        assert after == before - dropped["vector_dropped"]

    def test_live_root_untouched(self):
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        final = simulator.run(Circuit(3).h(0).cx(0, 1).cx(1, 2)).state
        amplitudes_before = manager.to_statevector(final)
        manager.prune([final])
        # The pruned manager must still evaluate the retained DD.
        import numpy as np

        np.testing.assert_allclose(manager.to_statevector(final), amplitudes_before)
        # And rebuilding the identical state re-uses the retained node.
        rebuilt = simulator.run(Circuit(3).h(0).cx(0, 1).cx(1, 2)).state
        assert rebuilt.node is final.node

    def test_multiple_roots(self):
        manager = algebraic_manager(2)
        a = manager.basis_state(1)
        b = manager.basis_state(2)
        manager.prune([a, b])
        assert manager.edges_equal(a, manager.basis_state(1))
        assert manager.edges_equal(b, manager.basis_state(2))

    def test_caches_cleared(self):
        manager = algebraic_manager(2)
        manager.add(manager.basis_state(0), manager.basis_state(3))
        assert manager.statistics()["add_cache"] > 0
        manager.prune([])
        assert manager.statistics()["add_cache"] == 0

    def test_prune_everything(self):
        manager = algebraic_manager(3)
        manager.basis_state(5)
        dropped = manager.prune([])
        assert manager.statistics()["vector_nodes"] == 0
        assert dropped["vector_dropped"] >= 3
