"""Tests for unique-table garbage collection (prune)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager
from repro.sim.simulator import Simulator


class TestPrune:
    def test_dead_nodes_dropped(self):
        manager = algebraic_manager(4)
        simulator = Simulator(manager)
        final = simulator.run(Circuit(4).h(0).cx(0, 1).t(1).cx(1, 2).h(3)).state
        before = manager.statistics()["vector_nodes"]
        dropped = manager.prune([final])
        after = manager.statistics()["vector_nodes"]
        assert dropped["vector_dropped"] > 0
        assert after == before - dropped["vector_dropped"]

    def test_live_root_untouched(self):
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        final = simulator.run(Circuit(3).h(0).cx(0, 1).cx(1, 2)).state
        amplitudes_before = manager.to_statevector(final)
        manager.prune([final])
        # The pruned manager must still evaluate the retained DD.
        import numpy as np

        np.testing.assert_allclose(manager.to_statevector(final), amplitudes_before)
        # And rebuilding the identical state re-uses the retained node.
        rebuilt = simulator.run(Circuit(3).h(0).cx(0, 1).cx(1, 2)).state
        assert rebuilt.node is final.node

    def test_multiple_roots(self):
        manager = algebraic_manager(2)
        a = manager.basis_state(1)
        b = manager.basis_state(2)
        manager.prune([a, b])
        assert manager.edges_equal(a, manager.basis_state(1))
        assert manager.edges_equal(b, manager.basis_state(2))

    def test_caches_cleared(self):
        manager = algebraic_manager(2)
        manager.add(manager.basis_state(0), manager.basis_state(3))
        assert manager.statistics()["add_cache"] > 0
        manager.prune([])
        assert manager.statistics()["add_cache"] == 0

    def test_prune_everything(self):
        manager = algebraic_manager(3)
        manager.basis_state(5)
        dropped = manager.prune([])
        assert manager.statistics()["vector_nodes"] == 0
        assert dropped["vector_dropped"] >= 3


class TestPruneInvalidatesDerivedState:
    """Regression: ``retain``/``clear`` used to leave the compute tables
    and weight-arithmetic memos holding entries keyed by swept nodes and
    swept weight ids.  A later structurally-identical computation could
    then replay a stale memo against a node that no longer exists (or a
    recycled-looking key) -- the wrong-but-plausible DD failure mode.
    Both entry points now route through the memory manager's
    consolidated invalidation hook."""

    def test_retain_drops_memoized_apply_state(self):
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        circuit = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        final = simulator.run(circuit).state
        assert sum(t.statistics()["size"] for t in manager._compute_tables()) > 0
        from repro.dd.edge import iter_nodes

        manager._vector_table.retain([node.uid for node in iter_nodes(final)])
        for table in manager._compute_tables():
            assert table.statistics()["size"] == 0, table.name
        # Replaying the same circuit after pruning must still be exact.
        replay = Simulator(manager).run(circuit).state
        assert manager.edges_equal(replay, final)

    def test_clear_drops_memoized_apply_state(self):
        manager = algebraic_manager(3)
        circuit = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        expected = Simulator(manager).run(circuit).final_amplitudes()
        manager._vector_table.clear()
        manager._matrix_table.clear()
        for table in manager._compute_tables():
            assert table.statistics()["size"] == 0, table.name
        rebuilt = Simulator(manager).run(circuit).final_amplitudes()
        assert rebuilt.tobytes() == expected.tobytes()

    def test_retain_keeps_weight_memos_coherent(self):
        from repro.dd.edge import iter_nodes
        from repro.dd.sanitizer import Sanitizer

        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        circuit = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        final = simulator.run(circuit).state
        manager._vector_table.retain([node.uid for node in iter_nodes(final)])
        final2 = Simulator(manager).run(circuit).state
        Sanitizer(manager).check_state(final2)
