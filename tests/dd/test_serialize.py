"""Tests for lossless DD serialisation."""

import numpy as np
import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.dd.serialize import dump, dumps, load, loads
from repro.errors import DDError
from repro.sim.simulator import Simulator


class TestVectorRoundtrip:
    def test_algebraic_bit_exact(self):
        manager = algebraic_manager(4)
        state = Simulator(manager).run(grover_circuit(4, 9, iterations=2)).state
        text = dumps(manager, state)
        fresh = algebraic_manager(4)
        restored = loads(fresh, text)
        # Exact equality of every amplitude in the ring.
        for index in range(16):
            assert fresh.amplitude(restored, index) == manager.amplitude(state, index)

    def test_reload_into_same_manager_gives_same_node(self):
        manager = algebraic_manager(3)
        state = Simulator(manager).run(Circuit(3).h(0).t(0).cx(0, 1)).state
        restored = loads(manager, dumps(manager, state))
        assert manager.edges_equal(restored, state)
        assert restored.node is state.node  # canonical re-interning

    def test_gcd_system_roundtrip(self):
        manager = algebraic_gcd_manager(3)
        state = Simulator(manager).run(Circuit(3).h(0).cx(0, 1).t(2)).state
        fresh = algebraic_gcd_manager(3)
        restored = loads(fresh, dumps(manager, state))
        np.testing.assert_allclose(
            fresh.to_statevector(restored), manager.to_statevector(state), atol=1e-12
        )

    def test_numeric_roundtrip(self):
        manager = numeric_manager(3, eps=1e-10)
        state = Simulator(manager).run(Circuit(3).h(0).t(1).cx(1, 2)).state
        fresh = numeric_manager(3, eps=1e-10)
        restored = loads(fresh, dumps(manager, state))
        np.testing.assert_allclose(
            fresh.to_statevector(restored), manager.to_statevector(state), atol=1e-12
        )

    def test_zero_and_terminal_edges(self):
        manager = algebraic_manager(2)
        zero = manager.zero_edge()
        assert manager.is_zero_edge(loads(manager, dumps(manager, zero)))
        one = manager.one_edge()
        restored = loads(manager, dumps(manager, one))
        assert manager.system.is_one(restored.weight)


class TestMatrixRoundtrip:
    def test_unitary_roundtrip(self):
        manager = algebraic_manager(3)
        unitary = Simulator(manager).unitary(Circuit(3).h(0).ccx(0, 1, 2).t(1))
        fresh = algebraic_manager(3)
        restored = loads(fresh, dumps(manager, unitary))
        np.testing.assert_allclose(
            fresh.to_matrix(restored), manager.to_matrix(unitary), atol=1e-12
        )

    def test_identity_roundtrip_structural(self):
        manager = algebraic_manager(4)
        restored = loads(manager, dumps(manager, manager.identity()))
        assert manager.edges_equal(restored, manager.identity())


class TestFileIO:
    def test_dump_and_load(self, tmp_path):
        manager = algebraic_manager(2)
        state = Simulator(manager).run(Circuit(2).h(0).cx(0, 1)).state
        path = tmp_path / "bell.qmdd.json"
        dump(manager, state, str(path))
        restored = load(manager, str(path))
        assert manager.edges_equal(restored, state)


class TestValidation:
    def test_system_mismatch(self):
        manager = algebraic_manager(2)
        text = dumps(manager, manager.basis_state(0))
        with pytest.raises(DDError):
            loads(numeric_manager(2), text)

    def test_width_mismatch(self):
        manager = algebraic_manager(2)
        text = dumps(manager, manager.basis_state(0))
        with pytest.raises(DDError):
            loads(algebraic_manager(3), text)

    def test_bad_format_version(self):
        manager = algebraic_manager(2)
        with pytest.raises(DDError):
            loads(manager, '{"format": 99}')

    def test_huge_coefficients_survive(self):
        """GSE-scale bit-widths (hundreds of bits) serialise exactly --
        JSON integers are arbitrary precision in Python."""
        from repro.rings.qomega import QOmega
        from repro.rings.zomega import ZOmega

        manager = algebraic_manager(1)
        big = QOmega(ZOmega(3**100, -(2**200), 5**80, 7**70), 41, 3**60)
        state = manager.vector_from_weights([manager.system.one, big])
        restored = loads(manager, dumps(manager, state))
        assert manager.edges_equal(restored, state)


def _serialize_in_subprocess(system: str) -> str:
    """Simulate + serialize inside a worker process; return the document."""
    import multiprocessing

    with multiprocessing.Pool(1) as pool:
        return pool.apply(_subprocess_payload, (system,))


def _subprocess_payload(system: str) -> str:
    factory = {
        "algebraic": algebraic_manager,
        "algebraic-gcd": algebraic_gcd_manager,
    }.get(system)
    manager = factory(3) if factory else numeric_manager(3, eps=1e-10)
    circuit = Circuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.t(1)
    circuit.cx(1, 2)
    state = Simulator(manager).run(circuit).state
    return dumps(manager, state)


class TestCrossProcess:
    """Documents serialized in one process must load in another.

    The format references no weight-table ids or process-local state;
    ``loads`` re-interns everything through the destination manager's
    own unique/weight tables.  This is the transport contract of the
    batch-execution engine (repro.exec).
    """

    @pytest.mark.parametrize("system", ["algebraic", "algebraic-gcd", "numeric"])
    def test_subprocess_document_loads_in_parent(self, system):
        payload = _serialize_in_subprocess(system)
        factory = {
            "algebraic": algebraic_manager,
            "algebraic-gcd": algebraic_gcd_manager,
        }.get(system)
        manager = factory(3) if factory else numeric_manager(3, eps=1e-10)
        restored = loads(manager, payload)
        # The parent-side document of the same simulation is identical.
        circuit = Circuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(1)
        circuit.cx(1, 2)
        local = Simulator(manager).run(circuit).state
        assert manager.edges_equal(restored, local)
        assert dumps(manager, restored) == payload
