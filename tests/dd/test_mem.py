"""Tests for the node lifecycle / memory-management subsystem.

Covers the :mod:`repro.dd.mem` contract: incremental refcounts agree
with a structural recount, mark-and-sweep keeps exactly the reachable
closure, derived memo state (compute tables, weight memos, weight
tables) is invalidated or swept coherently, and the trigger policy
(threshold growth, hard budgets) behaves as documented.
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.dd.edge import REF_SATURATION, TERMINAL
from repro.dd.manager import (
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.dd.mem import GcStats, MemoryBudget, MemoryConfig
from repro.errors import DDError, MemoryBudgetExceeded
from repro.sim.simulator import Simulator


def _entangled_state(manager, num_qubits=3):
    circuit = Circuit(num_qubits).h(0)
    for target in range(1, num_qubits):
        circuit.cx(target - 1, target)
    return Simulator(manager).run(circuit).state


class TestRefcounts:
    def test_terminal_is_born_saturated(self):
        assert TERMINAL.ref == REF_SATURATION

    def test_interning_maintains_in_degrees(self, manager_factory):
        manager = manager_factory(3)
        _entangled_state(manager)
        assert manager.memory.audit() == []

    def test_audit_detects_corrupted_count(self):
        manager = algebraic_manager(3)
        state = _entangled_state(manager)
        state.node.ref += 1
        violations = manager.memory.audit()
        assert violations and violations[0].code == "refcount"
        assert violations[0].node_uid == state.node.uid

    def test_audit_skips_saturated_counts(self):
        manager = algebraic_manager(3)
        state = _entangled_state(manager)
        state.node.ref = REF_SATURATION
        assert manager.memory.audit() == []

    def test_inc_dec_roundtrip(self):
        manager = algebraic_manager(2)
        state = manager.basis_state(3)
        before = state.node.ref
        memory = manager.memory
        memory.inc_ref(state)
        memory.inc_ref(state)
        assert state.node.ref == before + 2
        memory.dec_ref(state)
        memory.dec_ref(state)
        assert state.node.ref == before
        assert memory.audit() == []

    def test_dec_ref_unregistered_raises(self):
        manager = algebraic_manager(2)
        state = manager.basis_state(0)
        with pytest.raises(DDError, match="balanced"):
            manager.memory.dec_ref(state)

    def test_saturated_count_is_sticky(self):
        manager = algebraic_manager(2)
        state = manager.basis_state(1)
        state.node.ref = REF_SATURATION
        memory = manager.memory
        memory.inc_ref(state)
        assert state.node.ref == REF_SATURATION
        memory.dec_ref(state)
        assert state.node.ref == REF_SATURATION


class TestCollect:
    def test_collect_keeps_exactly_the_registered_closure(self, manager_factory):
        manager = manager_factory(3)
        memory = manager.memory
        live = _entangled_state(manager)
        memory.inc_ref(live)
        manager.basis_state(5)  # dead intermediate state
        before = memory.node_count
        stats = memory.collect()
        assert isinstance(stats, GcStats)
        assert stats.swept_nodes > 0
        assert stats.before_nodes == before
        assert stats.after_nodes == memory.node_count
        assert memory.audit() == []
        # The retained DD still evaluates.
        assert manager.to_statevector(live) is not None

    def test_extra_roots_survive_without_registration(self):
        manager = algebraic_manager(3)
        state = _entangled_state(manager)
        manager.memory.collect(extra_roots=[state])
        uids = {node.uid for node in manager._vector_table.nodes()}
        assert state.node.uid in uids

    def test_pinned_edges_survive(self):
        manager = algebraic_manager(3)
        state = _entangled_state(manager)
        manager.memory.pin(state)
        manager.memory.collect()
        uids = {node.uid for node in manager._vector_table.nodes()}
        assert state.node.uid in uids
        assert manager.memory.audit() == []

    def test_collect_invalidates_compute_tables(self):
        manager = algebraic_manager(2)
        manager.add(manager.basis_state(0), manager.basis_state(3))
        assert manager.statistics()["add_cache"] > 0
        generation_before = manager._add_cache.generation
        stats = manager.memory.collect()
        assert stats.invalidated_entries > 0
        assert manager.statistics()["add_cache"] == 0
        assert manager._add_cache.generation == generation_before + 1

    def test_rebuild_after_collect_is_identical(self, manager_factory):
        manager = manager_factory(3)
        circuit = Circuit(3).h(0).cx(0, 1).t(1).cx(1, 2)
        reference = Simulator(manager).run(circuit).final_amplitudes()
        manager.memory.collect()
        rebuilt = Simulator(manager).run(circuit).final_amplitudes()
        assert reference.tobytes() == rebuilt.tobytes()


class TestWeightSweep:
    def test_dead_algebraic_weights_are_tombstoned(self):
        manager = algebraic_manager(3)
        _entangled_state(manager)  # dead: nothing registered
        table = manager.system.table
        before = table.statistics()["entries"]
        stats = manager.memory.collect()
        assert stats.swept_weights > 0
        after = table.statistics()["entries"]
        assert after == before - stats.swept_weights

    def test_zero_and_one_survive_everything(self):
        manager = algebraic_manager(2)
        manager.basis_state(3)
        manager.memory.collect()
        system = manager.system
        assert system.value_for_key(system.key(system.zero)) == system.zero
        assert system.value_for_key(system.key(system.one)) == system.one

    def test_swept_weight_id_raises_a_typed_error(self):
        from repro.rings.domega import DOmega

        manager = algebraic_gcd_manager(2)
        # A weight that is neither zero/one nor any gate-matrix entry
        # (gate-signature keys are kept live for the apply caches).
        weight = manager.system.from_domega(
            DOmega.from_coefficients(1, 1, 0, 0, 1)
        )
        dead_key = manager.system.key(weight)
        manager.memory.collect()  # nothing registered: the weight dies
        with pytest.raises(DDError, match="swept"):
            manager.system.table.value(dead_key)

    def test_tolerant_numeric_table_is_never_swept(self):
        manager = numeric_manager(3, eps=1e-10)
        _entangled_state(manager)
        table = manager.system.table
        before = len(table)
        stats = manager.memory.collect()
        assert stats.swept_weights == 0
        assert len(table) == before  # anchors all stay

    def test_sweep_weights_can_be_disabled(self):
        manager = algebraic_manager(3)
        manager.memory.configure(MemoryConfig(sweep_weights=False))
        _entangled_state(manager)
        stats = manager.memory.collect()
        assert stats.swept_nodes > 0
        assert stats.swept_weights == 0


class TestTriggerPolicy:
    def test_coercions(self):
        assert MemoryConfig.coerce(None).enabled is False
        assert MemoryConfig.coerce(False).enabled is False
        assert MemoryConfig.coerce(True).enabled is True
        assert MemoryConfig.coerce(64).threshold == 64
        budget = MemoryBudget(max_nodes=10)
        assert MemoryConfig.coerce(budget).budget is budget
        with pytest.raises(TypeError):
            MemoryConfig.coerce("lots")

    def test_threshold_triggers_maybe_collect(self):
        manager = algebraic_manager(3)
        memory = manager.memory
        _entangled_state(manager)  # unregistered: fully collectable
        memory.configure(MemoryConfig(threshold=2, min_yield=0.0))
        stats = memory.maybe_collect()
        assert stats is not None and stats.trigger == "threshold"
        assert memory.statistics()["collections"] == 1

    def test_low_yield_grows_the_threshold(self):
        manager = algebraic_manager(3)
        memory = manager.memory
        state = _entangled_state(manager)
        memory.inc_ref(state)
        memory.collect()  # shrink to the live closure first
        live = memory.node_count
        memory.configure(
            MemoryConfig(threshold=max(1, live), min_yield=0.9, growth_factor=2.0)
        )
        memory.maybe_collect()  # everything is live: yield ~0
        assert memory.statistics()["threshold"] == max(1, live) * 2

    def test_max_threshold_clamps_growth(self):
        manager = algebraic_manager(2)
        memory = manager.memory
        state = manager.basis_state(3)
        memory.inc_ref(state)
        memory.configure(
            MemoryConfig(threshold=1, min_yield=1.0, growth_factor=100.0, max_threshold=5)
        )
        memory.maybe_collect()
        assert memory.statistics()["threshold"] == 5

    def test_disabled_gc_never_collects(self):
        manager = algebraic_manager(3)
        _entangled_state(manager)
        assert manager.memory.maybe_collect() is None
        assert manager.memory.statistics()["collections"] == 0


class TestBudget:
    def test_budget_requires_a_limit(self):
        with pytest.raises(ValueError):
            MemoryBudget()

    def test_budget_failure_carries_the_numbers(self):
        manager = algebraic_manager(3)
        memory = manager.memory
        state = _entangled_state(manager)
        memory.inc_ref(state)
        memory.configure(MemoryConfig(enabled=False, budget=MemoryBudget(max_nodes=1)))
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            memory.maybe_collect()
        error = excinfo.value
        assert error.max_nodes == 1
        assert error.nodes > 1
        assert memory.statistics()["collections"] == 1  # it tried to collect first

    def test_budget_satisfied_after_collection_does_not_raise(self):
        manager = algebraic_manager(3)
        memory = manager.memory
        _entangled_state(manager)  # all dead
        memory.configure(MemoryConfig(enabled=False, budget=MemoryBudget(max_nodes=3)))
        stats = memory.maybe_collect()
        assert stats is not None and stats.trigger == "budget"

    def test_byte_budget(self):
        manager = algebraic_manager(3)
        memory = manager.memory
        state = _entangled_state(manager)
        memory.inc_ref(state)
        assert memory.approx_bytes() > 0
        memory.configure(MemoryConfig(enabled=False, budget=MemoryBudget(max_bytes=1)))
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            memory.maybe_collect()
        assert excinfo.value.approx_bytes is not None


class TestSimulatorWiring:
    def test_simulator_gc_keeps_the_final_state_registered(self):
        manager = algebraic_manager(4)
        simulator = Simulator(manager, gc=MemoryConfig(threshold=8, min_yield=0.0))
        circuit = Circuit(4).h(0).cx(0, 1).t(1).cx(1, 2).cx(2, 3)
        result = simulator.run(circuit)
        memory = manager.memory
        assert memory.statistics()["collections"] > 0
        assert memory.statistics()["registered_roots"] == 1
        assert memory.audit() == []
        # The final state must still be resident and evaluable.
        assert manager.to_statevector(result.state) is not None

    def test_simulator_budget_failure_is_typed(self):
        manager = algebraic_manager(6)
        simulator = Simulator(manager, gc=MemoryBudget(max_nodes=4))
        circuit = Circuit(6)
        for qubit in range(6):
            circuit.h(qubit)
        circuit.cx(0, 5)
        with pytest.raises(MemoryBudgetExceeded):
            simulator.run(circuit)

    def test_manager_statistics_expose_gc_block(self):
        manager = algebraic_manager(2)
        stats = manager.statistics()["gc"]
        assert stats["enabled"] is False
        assert stats["collections"] == 0

    def test_collect_garbage_entry_point(self):
        manager = algebraic_manager(3)
        state = _entangled_state(manager)
        stats = manager.collect_garbage(roots=[state])
        assert stats.trigger == "explicit"
        assert manager.memory.audit() == []
