"""Property test: garbage collection never changes simulation results.

Hypothesis generates random Clifford+T circuits; each is simulated
twice under every number system -- once with the collector disabled and
once at the most aggressive possible trigger (threshold 1 with a zero
yield floor, i.e. a full mark-and-sweep after *every* gate, with the
weight tables swept too).  The final state must be *byte-identical*:

* exact systems (algebraic-q, algebraic-gcd, numeric eps=0) recompute
  swept structure from identical canonical operands, so every float is
  bit-equal;
* the tolerant numeric system (eps > 0) keeps all identification
  anchors alive by design (the table is never swept), so recomputed
  values snap to exactly the entries they snapped to before.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.dd.manager import (
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.dd.mem import MemoryConfig
from repro.sim.simulator import Simulator

NUM_QUBITS = 3

MANAGER_FACTORIES = {
    "algebraic-q": lambda: algebraic_manager(NUM_QUBITS),
    "algebraic-gcd": lambda: algebraic_gcd_manager(NUM_QUBITS),
    "numeric-exact": lambda: numeric_manager(NUM_QUBITS, eps=0.0),
    "numeric-tolerant": lambda: numeric_manager(NUM_QUBITS, eps=1e-10),
}

#: Collect after every single gate, weight sweep included.
AGGRESSIVE = dict(threshold=1, min_yield=0.0, sweep_weights=True)


@st.composite
def clifford_t_circuits(draw):
    """Random circuits over {H, T, S, X, Z, CX, CCX} on 3 qubits."""
    length = draw(st.integers(min_value=0, max_value=24))
    circuit = Circuit(NUM_QUBITS, name="random-gc")
    for _ in range(length):
        kind = draw(st.integers(min_value=0, max_value=6))
        qubit = draw(st.integers(min_value=0, max_value=NUM_QUBITS - 1))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.t(qubit)
        elif kind == 2:
            circuit.s(qubit)
        elif kind == 3:
            circuit.x(qubit)
        elif kind == 4:
            circuit.z(qubit)
        elif kind == 5:
            other = (
                qubit + 1 + draw(st.integers(min_value=0, max_value=NUM_QUBITS - 2))
            ) % NUM_QUBITS
            circuit.cx(qubit, other)
        else:
            others = [q for q in range(NUM_QUBITS) if q != qubit]
            circuit.ccx(others[0], others[1], qubit)
    return circuit


class TestGcNeverChangesResults:
    @pytest.mark.parametrize("kind", sorted(MANAGER_FACTORIES))
    @given(circuit=clifford_t_circuits())
    @settings(max_examples=25, deadline=None)
    def test_final_state_byte_identical_under_aggressive_gc(self, kind, circuit):
        factory = MANAGER_FACTORIES[kind]
        reference = Simulator(factory()).run(circuit).final_amplitudes()

        manager = factory()
        simulator = Simulator(manager, gc=MemoryConfig(**AGGRESSIVE))
        collected = simulator.run(circuit).final_amplitudes()

        assert collected.tobytes() == reference.tobytes()
        # The collector must actually have run for the comparison to
        # mean anything (any non-empty circuit crosses threshold 1).
        if len(circuit) > 0:
            assert manager.memory.statistics()["collections"] > 0
        assert manager.memory.audit() == []
