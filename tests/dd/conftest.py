"""Shared fixtures and strategies for decision-diagram tests."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.dd.manager import (
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.rings.domega import DOmega

#: Small D[omega] values usable as exact amplitudes/entries in any system.
small_ints = st.integers(min_value=-3, max_value=3)
small_domegas = st.builds(
    DOmega.from_coefficients, small_ints, small_ints, small_ints, small_ints,
    st.integers(min_value=0, max_value=3),
)


def make_managers(num_qubits):
    """All three manager flavours, for parametrised cross-checking."""
    return {
        "numeric": numeric_manager(num_qubits, eps=0.0),
        "numeric-tolerant": numeric_manager(num_qubits, eps=1e-10),
        "numeric-maxnorm": numeric_manager(num_qubits, eps=0.0, normalization="max-magnitude"),
        "algebraic-q": algebraic_manager(num_qubits),
        "algebraic-gcd": algebraic_gcd_manager(num_qubits),
    }


MANAGER_KINDS = ["numeric", "numeric-tolerant", "numeric-maxnorm", "algebraic-q", "algebraic-gcd"]


@pytest.fixture(params=MANAGER_KINDS)
def manager_factory(request):
    """A factory fixture: call with num_qubits to get a fresh manager."""
    kind = request.param

    def factory(num_qubits):
        return make_managers(num_qubits)[kind]

    factory.kind = kind
    return factory


def import_weights(manager, values):
    """Import a list of DOmega values into the manager's weight domain."""
    return [manager.system.from_domega(value) for value in values]


def dense_of(values):
    """Complex numpy array of a list of DOmega values."""
    return np.array([value.to_complex() for value in values], dtype=complex)
