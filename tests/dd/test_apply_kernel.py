"""The direct apply kernel must reproduce the matrix-DD path exactly.

Property test: on random Clifford+T circuits (with positive and
negative multi-controls) the kernel's state is the *same canonical
edge* -- ``edges_equal``, i.e. pointer-equal node plus equal weight key
-- as ``mat_vec(build_gate_dd(...), state)`` after every gate, for all
three number systems.  Plus sanity checks for the compute-table and
weight-memo counters the kernel relies on.
"""

import random

import pytest

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.dd.apply import apply_gate, prepare_gate
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator

FACTORIES = {
    "numeric": numeric_manager,
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}

SINGLE_QUBIT = ["x", "y", "z", "h", "s", "sdg", "t", "tdg"]


def random_circuit(rng: random.Random, num_qubits: int, depth: int) -> Circuit:
    circuit = Circuit(num_qubits, name="random_cliffordt")
    for _ in range(depth):
        target = rng.randrange(num_qubits)
        if rng.random() < 0.5:
            getattr(circuit, rng.choice(SINGLE_QUBIT))(target)
        else:
            others = [q for q in range(num_qubits) if q != target]
            rng.shuffle(others)
            chosen = others[: rng.randint(1, min(2, len(others)))]
            negatives = tuple(q for q in chosen if rng.random() < 0.4)
            positives = tuple(q for q in chosen if q not in negatives)
            gate = gates.X if rng.random() < 0.6 else gates.Z
            circuit.append(
                gate, target, controls=positives, negative_controls=negatives
            )
    return circuit


@pytest.mark.parametrize("kind", list(FACTORIES))
@pytest.mark.parametrize("seed", [11, 23, 47])
def test_kernel_matches_matrix_path(kind, seed):
    rng = random.Random(seed)
    num_qubits = rng.randint(3, 5)
    circuit = random_circuit(rng, num_qubits, 30)
    manager = FACTORIES[kind](num_qubits)
    # Both simulators share one manager, so canonicity makes equal
    # states pointer-equal and ``edges_equal`` is an O(1) check.
    kernel_sim = Simulator(manager, use_apply_kernel=True)
    matrix_sim = Simulator(manager, use_apply_kernel=False)
    kernel_state = manager.zero_state()
    matrix_state = manager.zero_state()
    for index, operation in enumerate(circuit):
        kernel_state = kernel_sim.apply(kernel_state, operation)
        matrix_state = matrix_sim.apply(matrix_state, operation)
        assert manager.edges_equal(kernel_state, matrix_state), (
            f"kernel diverged from matrix path at gate {index} "
            f"({operation.gate.name}) under {kind}"
        )


def test_apply_gate_function_matches():
    manager = algebraic_gcd_manager(3)
    simulator = Simulator(manager)
    state = manager.zero_state()
    entries = tuple(manager.system.from_domega(e) for e in gates.H.exact)
    direct = apply_gate(manager, state, entries, 0)
    via_sim = simulator.apply(manager.zero_state(), Circuit(3).h(0)[0])
    assert manager.edges_equal(direct, via_sim)


def test_prepare_gate_validation():
    manager = algebraic_manager(2)
    entries = tuple(manager.system.from_domega(e) for e in gates.X.exact)
    with pytest.raises(CircuitError):
        prepare_gate(manager, entries[:3], 0)
    with pytest.raises(CircuitError):
        prepare_gate(manager, entries, 0, controls=[0])
    with pytest.raises(CircuitError):
        prepare_gate(manager, entries, 0, controls=[1], negative_controls=[1])
    with pytest.raises(CircuitError):
        prepare_gate(manager, entries, 5)


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_apply_cache_counters(kind):
    """Re-applying a gate to the same state must hit the apply cache,
    and every compute table reports hit/miss/insert counters."""
    manager = FACTORIES[kind](4)
    simulator = Simulator(manager, use_apply_kernel=True)
    circuit = Circuit(4).h(0).h(1).h(2)
    state = manager.zero_state()
    for operation in circuit:
        state = simulator.apply(state, operation)
    once = simulator.apply(state, circuit[0])
    twice = simulator.apply(state, circuit[0])  # memoised second time
    assert manager.edges_equal(once, twice)
    stats = manager.statistics()
    apply_stats = stats["compute_tables"]["apply"]
    assert apply_stats["hits"] > 0
    assert apply_stats["inserts"] > 0
    for name, counters in stats["compute_tables"].items():
        for key in ("hits", "misses", "inserts", "size", "capacity"):
            assert key in counters, f"{name} lacks counter {key!r}"
    flat = manager.cache_stats()
    assert "apply" in flat
    assert all("hits" in counters for counters in flat.values())


def test_weight_memo_counters_exposed():
    """The interned-arithmetic memos must show up in the statistics,
    including the gcd system's canonical-associate memo."""
    from repro.rings.domega import DOmega

    manager = algebraic_gcd_manager(3)
    system = manager.system
    root2_inv = system.from_domega(DOmega.one_over_sqrt2())
    omega = system.from_domega(DOmega.omega_power(1))
    mixed = system.from_domega(DOmega.from_coefficients(1, 0, 1, 2, 1))
    product = system.mul(root2_inv, omega)
    assert system.mul(root2_inv, omega) is product  # memo hit
    total = system.add(product, mixed)
    assert system.add(product, mixed) is total  # memo hit
    # 3 and 5 are coprime non-units: neither divides the other, their
    # numerator-norm gcd is 1, so normalisation must walk the
    # canonical-associate selection (the ``weight_assoc`` memo).
    three = system.from_domega(DOmega.from_coefficients(3, 0, 0, 0))
    five = system.from_domega(DOmega.from_coefficients(5, 0, 0, 0))
    system.normalize((three, five))
    assert system.division_helper(total, root2_inv) is not None
    weights = manager.statistics()["weights"]
    for memo in (
        "weight_mul",
        "weight_add",
        "weight_normalize",
        "weight_div",
        "weight_assoc",
    ):
        assert memo in weights, f"missing weight memo {memo!r}"
        assert weights[memo]["hits"] + weights[memo]["misses"] > 0
    assert weights["weight_mul"]["hits"] > 0
    assert weights["weight_add"]["hits"] > 0
