"""Regression tests for monotonic table statistics and apply routing
counters.

Satellite fixes under test:

* :class:`ComputeTable` wholesale eviction and ``clear`` must keep all
  counters monotonic and account for dropped entries in
  ``evicted_entries`` (previously a cleared table looked like a fresh
  one, so benchmark snapshots went backwards).
* :class:`UniqueTable.clear` keeps its hit/miss counters.
* ``DDManager.statistics()`` exposes how many gate applications the
  direct apply kernel handled itself (``apply_direct_ops``) versus
  delegated to the matrix path (``apply_delegated_ops`` -- the numeric
  below-target-control escape hatch).
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.dd.unique_table import ComputeTable, UniqueTable
from repro.sim.simulator import Simulator


class TestComputeTableMonotonicStats:
    def test_eviction_accounts_for_dropped_entries(self):
        table = ComputeTable("t", capacity=4)
        for i in range(4):
            table.put(i, i)
        stats = table.statistics()
        assert stats["size"] == 4 and stats["evicted_entries"] == 0
        table.put(99, 99)  # triggers wholesale eviction
        stats = table.statistics()
        assert stats["size"] == 1
        assert stats["evictions"] == 1
        assert stats["evicted_entries"] == 4
        assert stats["inserts"] == 5

    def test_clear_keeps_counters(self):
        table = ComputeTable("t", capacity=8)
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("b") is None
        before = table.statistics()
        table.clear()
        after = table.statistics()
        assert after["size"] == 0
        assert after["hits"] == before["hits"] == 1
        assert after["misses"] == before["misses"] == 1
        assert after["inserts"] == before["inserts"] == 1
        assert after["evicted_entries"] == 1  # the cleared entry is counted

    def test_counters_monotonic_across_mixed_operations(self):
        table = ComputeTable("t", capacity=3)
        previous = table.statistics()
        for step in range(40):
            table.put(step % 7, step)
            table.get(step % 5)
            if step % 11 == 0:
                table.clear()
            current = table.statistics()
            for counter in ("hits", "misses", "inserts", "evictions", "evicted_entries"):
                assert current[counter] >= previous[counter], counter
            previous = current


class TestUniqueTableMonotonicStats:
    def test_clear_keeps_hit_miss_counters(self):
        manager = algebraic_manager(2)
        manager.basis_state(0)
        manager.basis_state(0)  # re-interns the same nodes: hits
        table = manager._vector_table
        before = table.statistics()
        assert before["hits"] > 0 and before["misses"] > 0
        table.clear()
        after = table.statistics()
        assert after["size"] == 0
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_prune_keeps_cumulative_counters(self):
        manager = algebraic_manager(3)
        circuit = Circuit(3, name="mix")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.t(2)
        state = Simulator(manager).run(circuit).state
        before = manager.statistics()
        manager.prune([state])
        after = manager.statistics()
        for arity in ("vector", "matrix"):
            assert (
                after["unique_tables"][arity]["hits"]
                >= before["unique_tables"][arity]["hits"]
            )
            assert (
                after["unique_tables"][arity]["misses"]
                >= before["unique_tables"][arity]["misses"]
            )
        for name, counters in after["compute_tables"].items():
            for key in ("hits", "misses", "inserts", "evicted_entries"):
                assert counters[key] >= before["compute_tables"][name][key], (name, key)


class TestApplyRoutingCounters:
    def test_numeric_below_target_control_delegates(self):
        # Control on qubit 1 (level 1) below target qubit 0 (level 2):
        # the numeric system takes the matrix-path escape hatch.
        manager = numeric_manager(2, eps=0.0)
        circuit = Circuit(2, name="updown")
        circuit.h(1)
        circuit.cx(1, 0)  # control below target
        circuit.cx(0, 1)  # control above target: direct
        Simulator(manager).run(circuit)
        stats = manager.statistics()
        assert stats["apply_delegated_ops"] == 1
        assert stats["apply_direct_ops"] == 2

    def test_exact_system_never_delegates(self):
        manager = algebraic_manager(2)
        circuit = Circuit(2, name="updown")
        circuit.h(1)
        circuit.cx(1, 0)
        circuit.cx(0, 1)
        Simulator(manager).run(circuit)
        stats = manager.statistics()
        assert stats["apply_delegated_ops"] == 0
        assert stats["apply_direct_ops"] == 3

    def test_matrix_path_touches_neither_counter(self):
        manager = numeric_manager(2, eps=0.0)
        circuit = Circuit(2, name="bell")
        circuit.h(0)
        circuit.cx(0, 1)
        Simulator(manager, use_apply_kernel=False).run(circuit)
        stats = manager.statistics()
        assert stats["apply_delegated_ops"] == 0
        assert stats["apply_direct_ops"] == 0


class TestComputeTableBalanceInvariant:
    """Regression: ``discard`` removed entries without counting them, so
    ``inserts - evicted_entries`` overstated the resident size and
    snapshot deltas went negative after a sanitizer memo replay.  The
    accounting now satisfies, at every point in time::

        inserts - evicted_entries - discards == len(table)

    and overwriting an existing key is an ``update``, not an insert."""

    @staticmethod
    def _assert_balanced(table):
        stats = table.statistics()
        assert (
            stats["inserts"] - stats["evicted_entries"] - stats["discards"]
            == stats["size"]
        )

    def test_discard_is_counted(self):
        table = ComputeTable("t", capacity=8)
        table.put("a", 1)
        assert table.discard("a") == 1
        assert table.discard("a") is None  # absent: not double-counted
        stats = table.statistics()
        assert stats["discards"] == 1
        assert stats["size"] == 0
        self._assert_balanced(table)

    def test_overwrite_is_an_update_not_an_insert(self):
        table = ComputeTable("t", capacity=8)
        table.put("a", 1)
        table.put("a", 2)
        stats = table.statistics()
        assert stats["inserts"] == 1
        assert stats["updates"] == 1
        assert table.get("a") == 2
        self._assert_balanced(table)

    def test_invalidate_bumps_generation_and_balances(self):
        table = ComputeTable("t", capacity=8)
        for i in range(5):
            table.put(i, i)
        assert table.generation == 0
        dropped = table.invalidate()
        assert dropped == 5
        stats = table.statistics()
        assert stats["generation"] == 1
        assert stats["invalidations"] == 1
        assert stats["size"] == 0
        self._assert_balanced(table)

    def test_balance_holds_across_mixed_operations(self):
        table = ComputeTable("t", capacity=3)
        for step in range(60):
            table.put(step % 7, step)      # inserts, updates, evictions
            if step % 5 == 0:
                table.discard(step % 7)
            if step % 13 == 0:
                table.invalidate()
            if step % 17 == 0:
                table.clear()
            self._assert_balanced(table)
