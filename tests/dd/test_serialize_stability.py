"""Payload stability of repro.dd.serialize across repeated cycles.

The persistent service (repro.serve) replays cached serialized states
and re-serializes warm-run states from long-lived managers, so the
contract it leans on is pinned down here: within one process, dumps ->
loads -> dumps is a fixed point -- the payload text never drifts, no
matter how many cycles it goes through, into a fresh manager or back
into the manager that produced it, for all four number systems.
"""

import pytest

from repro.api import RunRequest, SimulatorConfig, run
from repro.circuits.circuit import Circuit
from repro.dd.serialize import dumps, loads

CYCLES = 5

CONFIGS = [
    pytest.param(SimulatorConfig(system="algebraic"), id="algebraic"),
    pytest.param(SimulatorConfig(system="algebraic-gcd"), id="algebraic-gcd"),
    pytest.param(SimulatorConfig(system="numeric", eps=1e-10), id="numeric-eps"),
    pytest.param(
        SimulatorConfig(system="numeric", precision="single"), id="numeric-single"
    ),
]


def _workload() -> Circuit:
    # Non-trivial weights on every branch: H/T phases plus entanglement.
    circuit = Circuit(4, name="stability")
    circuit.h(0).t(0).cx(0, 1).h(2).s(2).cx(2, 3).ccx(0, 2, 3).tdg(1)
    return circuit


@pytest.mark.parametrize("config", CONFIGS)
class TestPayloadStability:
    def test_fresh_manager_cycles_are_fixed_point(self, config):
        circuit = _workload()
        payload = run(RunRequest(circuit, config)).state_payload
        for _ in range(CYCLES):
            manager = config.create_manager(circuit.num_qubits)
            state = loads(manager, payload)
            assert dumps(manager, state) == payload

    def test_same_manager_cycles_are_fixed_point(self, config):
        # The serve worker's shape: one long-lived manager re-serializes
        # states over and over while its tables keep growing.
        circuit = _workload()
        payload = run(RunRequest(circuit, config)).state_payload
        manager = config.create_manager(circuit.num_qubits)
        for _ in range(CYCLES):
            state = loads(manager, payload)
            assert dumps(manager, state) == payload

    def test_repeated_runs_in_one_manager_reproduce_payload(self, config):
        # Warm-table reuse must not change the serialized result: run
        # the same circuit repeatedly through one simulator stack (hot
        # unique/compute/weight tables) and compare each payload to the
        # cold-run payload.
        from repro.api import run_with

        circuit = _workload()
        cold = run(RunRequest(circuit, config)).state_payload
        simulator = config.create_simulator(circuit.num_qubits)
        for _ in range(CYCLES):
            warm = run_with(
                RunRequest(circuit, config), simulator, keep_state=False
            )
            assert warm.state_payload == cold
