"""Normalisation-scheme invariants (paper Algorithms 2 and 3, and the
numeric variants of Section II-B / [29])."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd.number_system import (
    AlgebraicGcdSystem,
    AlgebraicQOmegaSystem,
    NumericSystem,
)
from repro.errors import DDError
from repro.rings.domega import DOmega
from repro.rings.qomega import QOmega
from repro.rings.zomega import ZOmega

small_ints = st.integers(min_value=-4, max_value=4)
small_domegas = st.builds(
    DOmega.from_coefficients, small_ints, small_ints, small_ints, small_ints,
    st.integers(min_value=0, max_value=2),
)
weight_tuples = st.tuples(small_domegas, small_domegas, small_domegas, small_domegas).filter(
    lambda t: any(not w.is_zero() for w in t)
)

# D[omega] units for the canonicity checks.
units = st.sampled_from(
    [
        DOmega.one_over_sqrt2(),
        DOmega.omega_power(1),
        DOmega.omega_power(5),
        DOmega.from_int(-1),
        DOmega.from_coefficients(0, 0, 1, 1),
    ]
)


class TestAlgorithm2QOmega:
    system = AlgebraicQOmegaSystem()

    @given(weight_tuples)
    @settings(max_examples=60, deadline=None)
    def test_reconstruction(self, weights):
        imported = tuple(QOmega.from_domega(w) for w in weights)
        eta, normalized = self.system.normalize(imported)
        for original, norm in zip(imported, normalized):
            assert eta * norm == original

    @given(weight_tuples)
    @settings(max_examples=60, deadline=None)
    def test_leftmost_nonzero_is_one(self, weights):
        imported = tuple(QOmega.from_domega(w) for w in weights)
        _, normalized = self.system.normalize(imported)
        leftmost = next(w for w in normalized if not w.is_zero())
        assert leftmost.is_one()

    @given(weight_tuples, small_domegas.filter(bool))
    @settings(max_examples=60, deadline=None)
    def test_canonical_under_scaling(self, weights, factor):
        """Scaled weight tuples normalise to the identical tuple -- the
        property that lets QMDDs share scalar-multiple sub-matrices."""
        imported = tuple(QOmega.from_domega(w) for w in weights)
        scaled = tuple(QOmega.from_domega(factor) * w for w in imported)
        _, normalized_a = self.system.normalize(imported)
        _, normalized_b = self.system.normalize(scaled)
        assert normalized_a == normalized_b

    def test_all_zero_raises(self):
        with pytest.raises(DDError):
            self.system.normalize((QOmega.zero(),) * 4)

    def test_from_complex_rejected(self):
        with pytest.raises(DDError):
            self.system.from_complex(0.3 + 0.1j)

    def test_odd_denominator_appears(self):
        """Dividing by 3 legitimately introduces an odd denominator --
        the reason Algorithm 2 moves to Q[omega]."""
        three = QOmega.from_int(3)
        one = QOmega.one()
        eta, normalized = self.system.normalize((three, one, one, one))
        assert eta == three
        assert normalized[1].e == 3


class TestAlgorithm3Gcd:
    system = AlgebraicGcdSystem()

    @given(weight_tuples)
    @settings(max_examples=40, deadline=None)
    def test_reconstruction(self, weights):
        eta, normalized = self.system.normalize(weights)
        for original, norm in zip(weights, normalized):
            assert eta * norm == original

    @given(weight_tuples)
    @settings(max_examples=40, deadline=None)
    def test_weights_stay_in_domega(self, weights):
        """The whole point of the GCD scheme: no odd denominators ever."""
        _, normalized = self.system.normalize(weights)
        for weight in normalized:
            assert isinstance(weight, DOmega)

    @given(weight_tuples, units)
    @settings(max_examples=40, deadline=None)
    def test_canonical_under_unit_scaling(self, weights, unit):
        scaled = tuple(w * unit for w in weights)
        _, normalized_a = self.system.normalize(weights)
        _, normalized_b = self.system.normalize(scaled)
        assert normalized_a == normalized_b

    @given(weight_tuples, small_domegas.filter(bool))
    @settings(max_examples=40, deadline=None)
    def test_canonical_under_arbitrary_scaling(self, weights, factor):
        scaled = tuple(w * factor for w in weights)
        _, normalized_a = self.system.normalize(weights)
        _, normalized_b = self.system.normalize(scaled)
        assert normalized_a == normalized_b

    @given(weight_tuples)
    @settings(max_examples=40, deadline=None)
    def test_normalized_weights_coprime(self, weights):
        """After factoring out the GCD no common non-unit divisor remains."""
        _, normalized = self.system.normalize(weights)
        residual = DOmega.gcd([w for w in normalized if not w.is_zero()])
        assert residual.is_unit()

    def test_single_weight_becomes_canonical_unit(self):
        eta, normalized = self.system.normalize(
            (DOmega.zero(), DOmega.from_coefficients(0, 0, 1, 1), DOmega.zero(), DOmega.zero())
        )
        assert normalized[1].is_one()
        assert eta == DOmega.from_coefficients(0, 0, 1, 1)


class TestNumericSchemes:
    def test_leftmost_scheme(self):
        system = NumericSystem(eps=0.0, normalization="leftmost")
        w = tuple(system.from_complex(value) for value in (0.0, 0.5j, 0.25, -1.0))
        eta, normalized = system.normalize(w)
        assert system.to_complex(eta) == 0.5j
        assert system.is_zero(normalized[0])
        assert system.is_one(normalized[1])

    def test_max_magnitude_scheme_bounds_weights(self):
        system = NumericSystem(eps=0.0, normalization="max-magnitude")
        w = tuple(system.from_complex(value) for value in (0.1, 0.5j, -2.0, 0.25))
        eta, normalized = system.normalize(w)
        assert system.to_complex(eta) == -2.0
        assert all(abs(system.to_complex(weight)) <= 1.0 + 1e-12 for weight in normalized)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            NumericSystem(normalization="weird")

    def test_all_zero_raises(self):
        system = NumericSystem()
        with pytest.raises(DDError):
            system.normalize((system.zero,) * 4)

    def test_tolerant_normalization_snaps(self):
        """With a large eps, normalisation results snap onto anchors --
        the compactness-through-loss mechanism of Example 5."""
        system = NumericSystem(eps=1e-2)
        w = tuple(
            system.from_complex(value) for value in (0.5, 0.501, 0.25, 0.0)
        )
        # 0.501 was already identified with 0.5 at import time.
        assert w[0] is w[1]
        _, normalized = system.normalize(w)
        assert system.is_one(normalized[1])

    @given(
        st.lists(
            st.floats(min_value=-1, max_value=1).filter(
                lambda v: v == 0.0 or abs(v) > 1e-6  # avoid subnormal pivots
            ),
            min_size=4,
            max_size=4,
        )
    )
    def test_reconstruction_up_to_float_error(self, values):
        if all(abs(v) < 1e-9 for v in values):
            return
        system = NumericSystem(eps=0.0)
        w = tuple(system.from_complex(complex(v, 0)) for v in values)
        eta, normalized = system.normalize(w)
        for original, norm in zip(w, normalized):
            reconstructed = system.to_complex(eta) * system.to_complex(norm)
            assert abs(reconstructed - system.to_complex(original)) < 1e-9
