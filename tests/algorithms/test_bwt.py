"""Tests for the Binary Welded Tree benchmark."""

import numpy as np
import pytest

from repro.algorithms.bwt import (
    bwt_circuit,
    bwt_register_sizes,
    edge_colouring,
    welded_tree_graph,
)
from repro.dd.manager import algebraic_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator


class TestGraphConstruction:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_vertex_count(self, depth):
        graph, entrance, exit_vertex = welded_tree_graph(depth, seed=1)
        expected = 2 * ((1 << (depth + 1)) - 1)
        assert graph.number_of_nodes() == expected
        assert entrance != exit_vertex

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_degrees(self, depth):
        """Roots have degree 2, every other vertex degree 3."""
        graph, entrance, exit_vertex = welded_tree_graph(depth, seed=2)
        for vertex in graph.nodes:
            degree = graph.degree(vertex)
            if vertex in (entrance, exit_vertex):
                assert degree == 2
            else:
                assert degree == 3

    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_connected(self, depth, seed):
        import networkx as nx

        graph, _, _ = welded_tree_graph(depth, seed=seed)
        assert nx.is_connected(graph)

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_proper_edge_colouring(self, depth):
        graph, _, _ = welded_tree_graph(depth, seed=3)
        matchings = edge_colouring(graph)
        assert sum(len(pairs) for pairs in matchings.values()) == graph.number_of_edges()
        # edge_colouring raises internally if a class is not a matching;
        # additionally check no vertex sees one colour twice.
        for colour, pairs in matchings.items():
            touched = [v for pair in pairs for v in pair]
            assert len(touched) == len(set(touched))

    def test_depth_validation(self):
        with pytest.raises(CircuitError):
            welded_tree_graph(0)

    def test_deterministic_given_seed(self):
        a = welded_tree_graph(2, seed=5)[0]
        b = welded_tree_graph(2, seed=5)[0]
        assert sorted(a.edges) == sorted(b.edges)


class TestWalkCircuit:
    def test_register_sizes(self):
        vertex_bits, coin_bits, ancilla = bwt_register_sizes(2)
        assert vertex_bits == 4  # 14 vertices need 4 bits
        assert coin_bits == 2 and ancilla == 1

    def test_circuit_is_exact(self):
        """Paper Section V: BWT is exactly representable."""
        assert bwt_circuit(depth=1, steps=2).is_exactly_representable

    def test_walk_spreads_from_entrance(self):
        """After one step the walker occupies the entrance's neighbours."""
        circuit = bwt_circuit(depth=1, steps=1, seed=0)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        amplitudes = result.final_amplitudes()
        graph, entrance, _ = welded_tree_graph(1, seed=0)
        vertex_bits, _, _ = bwt_register_sizes(1)
        shift = circuit.num_qubits - vertex_bits
        occupied = {
            index >> shift
            for index, amplitude in enumerate(amplitudes)
            if abs(amplitude) > 1e-12
        }
        allowed = set(graph.neighbors(entrance)) | {entrance}
        assert occupied <= allowed
        assert len(occupied) > 1  # the walk actually moved

    def test_walk_preserves_norm(self):
        circuit = bwt_circuit(depth=1, steps=3, seed=1)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        norm = result.manager.norm_squared(result.state)
        assert result.manager.system.is_one(norm)

    def test_walk_stays_on_graph_vertices(self):
        """Amplitude never leaks to labels that are not graph vertices."""
        depth, steps = 1, 4
        circuit = bwt_circuit(depth=depth, steps=steps, seed=2)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        amplitudes = result.final_amplitudes()
        graph, _, _ = welded_tree_graph(depth, seed=2)
        vertex_bits, _, _ = bwt_register_sizes(depth)
        shift = circuit.num_qubits - vertex_bits
        for index, amplitude in enumerate(amplitudes):
            if abs(amplitude) > 1e-12:
                assert (index >> shift) in graph.nodes

    def test_matches_dense_reference(self):
        circuit = bwt_circuit(depth=1, steps=2, seed=3)
        dd_result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        dense = StatevectorSimulator(circuit.num_qubits).run(circuit)
        np.testing.assert_allclose(dd_result.final_amplitudes(), dense, atol=1e-9)

    def test_flag_ancilla_restored(self):
        """The flag ancilla must end every step in |0>."""
        circuit = bwt_circuit(depth=1, steps=2, seed=4)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        amplitudes = result.final_amplitudes()
        flag_bit = 0  # least significant qubit (last) is the flag
        for index, amplitude in enumerate(amplitudes):
            if abs(amplitude) > 1e-12:
                assert not index & 1  # flag qubit is the last (LSB)

    def test_steps_validation(self):
        with pytest.raises(CircuitError):
            bwt_circuit(depth=1, steps=0)

    def test_gate_count_scales_with_steps(self):
        one = len(bwt_circuit(depth=1, steps=1, seed=0))
        three = len(bwt_circuit(depth=1, steps=3, seed=0))
        assert three == 3 * one
