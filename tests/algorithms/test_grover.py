"""Tests for the Grover benchmark."""

import math

import numpy as np
import pytest

from repro.algorithms.grover import (
    grover_circuit,
    grover_diffusion,
    grover_oracle,
    optimal_iterations,
    success_probability_bound,
)
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator


class TestOracle:
    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_oracle_flips_only_marked(self, marked):
        n = 3
        unitary = StatevectorSimulator(n).unitary(grover_oracle(n, marked))
        expected = np.eye(8, dtype=complex)
        expected[marked, marked] = -1
        np.testing.assert_allclose(unitary, expected, atol=1e-12)

    def test_out_of_range_marked(self):
        with pytest.raises(CircuitError):
            grover_oracle(3, 8)

    def test_oracle_is_exact(self):
        assert grover_oracle(4, 5).is_exactly_representable


class TestDiffusion:
    def test_diffusion_matrix(self):
        """Diffusion = 2|s><s| - I up to global sign."""
        n = 3
        unitary = StatevectorSimulator(n).unitary(grover_diffusion(n))
        size = 8
        s = np.full((size, 1), 1 / math.sqrt(size))
        expected = 2 * (s @ s.T) - np.eye(size)
        # Allow the conventional global -1.
        if np.linalg.norm(unitary - expected) > 1e-9:
            expected = -expected
        np.testing.assert_allclose(unitary, expected, atol=1e-9)


class TestFullAlgorithm:
    @pytest.mark.parametrize("n,marked", [(3, 5), (4, 11), (5, 17)])
    def test_marked_element_amplified(self, n, marked):
        result = Simulator(algebraic_manager(n)).run(grover_circuit(n, marked))
        probabilities = np.abs(result.final_amplitudes()) ** 2
        assert probabilities.argmax() == marked
        expected = success_probability_bound(n, optimal_iterations(n))
        assert probabilities[marked] == pytest.approx(expected, abs=1e-6)

    def test_probability_grows_with_iterations(self):
        n, marked = 4, 6
        previous = 0.0
        for iterations in (1, 2, 3):
            result = Simulator(algebraic_manager(n)).run(
                grover_circuit(n, marked, iterations=iterations)
            )
            probability = abs(result.amplitude(marked)) ** 2
            assert probability > previous
            previous = probability

    def test_numeric_and_algebraic_agree(self):
        n, marked = 4, 9
        circuit = grover_circuit(n, marked)
        numeric = Simulator(numeric_manager(n, eps=1e-12)).run(circuit)
        algebraic = Simulator(algebraic_manager(n)).run(circuit)
        np.testing.assert_allclose(
            numeric.final_amplitudes(), algebraic.final_amplitudes(), atol=1e-8
        )

    def test_exactly_representable(self):
        """Paper Section V: all Grover gates/values are in D[omega]."""
        assert grover_circuit(5, 3).is_exactly_representable

    def test_algebraic_dd_stays_compact(self):
        """Paper Fig. 3a: the algebraic Grover DD remains small -- the
        state is always (a, ..., a, b, a, ..., a), a 2-value vector."""
        n = 6
        result = Simulator(algebraic_manager(n)).run(grover_circuit(n, 13))
        assert result.node_count <= 2 * n

    def test_minimum_qubits(self):
        with pytest.raises(CircuitError):
            grover_circuit(1, 0)

    def test_optimal_iterations_scaling(self):
        assert optimal_iterations(4) == round(math.pi / 4 * 4)
        assert optimal_iterations(8) == round(math.pi / 4 * 16)
        assert optimal_iterations(2) >= 1
