"""Tests for the GSE (phase estimation) benchmark."""

import math

import numpy as np
import pytest

from repro.algorithms.gse import (
    DiagonalHamiltonian,
    default_hamiltonian,
    ground_state,
    gse_circuit,
    gse_rotation_circuit,
)
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator

SMALL = dict(max_words=2000, max_length=18)


class TestHamiltonian:
    def test_energy_of_z_basis(self):
        hamiltonian = DiagonalHamiltonian(
            num_sites=2, fields=(0.5, -0.25), couplings=((0, 1, 0.1),)
        )
        # |00>: z = (+1, +1)
        assert hamiltonian.energy(0) == pytest.approx(0.5 - 0.25 + 0.1)
        # |11>: z = (-1, -1)
        assert hamiltonian.energy(3) == pytest.approx(-0.5 + 0.25 + 0.1)
        # |01>: z = (+1, -1)
        assert hamiltonian.energy(1) == pytest.approx(0.5 + 0.25 - 0.1)

    def test_spectrum_size(self):
        assert len(default_hamiltonian(3).spectrum()) == 8

    def test_ground_state_is_minimum(self):
        hamiltonian = default_hamiltonian(3)
        index, energy = ground_state(hamiltonian)
        assert energy == min(hamiltonian.spectrum())
        assert hamiltonian.energy(index) == energy

    def test_default_coefficients_irrational(self):
        """No evolution angle may be a pi/4 multiple, or the benchmark
        would not exercise the approximation path."""
        hamiltonian = default_hamiltonian(3)
        for coefficient in hamiltonian.fields:
            ratio = coefficient / (math.pi / 4)
            assert abs(ratio - round(ratio)) > 1e-6

    def test_validation(self):
        with pytest.raises(CircuitError):
            default_hamiltonian(0)


class TestRotationCircuit:
    def test_phase_estimation_recovers_energy(self):
        """With a diagonal H and eigenstate input, the ancilla register
        must peak at the binary phase of exp(i E t)."""
        hamiltonian = DiagonalHamiltonian(num_sites=2, fields=(0.7, -0.3), couplings=())
        bits = 5
        time = 1.0
        circuit = gse_rotation_circuit(
            num_sites=2, precision_bits=bits, time=time, hamiltonian=hamiltonian
        )
        state = StatevectorSimulator(circuit.num_qubits).run(circuit)
        probabilities = np.abs(state) ** 2
        # Ancillas are the most significant qubits.
        ancilla_probs = probabilities.reshape(1 << bits, -1).sum(axis=1)
        measured = int(ancilla_probs.argmax())
        index, energy = ground_state(hamiltonian)
        expected_phase = (energy * time / (2 * math.pi)) % 1.0
        measured_phase = measured / (1 << bits)
        distance = min(
            abs(measured_phase - expected_phase),
            1 - abs(measured_phase - expected_phase),
        )
        assert distance <= 1.5 / (1 << bits)

    def test_not_exactly_representable(self):
        """The raw GSE circuit is the paper's 'not directly compatible'
        case: arbitrary-angle rotations."""
        circuit = gse_rotation_circuit(num_sites=2, precision_bits=3)
        assert not circuit.is_exactly_representable

    def test_hamiltonian_size_mismatch(self):
        with pytest.raises(CircuitError):
            gse_rotation_circuit(
                num_sites=3, precision_bits=2, hamiltonian=default_hamiltonian(2)
            )

    def test_precision_bits_validation(self):
        with pytest.raises(CircuitError):
            gse_rotation_circuit(num_sites=2, precision_bits=0)


class TestCompiledCircuit:
    def test_compiled_is_exact(self):
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        assert compiled.is_exactly_representable
        assert compiled.t_count() > 0

    def test_compiled_much_longer(self):
        raw = gse_rotation_circuit(num_sites=2, precision_bits=2)
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        assert len(compiled) > 3 * len(raw)

    def test_algebraic_simulation_runs(self):
        """The compiled circuit must simulate exactly -- and produce a
        state close to the raw rotation circuit's."""
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        result = Simulator(algebraic_manager(compiled.num_qubits)).run(compiled)
        dense = StatevectorSimulator(compiled.num_qubits).run(compiled)
        np.testing.assert_allclose(result.final_amplitudes(), dense, atol=1e-8)

    def test_compiled_close_to_rotation_circuit(self):
        raw = gse_rotation_circuit(num_sites=2, precision_bits=2)
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        simulator = StatevectorSimulator(raw.num_qubits)
        overlap = abs(np.vdot(simulator.run(raw), simulator.run(compiled)))
        assert overlap > 0.9  # coarse budget, many rotations

    def test_bit_width_growth(self):
        """Paper Fig. 5 / Section V-B: algebraic simulation of the
        compiled GSE circuit grows integer bit-widths substantially."""
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        result = Simulator(
            algebraic_manager(compiled.num_qubits), record_bit_widths=True
        ).run(compiled)
        widths = [step.max_bit_width for step in result.trace.steps]
        assert max(widths) > 16  # far beyond the Grover/BWT regime

    def test_numeric_simulation_of_compiled(self):
        compiled = gse_circuit(num_sites=2, precision_bits=2, **SMALL)
        result = Simulator(numeric_manager(compiled.num_qubits, eps=1e-12)).run(compiled)
        assert not result.is_zero_state
