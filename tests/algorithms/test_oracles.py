"""Tests for the oracle-based textbook algorithms (BV, DJ, Simon)."""

import numpy as np
import pytest

from repro.algorithms.oracles import (
    bernstein_vazirani_circuit,
    deutsch_jozsa_balanced_circuit,
    deutsch_jozsa_constant_circuit,
    simon_circuit,
    solve_simon_system,
)
from repro.dd.manager import algebraic_manager
from repro.errors import CircuitError
from repro.sim.measure import sample_counts
from repro.sim.simulator import Simulator


def input_register_distribution(result, num_bits, total_qubits):
    """Marginal probabilities of the first ``num_bits`` qubits."""
    amplitudes = result.final_amplitudes()
    probs = np.abs(amplitudes) ** 2
    return probs.reshape(1 << num_bits, -1).sum(axis=1)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0, 1, 0b1011, 0b1111])
    def test_recovers_secret_with_certainty(self, secret):
        num_bits = 4
        circuit = bernstein_vazirani_circuit(secret, num_bits)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        marginal = input_register_distribution(result, num_bits, circuit.num_qubits)
        assert marginal[secret] == pytest.approx(1.0)

    def test_final_dd_is_linear(self):
        """The BV output is a product state: n + 1 nodes."""
        circuit = bernstein_vazirani_circuit(0b101, 3)
        result = Simulator(algebraic_manager(4)).run(circuit)
        assert result.node_count == 4

    def test_exactness(self):
        assert bernstein_vazirani_circuit(5, 4).is_exactly_representable

    def test_validation(self):
        with pytest.raises(CircuitError):
            bernstein_vazirani_circuit(16, 4)


class TestDeutschJozsa:
    @pytest.mark.parametrize("value", [0, 1])
    def test_constant_returns_all_zero(self, value):
        num_bits = 3
        circuit = deutsch_jozsa_constant_circuit(num_bits, value)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        marginal = input_register_distribution(result, num_bits, circuit.num_qubits)
        assert marginal[0] == pytest.approx(1.0)

    @pytest.mark.parametrize("mask", [1, 0b101, 0b111])
    def test_balanced_never_returns_zero(self, mask):
        num_bits = 3
        circuit = deutsch_jozsa_balanced_circuit(num_bits, mask)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        marginal = input_register_distribution(result, num_bits, circuit.num_qubits)
        assert marginal[0] == pytest.approx(0.0, abs=1e-12)
        assert marginal[mask] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(CircuitError):
            deutsch_jozsa_constant_circuit(3, 2)
        with pytest.raises(CircuitError):
            deutsch_jozsa_balanced_circuit(3, 0)


class TestSimon:
    @pytest.mark.parametrize("period", [1, 2, 3])
    def test_samples_orthogonal_to_period(self, period):
        num_bits = 2
        circuit = simon_circuit(period, num_bits, seed=1)
        result = Simulator(algebraic_manager(circuit.num_qubits)).run(circuit)
        amplitudes = result.final_amplitudes()
        probs = np.abs(amplitudes) ** 2
        marginal = probs.reshape(1 << num_bits, -1).sum(axis=1)
        for y, probability in enumerate(marginal):
            if probability > 1e-12:
                assert bin(y & period).count("1") % 2 == 0

    def test_full_protocol_recovers_period(self):
        num_bits, period = 3, 0b101
        circuit = simon_circuit(period, num_bits, seed=2)
        manager = algebraic_manager(circuit.num_qubits)
        result = Simulator(manager).run(circuit)
        counts = sample_counts(manager, result.state, shots=200, seed=5)
        samples = {index >> num_bits for index in counts}
        candidates = solve_simon_system(samples, num_bits)
        assert candidates == [period]

    def test_validation(self):
        with pytest.raises(CircuitError):
            simon_circuit(0, 3)
        with pytest.raises(CircuitError):
            simon_circuit(8, 3)


class TestSolveSimonSystem:
    def test_underdetermined(self):
        # One sample y=0b01 over 2 bits: both s=0b10 and ... y.s=0:
        candidates = solve_simon_system([0b01], 2)
        assert set(candidates) == {0b10}
        # No samples: every non-zero s is a candidate.
        assert len(solve_simon_system([], 2)) == 3

    def test_fully_determined(self):
        # Samples spanning the orthogonal complement of s = 0b110.
        candidates = solve_simon_system([0b110, 0b001], 3)
        assert candidates == [0b110]
