"""Tests for the ripple-carry and QFT adders."""

import numpy as np
import pytest

from repro.algorithms.arithmetic import (
    cuccaro_adder,
    decode_cuccaro,
    decode_draper,
    draper_adder,
    encode_cuccaro,
    encode_draper,
)
from repro.approx.clifford_t import approximate_circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator


def run_on_basis(manager, circuit, index):
    simulator = Simulator(manager)
    start = manager.basis_state(index)
    return simulator.run(circuit, initial_state=start)


class TestCuccaroAdder:
    @pytest.mark.parametrize("num_bits", [1, 2, 3])
    def test_exhaustive_addition(self, num_bits):
        """Every (a, b) pair adds correctly mod 2^n, exactly."""
        circuit = cuccaro_adder(num_bits)
        manager = algebraic_manager(circuit.num_qubits)
        simulator = Simulator(manager)
        for a in range(1 << num_bits):
            for b in range(1 << num_bits):
                start = manager.basis_state(encode_cuccaro(a, b, num_bits))
                state = simulator.run(circuit, initial_state=start).state
                dense = manager.to_statevector(state)
                outcomes = np.nonzero(np.abs(dense) > 1e-12)[0]
                assert len(outcomes) == 1  # classical reversible circuit
                a_out, b_out, carry = decode_cuccaro(int(outcomes[0]), num_bits)
                assert a_out == a                  # a register preserved
                assert b_out == (a + b) % (1 << num_bits)
                assert carry == 0                  # ancilla restored

    def test_exactly_representable(self):
        assert cuccaro_adder(4).is_exactly_representable

    def test_classical_circuit_has_single_path_dd(self):
        """A permutation applied to a basis state stays a basis state --
        the DD remains a single path."""
        num_bits = 3
        circuit = cuccaro_adder(num_bits)
        manager = algebraic_manager(circuit.num_qubits)
        result = run_on_basis(manager, circuit, encode_cuccaro(5, 6, num_bits))
        assert result.node_count == circuit.num_qubits

    def test_validation(self):
        with pytest.raises(CircuitError):
            cuccaro_adder(0)


class TestDraperAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (5, 7), (6, 3)])
    def test_addition_numeric(self, a, b):
        num_bits = 3
        circuit = draper_adder(num_bits)
        manager = numeric_manager(circuit.num_qubits, eps=1e-12)
        result = run_on_basis(manager, circuit, encode_draper(a, b, num_bits))
        dense = result.final_amplitudes()
        winner = int(np.argmax(np.abs(dense)))
        assert abs(dense[winner]) == pytest.approx(1.0, abs=1e-9)
        a_out, b_out = decode_draper(winner, num_bits)
        assert a_out == a
        assert b_out == (a + b) % (1 << num_bits)

    def test_three_bit_adder_is_exact(self):
        """Up to 3 bits all phases are multiples of pi/4."""
        assert draper_adder(2).is_exactly_representable
        assert draper_adder(3).is_exactly_representable

    def test_four_bit_adder_needs_approximation(self):
        """4 bits introduce pi/8 phases -- outside D[omega]."""
        assert not draper_adder(4).is_exactly_representable

    def test_adders_agree(self):
        """Cross-verification: both adders produce the same b register."""
        num_bits = 2
        dra = draper_adder(num_bits)
        cuc = cuccaro_adder(num_bits)
        manager_d = algebraic_manager(dra.num_qubits)  # exact at 2 bits
        manager_c = algebraic_manager(cuc.num_qubits)
        for a in range(4):
            for b in range(4):
                res_d = run_on_basis(manager_d, dra, encode_draper(a, b, num_bits))
                dense = res_d.final_amplitudes()
                winner_d = int(np.argmax(np.abs(dense)))
                res_c = run_on_basis(manager_c, cuc, encode_cuccaro(a, b, num_bits))
                dense_c = manager_c.to_statevector(res_c.state)
                winner_c = int(np.nonzero(np.abs(dense_c) > 1e-12)[0][0])
                assert decode_draper(winner_d, num_bits)[1] == decode_cuccaro(
                    winner_c, num_bits
                )[1]

    def test_compiled_draper_runs_algebraically(self):
        """The paper pipeline on an arithmetic workload: approximate the
        3-bit Draper adder with Clifford+T and simulate exactly."""
        circuit = draper_adder(4)
        compiled = approximate_circuit(circuit, max_words=2000, max_length=18)
        assert compiled.is_exactly_representable
        manager = algebraic_manager(circuit.num_qubits)
        result = run_on_basis(manager, compiled, encode_draper(6, 7, 4))
        dense = result.final_amplitudes()
        winner = int(np.argmax(np.abs(dense)))
        # Coarse approximation: the correct sum still dominates.
        assert decode_draper(winner, 4)[1] == 13
        assert abs(dense[winner]) ** 2 > 0.5
