"""Tests for the repro.api facade: config validation, run, deprecation."""

import warnings

import pytest

import repro
from repro import Circuit
from repro.api import (
    RunRequest,
    RunResult,
    SANITIZE_MODES,
    SYSTEMS,
    SimulatorConfig,
    make_simulator,
    run,
)
from repro.dd.manager import algebraic_manager
from repro.errors import ConfigError, SimulationError
from repro.sim.simulator import Simulator


def bell(num_qubits: int = 2) -> Circuit:
    circuit = Circuit(num_qubits, name=f"bell{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


class TestSimulatorConfig:
    def test_defaults_are_valid(self):
        config = SimulatorConfig()
        assert config.system == "algebraic"
        assert config.label == "algebraic"

    def test_numeric_label_carries_eps(self):
        assert SimulatorConfig(system="numeric", eps=1e-5).label == "eps=1e-05"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"system": "bogus"},
            {"sanitize": "sometimes"},
            {"telemetry": "loud"},
            {"normalization": "rightmost"},
            {"precision": "quad"},
            {"eps": -1.0},
            {"gc": 0},
            {"max_nodes": 0},
            {"max_bytes": -5},
        ],
    )
    def test_validation_is_eager(self, kwargs):
        with pytest.raises(ConfigError):
            SimulatorConfig(**kwargs)

    def test_frozen_and_hashable(self):
        config = SimulatorConfig()
        with pytest.raises(Exception):
            config.system = "numeric"
        assert config in {config}

    def test_with_updates_revalidates(self):
        config = SimulatorConfig().with_updates(system="numeric", eps=1e-6)
        assert config.eps == 1e-6
        with pytest.raises(ConfigError):
            config.with_updates(eps=-1.0)

    def test_memory_config_shapes(self):
        assert SimulatorConfig().memory_config() is None
        gc_only = SimulatorConfig(gc=500).memory_config()
        assert gc_only is not None and gc_only.enabled and gc_only.threshold == 500
        budget_only = SimulatorConfig(max_nodes=100).memory_config()
        assert budget_only is not None and not budget_only.enabled
        assert budget_only.budget.max_nodes == 100

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_create_simulator_runs_every_system(self, system):
        config = SimulatorConfig(system=system, eps=1e-10)
        result = config.create_simulator(2).run(bell())
        assert result.node_count >= 1

    @pytest.mark.parametrize("mode", SANITIZE_MODES)
    def test_sanitize_modes_accepted(self, mode):
        simulator = SimulatorConfig(sanitize=mode).create_simulator(2)
        simulator.run(bell())
        assert (simulator.sanitizer is None) == (mode == "off")


class TestRun:
    def test_run_returns_transportable_result(self):
        result = run(RunRequest(bell()))
        assert isinstance(result, RunResult)
        assert result.label == "bell2/algebraic"
        assert result.num_gates == 2
        assert not result.is_zero_state
        assert result.metrics  # telemetry snapshot rode along
        manager, state = result.restore_state()
        assert manager.node_count(state) == result.node_count

    def test_error_reference_fills_error_series(self):
        request = RunRequest(
            bell(),
            SimulatorConfig(system="numeric", eps=1e-8),
            error_reference=SimulatorConfig(system="algebraic"),
        )
        result = run(request)
        assert result.final_error is not None and result.final_error < 1e-6
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)
        errors = [e for e in result.trace.errors() if e is not None]
        assert len(errors) == result.num_gates

    def test_to_dict_is_json_ready(self):
        import json

        payload = json.dumps(run(RunRequest(bell())).to_dict())
        assert "state_payload" in payload


class TestDeprecation:
    def test_plain_construction_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Simulator(algebraic_manager(2))

    def test_loose_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="SimulatorConfig"):
            Simulator(algebraic_manager(2), sanitize="check-on-root")

    def test_config_and_loose_kwargs_conflict(self):
        with pytest.raises(SimulationError):
            Simulator(
                algebraic_manager(2),
                config=SimulatorConfig(),
                use_apply_kernel=False,
            )

    def test_config_path_wires_sanitizer_and_gc(self):
        config = SimulatorConfig(sanitize="check-on-root", gc=100)
        simulator = make_simulator(config.create_manager(2), config)
        assert simulator.sanitizer is not None
        simulator.run(bell())


class TestReExports:
    def test_facade_names_on_the_package_root(self):
        assert repro.SimulatorConfig is SimulatorConfig
        assert repro.RunRequest is RunRequest
        assert repro.RunResult is RunResult
        assert repro.run is run
        for name in ("SimulatorConfig", "RunRequest", "RunResult", "run", "run_batch"):
            assert name in repro.__all__
