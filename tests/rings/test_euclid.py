"""Tests for Euclidean division and GCDs in Z[omega]."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ZeroDivisionRingError
from repro.rings.euclid import euclidean_divmod, gcd_many, gcd_zomega
from repro.rings.zomega import ZOmega

small_ints = st.integers(min_value=-30, max_value=30)
zomegas = st.builds(ZOmega, small_ints, small_ints, small_ints, small_ints)
nonzero = zomegas.filter(bool)


class TestEuclideanDivision:
    @given(zomegas, nonzero)
    def test_division_identity(self, z1, z2):
        quotient, remainder = euclidean_divmod(z1, z2)
        assert quotient * z2 + remainder == z1

    @given(zomegas, nonzero)
    def test_remainder_norm_decreases(self, z1, z2):
        _, remainder = euclidean_divmod(z1, z2)
        assert remainder.euclidean_norm() < z2.euclidean_norm()

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            euclidean_divmod(ZOmega.one(), ZOmega.zero())

    def test_exact_quotient_has_zero_remainder(self):
        z2 = ZOmega(1, 2, 3, 4)
        product = z2 * ZOmega(0, 0, 1, 1)
        quotient, remainder = euclidean_divmod(product, z2)
        assert remainder.is_zero()
        assert quotient == ZOmega(0, 0, 1, 1)

    def test_paper_bound_on_typical_inputs(self):
        # E(r) <= (9/16) E(z2) for nearest-integer rounding (Section IV-B).
        z1 = ZOmega(5, -3, 2, 7)
        z2 = ZOmega(1, 1, 0, 2)
        _, remainder = euclidean_divmod(z1, z2)
        assert 16 * remainder.euclidean_norm() <= 9 * z2.euclidean_norm()


class TestGcd:
    @given(nonzero, nonzero)
    @settings(deadline=None)
    def test_gcd_divides_both(self, z1, z2):
        g = gcd_zomega(z1, z2)
        assert g.divides(z1)
        assert g.divides(z2)

    @given(nonzero, nonzero, nonzero)
    @settings(deadline=None)
    def test_common_factor_detected(self, factor, z1, z2):
        g = gcd_zomega(factor * z1, factor * z2)
        # gcd is only defined up to units, so check divisibility instead
        # of equality: factor must divide the gcd.
        assert factor.divides(g)

    def test_gcd_with_zero(self):
        z = ZOmega(1, 2, 3, 4)
        assert gcd_zomega(z, ZOmega.zero()) == z
        assert gcd_zomega(ZOmega.zero(), z) == z
        assert gcd_zomega(ZOmega.zero(), ZOmega.zero()).is_zero()

    def test_coprime_elements_give_unit(self):
        g = gcd_zomega(ZOmega.from_int(3), ZOmega.from_int(5))
        assert g.is_unit()

    def test_gcd_many(self):
        factor = ZOmega(0, 0, 1, 2)
        elements = [factor * ZOmega.from_int(n) for n in (2, 3, 5)]
        g = gcd_many(*elements)
        assert factor.divides(g)
        assert all(g.divides(element) for element in elements)

    def test_gcd_many_empty(self):
        assert gcd_many().is_zero()

    @given(nonzero)
    def test_gcd_self(self, z):
        g = gcd_zomega(z, z)
        assert g.divides(z)
        assert z.divides(g)
