"""Tests for the dyadic cyclotomic ring D[omega] (paper Section IV-A/B)."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InexactDivisionError, ZeroDivisionRingError
from repro.rings.domega import DOmega
from repro.rings.zomega import ZOmega

small_ints = st.integers(min_value=-20, max_value=20)
exponents = st.integers(min_value=-6, max_value=6)
domegas = st.builds(DOmega.from_coefficients, small_ints, small_ints, small_ints, small_ints, exponents)
nonzero = domegas.filter(bool)

# Unit generators of D[omega] (paper Section IV-B): 1/sqrt2, omega, omega +- 1.
units = st.sampled_from(
    [
        DOmega.one_over_sqrt2(),
        DOmega.sqrt2_power(1),
        DOmega.omega_power(1),
        DOmega.omega_power(3),
        DOmega.from_int(-1),
        DOmega.from_coefficients(0, 0, 1, 1),  # omega + 1
        DOmega.from_coefficients(0, 0, 1, -1),  # omega - 1
    ]
)


class TestAlgorithm1CanonicalForm:
    """The constructor realises the paper's Algorithm 1."""

    def test_example_6_and_7_sqrt2(self):
        # sqrt2 = (0,0,0,1) with k = -1 is the canonical representative;
        # the k = 0 representation -w^3 + w must reduce to it.
        via_k0 = DOmega.from_coefficients(-1, 0, 1, 0, k=0)
        assert via_k0.key() == (0, 0, 0, 1, -1)

    def test_example_6_k1_representation(self):
        # (0w^3 + 0w^2 + 0w + 2)/sqrt2^1 also equals sqrt2.
        assert DOmega.from_coefficients(0, 0, 0, 2, k=1).key() == (0, 0, 0, 1, -1)

    def test_zero_is_all_zero(self):
        assert DOmega.from_coefficients(0, 0, 0, 0, k=5).key() == (0, 0, 0, 0, 0)

    @given(domegas)
    def test_minimality_criterion(self, x):
        """Canonical numerators violate the divisibility parity criterion."""
        if x.is_zero():
            assert x.key() == (0, 0, 0, 0, 0)
        else:
            assert not x.zeta.divisible_by_sqrt2()

    @given(domegas, st.integers(min_value=0, max_value=5))
    def test_representation_independence(self, x, extra):
        """Scaling numerator and denominator by sqrt2^extra is a no-op."""
        scaled_zeta = x.zeta
        for _ in range(extra):
            scaled_zeta = scaled_zeta.mul_sqrt2()
        assert DOmega(scaled_zeta, x.k + extra) == x

    @given(domegas)
    def test_value_preserved_by_canonicalisation(self, x):
        value = x.zeta.to_complex() * math.sqrt(2) ** (-x.k)
        assert cmath.isclose(x.to_complex(), value, abs_tol=1e-6)


class TestArithmetic:
    @given(domegas, domegas)
    def test_add_matches_complex(self, x, y):
        assert cmath.isclose(
            (x + y).to_complex(), x.to_complex() + y.to_complex(), abs_tol=1e-5
        )

    @given(domegas, domegas)
    def test_mul_matches_complex(self, x, y):
        assert cmath.isclose(
            (x * y).to_complex(), x.to_complex() * y.to_complex(),
            abs_tol=1e-4, rel_tol=1e-7,
        )

    @given(domegas, domegas, domegas)
    def test_ring_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x * y == y * x
        assert x * (y + z) == x * y + x * z

    @given(domegas)
    def test_sub_and_neg(self, x):
        assert (x - x).is_zero()
        assert -(-x) == x

    def test_hadamard_entry(self):
        # 1/sqrt2 * 1/sqrt2 = 1/2
        half = DOmega.one_over_sqrt2() * DOmega.one_over_sqrt2()
        assert half == DOmega.from_coefficients(0, 0, 0, 1, k=2)

    def test_omega_eighth_root(self):
        assert DOmega.omega_power(1) ** 8 == DOmega.one()

    @given(domegas)
    def test_conj_matches_complex(self, x):
        assert cmath.isclose(x.conj().to_complex(), x.to_complex().conjugate(), abs_tol=1e-6)

    @given(domegas)
    def test_abs_squared_real_nonnegative(self, x):
        squared = x.abs_squared()
        value = squared.to_complex()
        assert abs(value.imag) < 1e-6
        assert value.real >= -1e-9


class TestUnits:
    @given(units)
    def test_generators_are_units(self, u):
        assert u.is_unit()

    @given(units)
    def test_unit_inverse(self, u):
        assert u * u.unit_inverse() == DOmega.one()

    def test_three_is_not_a_unit(self):
        assert not DOmega.from_int(3).is_unit()
        with pytest.raises(InexactDivisionError):
            DOmega.from_int(3).unit_inverse()

    def test_zero_is_not_a_unit(self):
        assert not DOmega.zero().is_unit()

    @given(units, units)
    def test_unit_products_are_units(self, u1, u2):
        assert (u1 * u2).is_unit()


class TestDivision:
    @given(domegas, nonzero)
    @settings(deadline=None)
    def test_product_roundtrip(self, x, y):
        assert (x * y).exact_divide(y) == x

    def test_odd_integer_division_fails(self):
        # Paper Section IV-B: odd integers >= 3 have no inverse in D[omega].
        with pytest.raises(InexactDivisionError):
            DOmega.one().exact_divide(DOmega.from_int(3))

    def test_zero_divisor(self):
        with pytest.raises(ZeroDivisionRingError):
            DOmega.one().exact_divide(DOmega.zero())

    def test_division_by_sqrt2_is_exact(self):
        # Unlike Z[i, sqrt2], the ring contains 1/sqrt2 (paper footnote 4).
        quotient = DOmega.one().exact_divide(DOmega.sqrt2_power(1))
        assert quotient == DOmega.one_over_sqrt2()


class TestGcd:
    @given(st.lists(nonzero, min_size=1, max_size=4))
    @settings(deadline=None, max_examples=40)
    def test_gcd_divides_all(self, elements):
        g = DOmega.gcd(elements)
        assert all(g.divides(element) for element in elements)

    @given(nonzero, st.lists(nonzero, min_size=1, max_size=3))
    @settings(deadline=None, max_examples=40)
    def test_common_factor_divides_gcd(self, factor, elements):
        g = DOmega.gcd([factor * element for element in elements])
        assert factor.divides(g)

    def test_gcd_of_zeros(self):
        assert DOmega.gcd([DOmega.zero(), DOmega.zero()]).is_zero()


class TestCanonicalAssociate:
    """Properties (a)-(c) of the paper's GCD normalisation scheme."""

    @given(nonzero)
    @settings(deadline=None, max_examples=60)
    def test_reconstruction(self, x):
        canonical, unit = x.canonical_associate()
        assert canonical * unit == x
        assert unit.is_unit()

    @given(nonzero)
    @settings(deadline=None, max_examples=60)
    def test_property_a_integral(self, x):
        canonical, _ = x.canonical_associate()
        # k == 0: lies in Z[omega] with all sqrt2 units factored out.
        assert canonical.k == 0

    @given(nonzero, units)
    @settings(deadline=None, max_examples=60)
    def test_uniqueness_on_associates(self, x, u):
        """The hallmark of the scheme: associates normalise identically."""
        assert (x * u).canonical_associate()[0] == x.canonical_associate()[0]

    def test_paper_example_9_norm_reduction(self):
        # Paper Example 9: alpha = 2w^3 + 3w^2 + 2w + 4 has norm
        # 33 + 12 sqrt2 whose derived-pair measure is not minimal; the
        # associate alpha * (omega - 1) has norm 42 - 9 sqrt2 with the
        # minimal derived pair (9, 21).  The canonical associate must
        # reach exactly that norm (up to the sign of v).
        alpha = DOmega.from_coefficients(2, 3, 2, 4)
        canonical, _ = alpha.canonical_associate()
        u_can, v_can = canonical.zeta.norm_zsqrt2()
        assert (abs(u_can), abs(v_can)) == (42, 9)
        # And it is an associate of alpha.
        assert canonical.divides(alpha) and alpha.divides(canonical)

    def test_zero(self):
        canonical, unit = DOmega.zero().canonical_associate()
        assert canonical.is_zero()
        assert unit == DOmega.one()


class TestMetrics:
    def test_max_bit_width(self):
        assert DOmega.from_int(1023).max_bit_width() == 10
        assert DOmega.zero().max_bit_width() == 0

    @given(domegas)
    def test_hash_equal_for_equal(self, x):
        clone = DOmega(x.zeta, x.k)
        assert hash(clone) == hash(x)
