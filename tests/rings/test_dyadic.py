"""Tests for canonical dyadic fractions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InexactDivisionError, ZeroDivisionRingError
from repro.rings.dyadic import Dyadic

dyadics = st.builds(
    Dyadic,
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=0, max_value=12),
)


class TestCanonicalForm:
    def test_zero_normalises(self):
        assert Dyadic(0, 7).pair() == (0, 0)

    def test_even_numerator_reduces(self):
        assert Dyadic(4, 2).pair() == (1, 0)
        assert Dyadic(6, 1).pair() == (3, 0)

    def test_negative_exponent_scales_up(self):
        assert Dyadic(3, -2).pair() == (12, 0)

    @given(dyadics)
    def test_canonical_invariant(self, x):
        numerator, exponent = x.pair()
        assert exponent >= 0
        # Canonical: the fraction is fully reduced -- an even numerator
        # only survives with exponent 0 (plain even integers).
        assert numerator % 2 == 1 or exponent == 0

    @given(dyadics)
    def test_equality_respects_value(self, x):
        doubled = Dyadic(x.numerator * 2, x.exponent + 1)
        assert doubled == x
        assert hash(doubled) == hash(x)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Dyadic(0.5)


class TestArithmetic:
    @given(dyadics, dyadics)
    def test_add_matches_fractions(self, x, y):
        assert (x + y).as_fraction() == x.as_fraction() + y.as_fraction()

    @given(dyadics, dyadics)
    def test_mul_matches_fractions(self, x, y):
        assert (x * y).as_fraction() == x.as_fraction() * y.as_fraction()

    @given(dyadics)
    def test_sub_self_is_zero(self, x):
        assert (x - x).is_zero()

    @given(dyadics)
    def test_int_mixing(self, x):
        assert x + 1 == x + Dyadic.one()
        assert 2 * x == x + x
        assert 1 - x == Dyadic.one() - x

    def test_pow(self):
        half = Dyadic(1, 1)
        assert half**3 == Dyadic(1, 3)
        with pytest.raises(ValueError):
            half**-1

    def test_ordering(self):
        assert Dyadic(1, 2) < Dyadic(1, 1)
        assert Dyadic(1, 1) <= Dyadic(2, 2)


class TestDivision:
    @given(dyadics, dyadics.filter(bool))
    def test_product_roundtrip(self, x, y):
        assert (x * y).exact_divide(y) == x

    def test_inexact_raises(self):
        with pytest.raises(InexactDivisionError):
            Dyadic.one().exact_divide(Dyadic(3))

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            Dyadic.one().exact_divide(Dyadic.zero())

    def test_zero_dividend(self):
        assert Dyadic.zero().exact_divide(Dyadic(5)) == Dyadic.zero()


class TestConversions:
    def test_from_fraction(self):
        assert Dyadic.from_fraction(Fraction(3, 8)) == Dyadic(3, 3)
        with pytest.raises(InexactDivisionError):
            Dyadic.from_fraction(Fraction(1, 3))

    @given(dyadics)
    def test_float_roundtrip(self, x):
        assert x.to_float() == float(x.as_fraction())

    def test_str(self):
        assert str(Dyadic(3)) == "3"
        assert str(Dyadic(3, 2)) == "3/2^2"
