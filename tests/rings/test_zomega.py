"""Unit and property tests for the cyclotomic integer ring Z[omega]."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InexactDivisionError, ZeroDivisionRingError
from repro.rings.zomega import ZOmega

OMEGA = cmath.exp(1j * math.pi / 4)

small_ints = st.integers(min_value=-50, max_value=50)
zomegas = st.builds(ZOmega, small_ints, small_ints, small_ints, small_ints)
nonzero_zomegas = zomegas.filter(bool)


def complex_of(z: ZOmega) -> complex:
    a, b, c, d = z.coefficients()
    return a * OMEGA**3 + b * OMEGA**2 + c * OMEGA + d


class TestConstructionAndBasics:
    def test_zero_and_one(self):
        assert ZOmega.zero().is_zero()
        assert ZOmega.one().is_one()
        assert not ZOmega.zero()
        assert ZOmega.one()

    def test_from_int(self):
        assert ZOmega.from_int(7).coefficients() == (0, 0, 0, 7)
        assert ZOmega.from_int(7).is_rational_integer()

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            ZOmega(1.0, 0, 0, 0)

    def test_immutability(self):
        z = ZOmega(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            z.a = 5

    def test_omega_value(self):
        assert cmath.isclose(ZOmega.omega().to_complex(), OMEGA)

    def test_omega_powers_cycle(self):
        for exponent in range(-8, 16):
            expected = OMEGA**exponent
            assert cmath.isclose(ZOmega.omega_power(exponent).to_complex(), expected, abs_tol=1e-12)

    def test_imag_unit(self):
        assert cmath.isclose(ZOmega.imag_unit().to_complex(), 1j)
        assert ZOmega.imag_unit() == ZOmega.omega() * ZOmega.omega()

    def test_sqrt2_identity(self):
        # sqrt2 = omega - omega^3
        assert ZOmega.sqrt2() == ZOmega.omega() - ZOmega.omega_power(3)
        assert cmath.isclose(ZOmega.sqrt2().to_complex(), math.sqrt(2))

    def test_sqrt2_squared_is_two(self):
        assert ZOmega.sqrt2() * ZOmega.sqrt2() == ZOmega.from_int(2)

    def test_from_gaussian(self):
        assert cmath.isclose(ZOmega.from_gaussian(3, -4).to_complex(), 3 - 4j)

    def test_equality_with_int(self):
        assert ZOmega.from_int(5) == 5
        assert ZOmega(0, 0, 1, 0) != 1

    def test_str_forms(self):
        assert str(ZOmega.zero()) == "0"
        assert str(ZOmega.one()) == "1"
        assert "w^3" in str(ZOmega(1, 0, 0, 0))
        assert str(ZOmega(-1, 0, 1, 0)) == "-w^3 + w"


class TestArithmetic:
    @given(zomegas, zomegas)
    def test_addition_matches_complex(self, x, y):
        assert cmath.isclose(
            complex_of(x + y), complex_of(x) + complex_of(y), abs_tol=1e-9
        )

    @given(zomegas, zomegas)
    def test_multiplication_matches_complex(self, x, y):
        assert cmath.isclose(
            complex_of(x * y), complex_of(x) * complex_of(y), abs_tol=1e-6
        )

    @given(zomegas, zomegas, zomegas)
    def test_ring_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x + y == y + x
        assert (x * y) * z == x * (y * z)
        assert x * y == y * x
        assert x * (y + z) == x * y + x * z

    @given(zomegas)
    def test_additive_inverse(self, x):
        assert (x + (-x)).is_zero()
        assert x - x == ZOmega.zero()

    @given(zomegas)
    def test_identities(self, x):
        assert x + ZOmega.zero() == x
        assert x * ZOmega.one() == x
        assert x * ZOmega.zero() == ZOmega.zero()

    @given(zomegas)
    def test_int_scalar_multiplication(self, x):
        assert x * 3 == x + x + x
        assert 2 * x == x + x

    def test_power(self):
        omega = ZOmega.omega()
        assert omega**8 == ZOmega.one()
        assert omega**4 == ZOmega.from_int(-1)
        assert omega**0 == ZOmega.one()

    def test_power_rejects_negative(self):
        with pytest.raises(ValueError):
            ZOmega.omega() ** -1


class TestConjugationAndNorms:
    @given(zomegas)
    def test_conj_matches_complex(self, x):
        assert cmath.isclose(complex_of(x.conj()), complex_of(x).conjugate(), abs_tol=1e-9)

    @given(zomegas)
    def test_conj_is_involution(self, x):
        assert x.conj().conj() == x

    @given(zomegas, zomegas)
    def test_conj_is_ring_morphism(self, x, y):
        assert (x * y).conj() == x.conj() * y.conj()
        assert (x + y).conj() == x.conj() + y.conj()

    @given(zomegas)
    def test_sqrt2_conj_is_involution(self, x):
        assert x.sqrt2_conj().sqrt2_conj() == x

    @given(zomegas, zomegas)
    def test_sqrt2_conj_is_ring_morphism(self, x, y):
        assert (x * y).sqrt2_conj() == x.sqrt2_conj() * y.sqrt2_conj()

    def test_sqrt2_conj_negates_sqrt2(self):
        assert ZOmega.sqrt2().sqrt2_conj() == -ZOmega.sqrt2()

    @given(zomegas)
    def test_norm_matches_abs_squared(self, x):
        u, v = x.norm_zsqrt2()
        assert math.isclose(u + v * math.sqrt(2), abs(complex_of(x)) ** 2, abs_tol=1e-6)

    def test_paper_typo_documented(self):
        # z = omega^3 + 1 has |z|^2 = 2 - sqrt2, so the cross term must be
        # ab + bc + cd - ad (the paper prints +da).
        z = ZOmega(1, 0, 0, 1)
        assert z.norm_zsqrt2() == (2, -1)

    @given(zomegas, zomegas)
    def test_euclidean_norm_multiplicative(self, x, y):
        assert (x * y).euclidean_norm() == x.euclidean_norm() * y.euclidean_norm()

    @given(nonzero_zomegas)
    def test_euclidean_norm_positive_definite(self, x):
        assert x.euclidean_norm() > 0

    def test_units(self):
        assert ZOmega.one().is_unit()
        assert ZOmega.omega().is_unit()
        assert (-ZOmega.one()).is_unit()
        assert not ZOmega.from_int(3).is_unit()
        assert not ZOmega.sqrt2().is_unit()  # E(sqrt2) = 4
        assert not ZOmega.zero().is_unit()

    def test_omega_plus_minus_one_norms(self):
        # These generate the non-torsion units of D[omega] (E = 2).
        assert ZOmega(0, 0, 1, 1).euclidean_norm() == 2
        assert ZOmega(0, 0, 1, -1).euclidean_norm() == 2


class TestSqrt2Divisibility:
    def test_sqrt2_divides_two(self):
        two = ZOmega.from_int(2)
        assert two.divisible_by_sqrt2()
        assert two.divide_by_sqrt2() == ZOmega.sqrt2()

    def test_one_not_divisible(self):
        assert not ZOmega.one().divisible_by_sqrt2()
        with pytest.raises(InexactDivisionError):
            ZOmega.one().divide_by_sqrt2()

    @given(zomegas)
    def test_mul_then_divide_roundtrip(self, x):
        assert x.mul_sqrt2().divide_by_sqrt2() == x

    @given(zomegas)
    def test_mul_sqrt2_matches_multiplication(self, x):
        assert x.mul_sqrt2() == x * ZOmega.sqrt2()

    @given(zomegas)
    def test_divisibility_criterion_consistent(self, x):
        # Whenever the parity criterion says divisible, the division must
        # reconstruct exactly.
        if x.divisible_by_sqrt2():
            assert x.divide_by_sqrt2().mul_sqrt2() == x


class TestExactDivision:
    @given(zomegas, nonzero_zomegas)
    def test_product_division_roundtrip(self, x, y):
        assert (x * y).exact_divide(y) == x

    def test_inexact_division_raises(self):
        with pytest.raises(InexactDivisionError):
            ZOmega.one().exact_divide(ZOmega.from_int(3))

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            ZOmega.one().exact_divide(ZOmega.zero())

    @given(nonzero_zomegas, nonzero_zomegas)
    def test_divides_predicate(self, x, y):
        assert y.divides(x * y)

    def test_zero_divides_only_zero(self):
        assert ZOmega.zero().divides(ZOmega.zero())
        assert not ZOmega.zero().divides(ZOmega.one())


class TestMisc:
    @given(zomegas)
    def test_hash_consistency(self, x):
        clone = ZOmega(*x.coefficients())
        assert hash(x) == hash(clone)
        assert x == clone

    def test_content(self):
        assert ZOmega(2, 4, 6, 8).content() == 2
        assert ZOmega.zero().content() == 0
        assert ZOmega(3, 0, 0, 5).content() == 1

    def test_max_bit_width(self):
        assert ZOmega.zero().max_bit_width() == 0
        assert ZOmega.from_int(255).max_bit_width() == 8
        assert ZOmega(-1024, 0, 0, 1).max_bit_width() == 11

    def test_is_real(self):
        assert ZOmega.sqrt2().is_real()
        assert ZOmega.from_int(5).is_real()
        assert not ZOmega.imag_unit().is_real()
        assert not ZOmega.omega().is_real()

    @given(zomegas)
    def test_iteration_yields_coefficients(self, x):
        assert tuple(x) == x.coefficients()
