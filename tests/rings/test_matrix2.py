"""Tests for exact 2x2 matrices over D[omega]."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RingError
from repro.rings.domega import DOmega
from repro.rings.matrix2 import Matrix2

small_ints = st.integers(min_value=-3, max_value=3)
domegas = st.builds(
    DOmega.from_coefficients, small_ints, small_ints, small_ints, small_ints,
    st.integers(min_value=0, max_value=3),
)
matrices = st.builds(Matrix2, domegas, domegas, domegas, domegas)

GATES = [Matrix2.hadamard(), Matrix2.t_gate(), Matrix2.s_gate(), Matrix2.x_gate()]


def dense(matrix):
    return np.array(matrix.to_complex_tuple()).reshape(2, 2)


class TestBasics:
    def test_identity(self):
        identity = Matrix2.identity()
        np.testing.assert_allclose(dense(identity), np.eye(2))

    def test_rejects_non_domega(self):
        with pytest.raises(TypeError):
            Matrix2(1, 0, 0, 1)

    def test_immutable(self):
        matrix = Matrix2.identity()
        with pytest.raises(AttributeError):
            matrix.a = DOmega.zero()

    @pytest.mark.parametrize("gate", GATES)
    def test_named_gates_unitary(self, gate):
        assert gate.is_unitary()

    def test_from_rows(self):
        matrix = Matrix2.from_rows(
            [[DOmega.one(), DOmega.zero()], [DOmega.zero(), DOmega.one()]]
        )
        assert matrix == Matrix2.identity()

    def test_omega_phase(self):
        phase = Matrix2.omega_phase(2)  # i * I
        np.testing.assert_allclose(dense(phase), 1j * np.eye(2), atol=1e-12)


class TestAlgebra:
    @given(matrices, matrices)
    @settings(max_examples=40)
    def test_matmul_matches_dense(self, x, y):
        np.testing.assert_allclose(
            dense(x @ y), dense(x) @ dense(y), atol=1e-5, rtol=1e-6
        )

    @given(matrices)
    @settings(max_examples=40)
    def test_dagger_matches_dense(self, x):
        np.testing.assert_allclose(dense(x.dagger()), dense(x).conj().T, atol=1e-7)

    @given(matrices)
    @settings(max_examples=40)
    def test_det_matches_dense(self, x):
        assert abs(x.det().to_complex() - np.linalg.det(dense(x))) < 1e-4

    def test_scalar_multiplication(self):
        scaled = Matrix2.identity() * DOmega.from_int(3)
        assert scaled.a == DOmega.from_int(3)

    def test_power(self):
        assert Matrix2.t_gate().power(8) == Matrix2.identity()
        assert Matrix2.t_gate().power(2) == Matrix2.s_gate()
        with pytest.raises(RingError):
            Matrix2.t_gate().power(-1)

    def test_hadamard_involution(self):
        h = Matrix2.hadamard()
        assert h @ h == Matrix2.identity()


class TestUnitarity:
    def test_non_unitary_detected(self):
        matrix = Matrix2(DOmega.from_int(2), DOmega.zero(), DOmega.zero(), DOmega.one())
        assert not matrix.is_unitary()

    @pytest.mark.parametrize("gate", GATES)
    def test_products_of_gates_unitary(self, gate):
        assert (gate @ Matrix2.hadamard() @ Matrix2.t_gate()).is_unitary()


class TestSde:
    def test_identity_sde_zero(self):
        assert Matrix2.identity().sde() == 0

    def test_hadamard_sde_one(self):
        assert Matrix2.hadamard().sde() == 1
        assert Matrix2.hadamard().column_sde(0) == 1
        assert Matrix2.hadamard().column_sde(1) == 1

    def test_sde_grows_with_t_layers(self):
        matrix = Matrix2.identity()
        for _ in range(4):
            matrix = Matrix2.hadamard() @ Matrix2.t_gate() @ matrix
        assert matrix.sde() >= 2

    def test_column_validation(self):
        with pytest.raises(ValueError):
            Matrix2.identity().column_sde(2)

    def test_unitary_columns_have_equal_sde(self):
        """For an exact unitary the second column is a unit multiple of
        the conjugate-reversed first column, so the sdes agree."""
        matrix = Matrix2.hadamard() @ Matrix2.t_gate() @ Matrix2.hadamard()
        assert matrix.column_sde(0) == matrix.column_sde(1)


class TestHashing:
    def test_equal_matrices_equal_hash(self):
        a = Matrix2.hadamard() @ Matrix2.t_gate()
        b = Matrix2.hadamard() @ Matrix2.t_gate()
        assert a == b and hash(a) == hash(b)

    def test_key_distinguishes(self):
        assert Matrix2.t_gate().key() != Matrix2.s_gate().key()
