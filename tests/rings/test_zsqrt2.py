"""Tests for the real quadratic ring Z[sqrt2] and its unit reduction."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ZeroDivisionRingError
from repro.rings.zsqrt2 import ZSqrt2, unit_reduce

small_ints = st.integers(min_value=-100, max_value=100)
zsqrt2s = st.builds(ZSqrt2, small_ints, small_ints)
nonzero = zsqrt2s.filter(bool)

SQRT2 = math.sqrt(2)


def value_of(x: ZSqrt2) -> float:
    return x.u + x.v * SQRT2


class TestBasics:
    def test_constants(self):
        assert ZSqrt2.zero().is_zero()
        assert ZSqrt2.one() == ZSqrt2(1, 0)
        assert math.isclose(ZSqrt2.sqrt2().to_float(), SQRT2)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            ZSqrt2(1.5, 0)

    def test_immutable(self):
        x = ZSqrt2(1, 2)
        with pytest.raises(AttributeError):
            x.u = 3

    def test_sqrt2_squares_to_two(self):
        assert ZSqrt2.sqrt2() * ZSqrt2.sqrt2() == ZSqrt2(2, 0)

    def test_int_comparison(self):
        assert ZSqrt2(4, 0) == 4
        assert ZSqrt2(4, 1) != 4

    def test_str(self):
        assert str(ZSqrt2(3, 0)) == "3"
        assert str(ZSqrt2(0, 2)) == "2*sqrt2"
        assert str(ZSqrt2(1, -1)) == "1 - 1*sqrt2"


class TestArithmetic:
    @given(zsqrt2s, zsqrt2s)
    def test_add_mul_match_floats(self, x, y):
        assert math.isclose(value_of(x + y), value_of(x) + value_of(y), abs_tol=1e-7)
        assert math.isclose(value_of(x * y), value_of(x) * value_of(y), abs_tol=1e-4)

    @given(zsqrt2s, zsqrt2s, zsqrt2s)
    def test_ring_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x * y == y * x
        assert x * (y + z) == x * y + x * z

    @given(zsqrt2s)
    def test_neg_and_sub(self, x):
        assert (x - x).is_zero()
        assert x + (-x) == ZSqrt2.zero()

    def test_pow(self):
        lam = ZSqrt2.fundamental_unit()
        assert lam**2 == ZSqrt2(3, 2)
        assert lam**0 == ZSqrt2.one()


class TestNormAndUnits:
    @given(zsqrt2s, zsqrt2s)
    def test_norm_multiplicative(self, x, y):
        assert (x * y).norm() == x.norm() * y.norm()

    @given(zsqrt2s)
    def test_norm_via_conjugate(self, x):
        assert x * x.conj() == ZSqrt2(x.norm(), 0)

    def test_fundamental_unit_norm(self):
        assert ZSqrt2.fundamental_unit().norm() == -1
        assert ZSqrt2.fundamental_unit().is_unit()

    def test_non_units(self):
        assert not ZSqrt2(3, 0).is_unit()
        assert not ZSqrt2.sqrt2().is_unit()  # norm -2

    @given(nonzero)
    def test_inverse_as_fractions(self, x):
        if x.norm() == 0:
            return
        u, v = x.inverse_as_fractions()
        inverse_value = float(u) + float(v) * SQRT2
        assert math.isclose(inverse_value * value_of(x), 1.0, abs_tol=1e-6)

    def test_inverse_of_zero_norm_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            ZSqrt2(0, 0).inverse_as_fractions()


class TestUnitReduce:
    @given(zsqrt2s)
    def test_reduction_reconstructs(self, x):
        reduced, exponent = unit_reduce(x)
        lam = ZSqrt2.fundamental_unit()
        if exponent >= 0:
            assert reduced * lam**exponent == x
        else:
            # x * lam**(-exponent) == reduced
            assert x * lam ** (-exponent) == reduced

    @given(nonzero)
    def test_reduction_is_minimal_locally(self, x):
        reduced, _ = unit_reduce(x)
        lam = ZSqrt2.fundamental_unit()
        inv = ZSqrt2(-1, 1)
        measure = abs(reduced.u) + abs(reduced.v)
        assert abs((reduced * lam).u) + abs((reduced * lam).v) >= measure
        assert abs((reduced * inv).u) + abs((reduced * inv).v) >= measure

    @given(nonzero, st.integers(min_value=-5, max_value=5))
    def test_reduction_canonical_on_associates(self, x, shift):
        """Associates by unit powers reduce to the same representative."""
        lam = ZSqrt2.fundamental_unit()
        inv = ZSqrt2(-1, 1)
        associate = x
        for _ in range(abs(shift)):
            associate = associate * (lam if shift > 0 else inv)
        assert unit_reduce(associate)[0] == unit_reduce(x)[0]

    def test_zero(self):
        assert unit_reduce(ZSqrt2.zero()) == (ZSqrt2.zero(), 0)
