"""Tests for the cyclotomic field Q[omega] (paper Section IV-B, option 1)."""

import cmath
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InexactDivisionError, ZeroDivisionRingError
from repro.rings.domega import DOmega
from repro.rings.qomega import QOmega
from repro.rings.zomega import ZOmega

small_ints = st.integers(min_value=-15, max_value=15)
exponents = st.integers(min_value=-4, max_value=4)
denominators = st.integers(min_value=1, max_value=30)
qomegas = st.builds(
    lambda a, b, c, d, k, e: QOmega(ZOmega(a, b, c, d), k, e),
    small_ints, small_ints, small_ints, small_ints, exponents, denominators,
)
nonzero = qomegas.filter(bool)


class TestCanonicalForm:
    def test_zero(self):
        assert QOmega(ZOmega.zero(), 3, 7).key() == (0, 0, 0, 0, 0, 1)

    def test_negative_denominator_folds_sign(self):
        x = QOmega(ZOmega.one(), 0, -3)
        assert x.e == 3
        assert x.zeta == ZOmega.from_int(-1)

    def test_even_denominator_folds_into_k(self):
        # 1/6 = 1/(sqrt2^2 * 3)
        x = QOmega(ZOmega.one(), 0, 6)
        assert x.e == 3
        assert x.k == 2

    def test_content_reduction(self):
        # 3/3 = 1
        assert QOmega(ZOmega.from_int(3), 0, 3).is_one()
        # 6/9 = 2/3
        x = QOmega(ZOmega.from_int(6), 0, 9)
        assert x.zeta == ZOmega.from_int(1) and x.e == 3 and x.k == -2

    @given(qomegas)
    def test_canonical_invariants(self, x):
        assert x.e > 0
        assert x.e % 2 == 1
        if x.is_zero():
            assert x.key() == (0, 0, 0, 0, 0, 1)
        else:
            assert not x.zeta.divisible_by_sqrt2()
            assert math.gcd(x.zeta.content(), x.e) == 1

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            QOmega(ZOmega.one(), 0, 0)

    @given(qomegas, st.integers(min_value=1, max_value=9).filter(lambda n: n % 2 == 1))
    def test_scaling_invariance(self, x, scale):
        assert QOmega(x.zeta * scale, x.k, x.e * scale) == x


class TestFieldArithmetic:
    @given(qomegas, qomegas)
    def test_add_matches_complex(self, x, y):
        assert cmath.isclose(
            (x + y).to_complex(), x.to_complex() + y.to_complex(),
            abs_tol=1e-5, rel_tol=1e-6,
        )

    @given(qomegas, qomegas)
    def test_mul_matches_complex(self, x, y):
        assert cmath.isclose(
            (x * y).to_complex(), x.to_complex() * y.to_complex(),
            abs_tol=1e-5, rel_tol=1e-6,
        )

    @given(qomegas, qomegas, qomegas)
    @settings(max_examples=60)
    def test_field_axioms(self, x, y, z):
        assert (x + y) + z == x + (y + z)
        assert x * y == y * x
        assert x * (y + z) == x * y + x * z

    @given(nonzero)
    def test_inverse(self, x):
        assert x * x.inverse() == QOmega.one()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionRingError):
            QOmega.zero().inverse()

    def test_paper_example_8(self):
        # z = 1 + i sqrt2 has N(z) = 3 and z^{-1} = (1 - i sqrt2)/3.
        z = QOmega.from_int(1) + QOmega.imag_unit() * QOmega.one_over_sqrt2(-1)
        inverse = z.inverse()
        expected = (QOmega.from_int(1) - QOmega.imag_unit() * QOmega.one_over_sqrt2(-1)) / QOmega.from_int(3)
        assert inverse == expected
        assert inverse.e == 3

    @given(nonzero, nonzero)
    def test_division(self, x, y):
        assert (x / y) * y == x

    @given(nonzero)
    def test_negative_powers(self, x):
        assert x**-2 == (x.inverse()) ** 2
        assert x**0 == QOmega.one()

    @given(qomegas)
    def test_conj_multiplicativity(self, x):
        assert x.conj().conj() == x
        squared = x.abs_squared()
        value = squared.to_complex()
        assert abs(value.imag) < 1e-6 and value.real >= -1e-9


class TestConversions:
    @given(
        st.builds(DOmega.from_coefficients, small_ints, small_ints, small_ints, small_ints, exponents)
    )
    def test_domega_roundtrip(self, d):
        q = QOmega.from_domega(d)
        assert q.is_domega()
        assert q.to_domega() == d

    def test_non_dyadic_to_domega_raises(self):
        third = QOmega.from_rational(1, 3)
        assert not third.is_domega()
        with pytest.raises(InexactDivisionError):
            third.to_domega()

    def test_from_rational(self):
        assert QOmega.from_rational(2, 4) == QOmega(ZOmega.one(), 2, 1)

    def test_to_complex_huge_values_do_not_overflow(self):
        big = QOmega(ZOmega.from_int(1), -4000, 1)  # sqrt2^4000 / e cancels below
        ratio = big * QOmega(ZOmega.from_int(1), 4000, 3)
        assert cmath.isclose(ratio.to_complex(), 1 / 3, rel_tol=1e-9)
        # A genuinely huge-coefficient value over a huge denominator:
        value = QOmega(ZOmega.from_int(3**600 + 1), 0, 3**600)
        assert cmath.isclose(value.to_complex(), 1.0, rel_tol=1e-9)

    def test_bit_width_metrics(self):
        x = QOmega(ZOmega.from_int(5), 0, 257)
        assert x.denominator_bit_width() == 9
        assert x.max_bit_width() == 9


class TestDisplay:
    def test_repr_round_trips(self):
        x = QOmega(ZOmega(1, -2, 3, -4), 3, 5)
        assert eval(repr(x)) == x

    def test_str_contains_denominator(self):
        text = str(QOmega(ZOmega.one(), 1, 3))
        assert "sqrt2^1" in text and "3" in text
