"""Tests for exact single-qubit Clifford+T synthesis."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RingError
from repro.rings.domega import DOmega
from repro.rings.matrix2 import Matrix2
from repro.synth.exact import SynthesisResult, synthesize_exact, word_to_matrix

words = st.lists(st.sampled_from(["h", "t"]), min_size=0, max_size=50).map(tuple)


class TestWordToMatrix:
    def test_empty_word(self):
        assert word_to_matrix(()) == Matrix2.identity()

    def test_single_gates(self):
        assert word_to_matrix(("h",)) == Matrix2.hadamard()
        assert word_to_matrix(("t",)) == Matrix2.t_gate()

    def test_circuit_order(self):
        # (h, t): h applied first -> matrix = T @ H.
        assert word_to_matrix(("h", "t")) == Matrix2.t_gate() @ Matrix2.hadamard()

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            word_to_matrix(("x",))


class TestRoundtrip:
    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_word_roundtrip(self, word):
        """synthesize(matrix(word)) reproduces the matrix exactly."""
        target = word_to_matrix(word)
        result = synthesize_exact(target)
        assert result.to_matrix() == target

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_long_words(self, seed):
        rng = random.Random(seed)
        word = tuple(rng.choice("ht") for _ in range(150))
        target = word_to_matrix(word)
        result = synthesize_exact(target)
        assert result.to_matrix() == target

    def test_named_gates(self):
        for matrix in (
            Matrix2.identity(),
            Matrix2.hadamard(),
            Matrix2.t_gate(),
            Matrix2.s_gate(),
            Matrix2.x_gate(),
            Matrix2.s_gate().dagger(),
        ):
            result = synthesize_exact(matrix)
            assert result.to_matrix() == matrix

    @pytest.mark.parametrize("exponent", range(8))
    def test_global_phases(self, exponent):
        matrix = Matrix2.omega_phase(exponent)
        result = synthesize_exact(matrix)
        assert result.to_matrix() == matrix

    def test_numeric_agreement(self):
        word = ("h", "t", "t", "h", "t", "h", "t", "t", "t", "h")
        target = word_to_matrix(word)
        result = synthesize_exact(target)
        resynthesised = np.array(result.to_matrix().to_complex_tuple()).reshape(2, 2)
        original = np.array(target.to_complex_tuple()).reshape(2, 2)
        np.testing.assert_allclose(resynthesised, original, atol=1e-12)


class TestProperties:
    def test_t_count(self):
        result = synthesize_exact(Matrix2.s_gate())
        assert result.t_count == 2  # S = T T

    def test_identity_is_empty(self):
        result = synthesize_exact(Matrix2.identity())
        assert result.gates == ()
        assert result.phase_exponent == 0

    def test_non_unitary_rejected(self):
        matrix = Matrix2(DOmega.from_int(2), DOmega.zero(), DOmega.zero(), DOmega.one())
        with pytest.raises(RingError):
            synthesize_exact(matrix)

    def test_repr(self):
        assert "identity" in repr(synthesize_exact(Matrix2.identity()))

    @given(words)
    @settings(max_examples=20, deadline=None)
    def test_synthesis_length_reasonable(self, word):
        """The output is not absurdly longer than needed: bounded by a
        constant factor over the sde (each reduction round peels at
        most the lookahead depth) plus the base word."""
        target = word_to_matrix(word)
        result = synthesize_exact(target)
        assert len(result.gates) <= 10 * (target.sde() + 1) + 25
