"""Tests for exact state preparation."""

import random

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, uniform_superposition
from repro.dd.manager import algebraic_manager
from repro.errors import RingError
from repro.rings.domega import DOmega
from repro.sim.simulator import Simulator
from repro.synth.multiqubit import exact_unitary_of_circuit
from repro.synth.stateprep import (
    is_exact_unit_vector,
    prepare_state,
    prepare_state_from_dd,
)


def exact_state_of_circuit(circuit):
    """Exact amplitude list via the exact dense unitary's first column."""
    grid = exact_unitary_of_circuit(circuit)
    return [row[0] for row in grid]


def random_clifford_t(num_qubits, gates, seed):
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    for _ in range(gates):
        kind = rng.randrange(5)
        qubit = rng.randrange(num_qubits)
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.t(qubit)
        elif kind == 2:
            circuit.s(qubit)
        elif kind == 3 and num_qubits > 1:
            circuit.cx(qubit, (qubit + 1) % num_qubits)
        else:
            circuit.x(qubit)
    return circuit


class TestIsExactUnitVector:
    def test_basis_vector(self):
        assert is_exact_unit_vector([DOmega.one(), DOmega.zero()])

    def test_plus_state(self):
        half = DOmega.one_over_sqrt2()
        assert is_exact_unit_vector([half, half])

    def test_non_unit(self):
        assert not is_exact_unit_vector([DOmega.one(), DOmega.one()])


class TestPrepareState:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_states_roundtrip_exactly(self, seed):
        num_qubits = 3
        circuit = random_clifford_t(num_qubits, 25, seed)
        target = exact_state_of_circuit(circuit)
        preparation = prepare_state(target, num_qubits)
        assert exact_state_of_circuit(preparation) == target

    def test_ghz(self):
        target = exact_state_of_circuit(ghz_circuit(3))
        preparation = prepare_state(target, 3)
        assert exact_state_of_circuit(preparation) == target

    def test_uniform(self):
        target = exact_state_of_circuit(uniform_superposition(2))
        preparation = prepare_state(target, 2)
        assert exact_state_of_circuit(preparation) == target

    def test_basis_state_preparation(self):
        amplitudes = [DOmega.zero()] * 8
        amplitudes[5] = DOmega.one()
        preparation = prepare_state(amplitudes, 3)
        assert exact_state_of_circuit(preparation) == amplitudes

    def test_already_zero_state(self):
        amplitudes = [DOmega.one()] + [DOmega.zero()] * 7
        preparation = prepare_state(amplitudes, 3)
        assert len(preparation) == 0

    def test_non_unit_rejected(self):
        with pytest.raises(RingError):
            prepare_state([DOmega.one(), DOmega.one()], 1)

    def test_wrong_length_rejected(self):
        with pytest.raises(RingError):
            prepare_state([DOmega.one()], 2)


class TestPrepareFromDd:
    def test_dd_roundtrip(self):
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        original = simulator.run(Circuit(3).h(0).t(0).cx(0, 1).ccx(0, 1, 2)).state
        preparation = prepare_state_from_dd(manager, original)
        rebuilt = simulator.run(preparation).state
        assert manager.edges_equal(rebuilt, original)

    def test_four_qubit_dd_roundtrip(self):
        manager = algebraic_manager(4)
        simulator = Simulator(manager)
        circuit = random_clifford_t(4, 30, seed=3)
        original = simulator.run(circuit).state
        preparation = prepare_state_from_dd(manager, original)
        rebuilt = simulator.run(preparation).state
        assert manager.edges_equal(rebuilt, original)
