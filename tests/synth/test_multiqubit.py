"""Tests for multi-qubit exact Clifford+T synthesis (Giles/Selinger)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, qft_circuit
from repro.dd.manager import algebraic_manager
from repro.errors import RingError
from repro.rings.domega import DOmega
from repro.sim.simulator import Simulator
from repro.synth.multiqubit import (
    exact_unitary_of_circuit,
    is_exact_unitary,
    synthesize_from_dd,
    synthesize_unitary,
)


def random_clifford_t(num_qubits, gates, seed):
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    for _ in range(gates):
        kind = rng.randrange(6)
        qubit = rng.randrange(num_qubits)
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.t(qubit)
        elif kind == 2:
            circuit.s(qubit)
        elif kind == 3:
            circuit.x(qubit)
        elif kind == 4 and num_qubits > 1:
            circuit.cx(qubit, (qubit + 1) % num_qubits)
        else:
            circuit.z(qubit)
    return circuit


class TestExactUnitaryOfCircuit:
    def test_identity(self):
        grid = exact_unitary_of_circuit(Circuit(2))
        assert grid[0][0] == DOmega.one()
        assert grid[0][1].is_zero()
        assert is_exact_unitary(grid)

    def test_matches_dd_matrix(self):
        circuit = Circuit(2).h(0).cx(0, 1).t(1)
        grid = exact_unitary_of_circuit(circuit)
        manager = algebraic_manager(2)
        dense = manager.to_matrix(Simulator(manager).unitary(circuit))
        for row in range(4):
            for col in range(4):
                assert abs(grid[row][col].to_complex() - dense[row][col]) < 1e-12

    def test_unitarity_check_detects_bad_grid(self):
        grid = exact_unitary_of_circuit(Circuit(1))
        grid[0][0] = DOmega.from_int(2)
        assert not is_exact_unitary(grid)


class TestSynthesizeUnitary:
    @pytest.mark.parametrize("num_qubits,gates,seed", [
        (1, 20, 0), (2, 30, 1), (2, 60, 2), (3, 40, 3), (3, 40, 4),
    ])
    def test_roundtrip_exact(self, num_qubits, gates, seed):
        """The synthesised circuit's unitary equals the input in the ring."""
        original = random_clifford_t(num_qubits, gates, seed)
        target = exact_unitary_of_circuit(original)
        synthesised = synthesize_unitary(target, num_qubits)
        assert exact_unitary_of_circuit(synthesised) == target

    def test_named_circuits(self):
        for circuit in (ghz_circuit(3), qft_circuit(3), Circuit(2).swap(0, 1)):
            target = exact_unitary_of_circuit(circuit)
            synthesised = synthesize_unitary(target, circuit.num_qubits)
            assert exact_unitary_of_circuit(synthesised) == target

    def test_identity_synthesises_to_empty(self):
        synthesised = synthesize_unitary(
            exact_unitary_of_circuit(Circuit(2)), 2
        )
        assert len(synthesised) == 0

    def test_non_unitary_rejected(self):
        grid = exact_unitary_of_circuit(Circuit(1))
        grid[0][0] = DOmega.from_int(3)
        with pytest.raises(RingError):
            synthesize_unitary(grid, 1)

    def test_wrong_size_rejected(self):
        with pytest.raises(RingError):
            synthesize_unitary([[DOmega.one()]], 2)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_random_roundtrips(self, seed):
        circuit = random_clifford_t(2, 40, seed)
        target = exact_unitary_of_circuit(circuit)
        synthesised = synthesize_unitary(target, 2)
        assert exact_unitary_of_circuit(synthesised) == target

    def test_four_qubits(self):
        circuit = random_clifford_t(4, 30, 9)
        target = exact_unitary_of_circuit(circuit)
        synthesised = synthesize_unitary(target, 4)
        assert exact_unitary_of_circuit(synthesised) == target


class TestSynthesizeFromDd:
    def test_dd_to_circuit_roundtrip(self):
        """circuit -> DD -> synthesis -> DD: exact structural equality."""
        circuit = Circuit(2).h(0).t(0).cx(0, 1).s(1).h(1)
        manager = algebraic_manager(2)
        simulator = Simulator(manager)
        unitary = simulator.unitary(circuit)
        resynthesised = synthesize_from_dd(manager, unitary)
        unitary_again = simulator.unitary(resynthesised)
        assert manager.edges_equal(unitary, unitary_again)

    def test_grover_oracle_resynthesis(self):
        from repro.algorithms.grover import grover_oracle

        circuit = grover_oracle(3, 5)
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        unitary = simulator.unitary(circuit)
        resynthesised = synthesize_from_dd(manager, unitary)
        assert manager.edges_equal(unitary, simulator.unitary(resynthesised))

    def test_numeric_dense_agreement(self):
        circuit = random_clifford_t(3, 25, 11)
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        unitary = simulator.unitary(circuit)
        resynthesised = synthesize_from_dd(manager, unitary)
        np.testing.assert_allclose(
            manager.to_matrix(simulator.unitary(resynthesised)),
            manager.to_matrix(unitary),
            atol=1e-9,
        )
