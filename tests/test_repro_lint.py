"""Tier-1 harness for the repro-lint self-test corpus.

Each file in ``tools/repro_lint/tests/cases`` is a minimal bad example
declaring its virtual lint path (``# lint-path:``) and marking every
line that must fire (``# lint-expect: RL00X``).  The tests assert the
linter fires *exactly* on those lines -- no misses, no extras -- and
stays quiet on the real source tree.
"""

import re
from pathlib import Path

import pytest

from tools.repro_lint import RULES, lint_file, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
CASES_DIR = REPO_ROOT / "tools" / "repro_lint" / "tests" / "cases"
CASE_FILES = sorted(CASES_DIR.glob("*.py"))

_PATH_HEADER = re.compile(r"#\s*lint-path:\s*(\S+)")
_EXPECT = re.compile(r"#\s*lint-expect:\s*(RL\d{3})")


def _parse_case(path: Path):
    source = path.read_text(encoding="utf-8")
    header = _PATH_HEADER.search(source)
    assert header is not None, f"{path.name} is missing a '# lint-path:' header"
    expected = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            expected.add((lineno, match.group(1)))
    return source, header.group(1), expected


@pytest.mark.parametrize("case", CASE_FILES, ids=lambda p: p.stem)
def test_case_fires_exactly_where_expected(case):
    source, virtual_path, expected = _parse_case(case)
    assert expected, f"{case.name} marks no expected findings"
    findings = lint_source(source, virtual_path)
    got = {(finding.line, finding.rule) for finding in findings}
    assert got == expected, (
        f"{case.name}: expected findings {sorted(expected)}, got {sorted(got)}"
    )


def test_every_rule_has_a_bad_example():
    covered = set()
    for case in CASE_FILES:
        _, _, expected = _parse_case(case)
        covered.update(rule for _, rule in expected)
    assert covered == {rule.code for rule in RULES}


def test_real_source_tree_is_clean():
    findings = lint_paths([str(REPO_ROOT / "src" / "repro")])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_corpus_files_not_linted_under_real_path():
    # Corpus files live under tools/repro_lint/ and are exempt when
    # linted under their *real* path -- they only fire under the
    # declared virtual path (so a tree-wide lint run stays clean).
    for case in CASE_FILES:
        assert lint_file(str(case)) == []


def test_pragma_suppresses_only_named_rule():
    source = "x = 1.0 == y  # repro-lint: allow[RL001]\n"
    findings = lint_source(source, "src/repro/dd/sample.py")
    assert [f.rule for f in findings] == ["RL003"]
    source = "x = 1.0 == y  # repro-lint: allow[RL003]\n"
    assert lint_source(source, "src/repro/dd/sample.py") == []


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "src/repro/dd/sample.py")
    assert len(findings) == 1 and findings[0].rule == "RL000"
