"""Output layer: baseline filtering, reporters, and CLI exit codes."""

import json
from pathlib import Path

import pytest

from tools.repro_lint.baseline import Baseline
from tools.repro_lint.cli import main
from tools.repro_lint.core import Finding
from tools.repro_lint.registry import RULES
from tools.repro_lint.reporters import render


def _finding(rule="RL002", path="src/repro/rings/x.py", line=3, message="bad"):
    return Finding(rule, path, line, 0, message)


class TestBaseline:
    def test_fingerprint_is_line_independent(self):
        a = _finding(line=3)
        b = _finding(line=40)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != _finding(message="other").fingerprint()

    def test_filter_splits_new_and_accepted(self):
        known = _finding()
        fresh = _finding(message="newly introduced")
        baseline = Baseline.from_findings([known], justification="legacy")
        new, accepted = baseline.filter([known, fresh])
        assert [f.message for f in accepted] == ["bad"]
        assert [f.message for f in new] == ["newly introduced"]

    def test_count_budget_is_enforced(self):
        # Two identical findings baselined once: the second overflows.
        finding = _finding()
        baseline = Baseline.from_findings([finding])
        new, accepted = baseline.filter([finding, finding])
        assert len(accepted) == 1 and len(new) == 1

    def test_roundtrip_through_file(self, tmp_path):
        baseline = Baseline.from_findings(
            [_finding()], justification="tracked: see docs/STATIC_ANALYSIS.md"
        )
        target = tmp_path / "baseline.json"
        baseline.write(target)
        loaded = Baseline.load(target)
        new, accepted = loaded.filter([_finding()])
        assert new == [] and len(accepted) == 1
        payload = json.loads(target.read_text(encoding="utf-8"))
        entry = next(iter(payload["entries"].values()))
        assert entry["justification"].startswith("tracked")


class TestReporters:
    FINDINGS = [
        _finding(),
        _finding(rule="RL010", path="src/repro/rings/y.py", message="impure"),
    ]

    def test_text_matches_compiler_convention(self):
        text = render("text", self.FINDINGS, RULES)
        assert "src/repro/rings/x.py:3:1: RL002 bad" in text

    def test_json_shape(self):
        payload = json.loads(render("json", self.FINDINGS, RULES))
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"RL002", "RL010"}

    def test_sarif_shape(self):
        log = json.loads(render("sarif", self.FINDINGS, RULES))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {r.code for r in RULES} <= rule_ids
        result = run["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 3
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            render("xml", self.FINDINGS, RULES)


class TestCli:
    @pytest.fixture()
    def tree(self, tmp_path, monkeypatch):
        root = tmp_path / "src" / "repro" / "rings"
        root.mkdir(parents=True)
        (root / "bad.py").write_text("HALF = 0.5\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_findings_exit_nonzero(self, tree, capsys):
        code = main([str(tree / "src"), "--no-cache"])
        assert code == 1
        out = capsys.readouterr().out
        assert "RL002" in out

    def test_write_baseline_then_clean_exit(self, tree, capsys):
        assert main([str(tree / "src"), "--no-cache", "--write-baseline"]) == 0
        assert Path(".repro_lint_baseline.json").exists()
        assert main([str(tree / "src"), "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "1 baselined" in err

    def test_new_finding_fails_despite_baseline(self, tree, capsys):
        assert main([str(tree / "src"), "--no-cache", "--write-baseline"]) == 0
        bad = tree / "src" / "repro" / "rings" / "bad.py"
        bad.write_text("HALF = 0.5\nTAU = 6.28\n", encoding="utf-8")
        assert main([str(tree / "src"), "--no-cache"]) == 1

    def test_output_file_and_sarif(self, tree):
        target = tree / "report.sarif"
        code = main(
            [
                str(tree / "src"),
                "--no-cache",
                "--format",
                "sarif",
                "--output",
                str(target),
            ]
        )
        assert code == 1
        log = json.loads(target.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"]

    def test_list_rules_covers_catalogue(self, tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL009", "RL013"):
            assert code in out
