"""Regression tests for the dataflow rules against the *real* tree.

The acceptance-critical ones: RL009 must catch a seeded refcount-leak
mutant of ``repro.dd.mem`` (a ``dec_ref`` edited out), and RL011 must
catch a lambda handed to ``run_batch``.
"""

import textwrap
from pathlib import Path

from tools.repro_lint.engine import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
MEM_PATH = REPO_ROOT / "src" / "repro" / "dd" / "mem.py"
SIM_PATH = REPO_ROOT / "src" / "repro" / "sim" / "simulator.py"


def _rules(findings):
    return [f.rule for f in findings]


class TestRL009MutantRegression:
    def test_unmutated_mem_is_clean(self):
        source = MEM_PATH.read_text(encoding="utf-8")
        assert lint_source(source, "src/repro/dd/mem.py") == []

    def test_deleting_the_protecting_decref_is_caught(self):
        source = MEM_PATH.read_text(encoding="utf-8")
        assert source.count("self.dec_ref(edge)") == 1, (
            "mutant seeding assumes exactly one dec_ref inside "
            "MemoryManager.protecting"
        )
        mutant = source.replace("self.dec_ref(edge)", "pass")
        findings = lint_source(mutant, "src/repro/dd/mem.py")
        assert "RL009" in _rules(findings), "\n".join(map(str, findings))
        (finding,) = [f for f in findings if f.rule == "RL009"]
        assert "inc_ref(edge)" in finding.message

    def test_deleting_the_simulator_loop_decref_is_caught(self):
        source = SIM_PATH.read_text(encoding="utf-8")
        assert source.count("memory.dec_ref(state)") == 1
        mutant = source.replace("memory.dec_ref(state)", "pass")
        findings = lint_source(mutant, "src/repro/sim/simulator.py")
        assert "RL009" in _rules(findings), "\n".join(map(str, findings))


class TestRL009Semantics:
    def test_try_finally_release_is_balanced(self):
        source = textwrap.dedent(
            """
            def scoped(memory, edge, fn):
                memory.inc_ref(edge)
                try:
                    return fn(edge)
                finally:
                    memory.dec_ref(edge)
            """
        )
        assert lint_source(source, "src/repro/dd/roots.py") == []

    def test_branch_leak_is_caught_at_acquisition(self):
        source = textwrap.dedent(
            """
            def leaky(memory, edge, flag):
                memory.inc_ref(edge)
                if flag:
                    raise RuntimeError("bail")
                memory.dec_ref(edge)
            """
        )
        findings = lint_source(source, "src/repro/dd/roots.py")
        assert _rules(findings) == ["RL009"]
        assert findings[0].line == 3  # anchored at the inc_ref

    def test_double_registration_needs_double_release(self):
        source = textwrap.dedent(
            """
            def nested(memory, edge):
                memory.inc_ref(edge)
                memory.inc_ref(edge)
                memory.dec_ref(edge)
            """
        )
        findings = lint_source(source, "src/repro/dd/roots.py")
        assert _rules(findings) == ["RL009"]


class TestRL011RunBatch:
    def test_lambda_passed_to_run_batch_is_caught(self):
        source = textwrap.dedent(
            """
            from repro.api import run_batch

            def bad(requests):
                return run_batch(requests, on_result=lambda r: r.node_count)
            """
        )
        findings = lint_source(source, "src/repro/exec/driver.py")
        assert _rules(findings) == ["RL011"]
        assert "lambda" in findings[0].message

    def test_real_batch_module_is_clean(self):
        batch = REPO_ROOT / "src" / "repro" / "exec" / "batch.py"
        source = batch.read_text(encoding="utf-8")
        assert lint_source(source, "src/repro/exec/batch.py") == []


class TestRL013Ordering:
    def test_mutation_before_budget_call_is_caught(self):
        source = textwrap.dedent(
            """
            class Manager:
                def _enforce_budget(self):
                    raise MemoryBudgetExceeded("over")

                def maybe_collect(self):
                    self._threshold = self._threshold * 2
                    self._enforce_budget()
            """
        )
        findings = lint_source(source, "src/repro/dd/mem.py")
        assert _rules(findings) == ["RL013"]

    def test_mutation_after_budget_call_is_clean(self):
        source = textwrap.dedent(
            """
            class Manager:
                def _enforce_budget(self):
                    raise MemoryBudgetExceeded("over")

                def maybe_collect(self):
                    self._enforce_budget()
                    self._threshold = self._threshold * 2
            """
        )
        assert lint_source(source, "src/repro/dd/mem.py") == []
