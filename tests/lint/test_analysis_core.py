"""Unit tests for the shared analysis core: facts extraction, the
call-graph builder, the purity summarizer and the doc inventory."""

import ast
import textwrap

from tools.repro_lint.analysis import (
    AnalysisContext,
    CallGraph,
    DocInventory,
    extract_facts,
    summarize_function_purity,
    summarize_module_purity,
)


def _facts(source, path="src/repro/rings/sample.py"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_facts(tree, path, textwrap.dedent(source))


class TestFactsExtraction:
    def test_function_inventory_with_qualnames(self):
        facts = _facts(
            """
            def top():
                return helper()

            class Ring:
                def method(self):
                    def inner():
                        pass
                    return inner
            """
        )
        names = {fn.qualname for fn in facts.functions}
        assert names == {"top", "Ring.method", "Ring.method.inner"}

    def test_calls_and_raises_recorded(self):
        facts = _facts(
            """
            def risky():
                prepare()
                raise MemoryBudgetExceeded("over")
            """
        )
        (fn,) = facts.functions
        assert "prepare" in fn.calls
        assert "MemoryBudgetExceeded" in fn.raises

    def test_instrument_registrations_recorded(self):
        facts = _facts(
            """
            def wire(registry):
                a = registry.counter("sim.gates")
                b = registry.gauge("sim.state.nodes")
                c = registry.histogram("sim.gate.seconds", buckets=(1,))
                d = registry.counter(dynamic_name)  # non-literal: skipped
                return a, b, c, d
            """
        )
        names = {(name, kind) for name, kind, _l, _c in facts.registrations}
        assert names == {
            ("sim.gates", "counter"),
            ("sim.state.nodes", "gauge"),
            ("sim.gate.seconds", "histogram"),
        }

    def test_facts_roundtrip_through_dict(self):
        facts = _facts(
            """
            _STATE = {}

            def mutate(values):
                values.append(1)  # repro-lint: allow[RL010]
            """
        )
        clone = type(facts).from_dict(facts.to_dict())
        assert clone.path == facts.path
        assert [fn.to_dict() for fn in clone.functions] == [
            fn.to_dict() for fn in facts.functions
        ]
        assert clone.suppressions == facts.suppressions
        assert len(clone.module_purity_issues) == 1


class TestPuritySummarizer:
    def _issues(self, source):
        tree = ast.parse(textwrap.dedent(source))
        fn = tree.body[0]
        return summarize_function_purity(fn)

    def test_param_item_assignment_is_impure(self):
        issues = self._issues(
            """
            def f(values):
                values[0] = 1
            """
        )
        assert [issue.kind for issue in issues] == ["param-mutation"]

    def test_mutating_method_call_is_impure(self):
        issues = self._issues(
            """
            def f(values):
                values.append(1)
            """
        )
        assert [issue.kind for issue in issues] == ["param-mutation"]

    def test_global_decl_is_impure(self):
        issues = self._issues(
            """
            def f(x):
                global _COUNT
                _COUNT = x
            """
        )
        assert [issue.kind for issue in issues] == ["global-decl"]

    def test_defensive_copy_is_pure(self):
        issues = self._issues(
            """
            def f(values):
                values = list(values)
                values[0] = 1
                values.append(2)
                return values
            """
        )
        assert issues == []

    def test_pure_arithmetic_is_pure(self):
        issues = self._issues(
            """
            def f(a, b):
                return a * b + a
            """
        )
        assert issues == []

    def test_module_dunder_assignments_are_exempt(self):
        tree = ast.parse("__all__ = ['a']\n_BAD = {}\n")
        issues = summarize_module_purity(tree)
        assert len(issues) == 1
        assert "_BAD" in issues[0].message


class TestCallGraph:
    def test_may_raise_fixpoint_propagates_through_callers(self):
        facts = _facts(
            """
            def raiser():
                raise MemoryBudgetExceeded("x")

            def middle():
                return raiser()

            def outer():
                return middle()

            def unrelated():
                return 1
            """,
            path="src/repro/dd/mem.py",
        )
        graph = CallGraph.build([facts])
        tainted = graph.may_raise("MemoryBudgetExceeded")
        assert {"raiser", "middle", "outer"} <= tainted
        assert "unrelated" not in tainted

    def test_cross_file_edges(self):
        caller = _facts(
            """
            def use():
                return helper()
            """,
            path="src/repro/dd/a.py",
        )
        callee = _facts(
            """
            def helper():
                raise MemoryBudgetExceeded("x")
            """,
            path="src/repro/dd/b.py",
        )
        graph = CallGraph.build([caller, callee])
        assert "use" in graph.may_raise("MemoryBudgetExceeded")
        assert graph.callers_of("helper") == ["src/repro/dd/a.py::use"]


class TestDocInventory:
    DOC = textwrap.dedent(
        """
        | name | kind | meaning |
        |---|---|---|
        | `sim.gates` | counter | gates applied |
        | `a.{x,y}` | gauge | finite alternation |
        | `b.<left\\|right>.size` | collected | escaped alternation |
        | `c.<table>.hits` | collected | open wildcard |
        | `d.first` / `d.second` | gauge / histogram | positional kinds |
        """
    )

    def test_finite_patterns_expand(self):
        inventory = DocInventory.parse(self.DOC)
        entry = next(e for e in inventory.entries if e.display == "a.{x,y}")
        assert set(entry.concrete_names) == {"a.x", "a.y"}
        assert entry.matches("a.x") and not entry.matches("a.z")

    def test_escaped_alternation_expands(self):
        inventory = DocInventory.parse(self.DOC)
        entry = next(e for e in inventory.entries if "left" in e.display)
        assert set(entry.concrete_names) == {"b.left.size", "b.right.size"}

    def test_wildcard_has_no_concrete_names(self):
        inventory = DocInventory.parse(self.DOC)
        entry = next(e for e in inventory.entries if "<table>" in e.display)
        assert entry.concrete_names == ()
        assert entry.matches("c.apply.hits")
        assert not entry.matches("c.a.b.hits")  # wildcard spans one segment

    def test_positional_kind_pairing(self):
        inventory = DocInventory.parse(self.DOC)
        first = next(e for e in inventory.entries if e.display == "d.first")
        second = next(e for e in inventory.entries if e.display == "d.second")
        assert first.kinds == frozenset({"gauge"})
        assert second.kinds == frozenset({"histogram"})

    def test_push_entries_exclude_collected(self):
        inventory = DocInventory.parse(self.DOC)
        displays = {e.display for e in inventory.push_entries()}
        assert "sim.gates" in displays
        assert all("b." not in d and "c." not in d for d in displays)


class TestAnalysisContext:
    def test_full_tree_requires_all_sentinels(self):
        partial = {
            "src/repro/dd/mem.py": _facts("x = 1", path="src/repro/dd/mem.py"),
        }
        assert not AnalysisContext(partial).is_full_tree
        complete = dict(partial)
        for path in ("src/repro/sim/simulator.py", "src/repro/exec/batch.py"):
            complete[path] = _facts("x = 1", path=path)
        assert AnalysisContext(complete).is_full_tree
