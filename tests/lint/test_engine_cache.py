"""Engine + incremental cache behaviour: hits on untouched files,
invalidation on edit, invalidation on rule-version bump, and the
correctness property that cached runs report identical findings."""

import json
import os
from pathlib import Path

import pytest

from tools.repro_lint.engine import run_lint

CLEAN = "def fine(a, b):\n    return a + b\n"
# A float literal inside a rings path trips RL002.
DIRTY = "HALF = 0.5\n"


@pytest.fixture()
def tree(tmp_path):
    root = tmp_path / "src" / "repro" / "rings"
    root.mkdir(parents=True)
    (root / "alpha.py").write_text(CLEAN, encoding="utf-8")
    (root / "beta.py").write_text(DIRTY, encoding="utf-8")
    return tmp_path


def _run(tree, **kwargs):
    cache = tree / "cache.json"
    return run_lint(
        [str(tree / "src")],
        use_cache=True,
        cache_path=cache,
        doc_path=tree / "missing-doc.md",
        **kwargs,
    )


def test_cold_then_warm_hits_every_file(tree):
    cold = _run(tree)
    assert cold.cache_hits == 0 and cold.cache_misses == 2
    warm = _run(tree)
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert [f.to_dict() for f in warm.findings] == [
        f.to_dict() for f in cold.findings
    ]
    assert [f.rule for f in cold.findings] == ["RL002"]


def test_edit_invalidates_only_that_file(tree):
    _run(tree)
    target = tree / "src" / "repro" / "rings" / "alpha.py"
    target.write_text(CLEAN + "TAU = 2.0\n", encoding="utf-8")
    rerun = _run(tree)
    assert rerun.cache_hits == 1 and rerun.cache_misses == 1
    assert {f.rule for f in rerun.findings} == {"RL002"}
    assert len(rerun.findings) == 2  # beta's cached finding + alpha's new one


def test_touch_without_content_change_still_hits(tree):
    _run(tree)
    target = tree / "src" / "repro" / "rings" / "alpha.py"
    stat = target.stat()
    os.utime(target, ns=(stat.st_atime_ns + 10**9, stat.st_mtime_ns + 10**9))
    rerun = _run(tree)
    # The mtime fast path misses but the content hash still matches.
    assert rerun.cache_hits == 2 and rerun.cache_misses == 0


def test_rule_version_bump_invalidates_everything(tree, monkeypatch):
    _run(tree)
    import tools.repro_lint.engine as engine_mod

    monkeypatch.setattr(
        engine_mod, "rules_signature", lambda: "bumped-signature"
    )
    rerun = _run(tree)
    assert rerun.cache_hits == 0 and rerun.cache_misses == 2


def test_corrupt_cache_file_is_ignored(tree):
    (tree / "cache.json").write_text("{not json", encoding="utf-8")
    run = _run(tree)
    assert run.cache_misses == 2
    # And the corrupt file was replaced with a valid one.
    payload = json.loads((tree / "cache.json").read_text(encoding="utf-8"))
    assert set(payload["entries"]) == {
        str(Path(tree / "src" / "repro" / "rings" / name)).replace(os.sep, "/")
        for name in ("alpha.py", "beta.py")
    }


def test_deleted_file_is_pruned_from_cache(tree):
    _run(tree)
    (tree / "src" / "repro" / "rings" / "beta.py").unlink()
    rerun = _run(tree)
    assert rerun.findings == []
    payload = json.loads((tree / "cache.json").read_text(encoding="utf-8"))
    assert all("beta.py" not in key for key in payload["entries"])


def test_parallel_jobs_match_sequential(tree):
    sequential = run_lint(
        [str(tree / "src")], use_cache=False, doc_path=tree / "missing-doc.md"
    )
    parallel = run_lint(
        [str(tree / "src")],
        jobs=2,
        use_cache=False,
        doc_path=tree / "missing-doc.md",
    )
    assert [f.to_dict() for f in parallel.findings] == [
        f.to_dict() for f in sequential.findings
    ]
