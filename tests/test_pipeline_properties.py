"""Whole-pipeline property tests on random Clifford+T circuits.

Hypothesis generates random exactly-representable circuits; the
properties below must hold for *every* one of them -- they encode the
paper's structural guarantees end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.dd.serialize import dumps, loads
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator

NUM_QUBITS = 3


@st.composite
def clifford_t_circuits(draw):
    """Random circuits over {H, T, S, X, Z, CX, CCX} on 3 qubits."""
    length = draw(st.integers(min_value=0, max_value=20))
    circuit = Circuit(NUM_QUBITS, name="random")
    for _ in range(length):
        kind = draw(st.integers(min_value=0, max_value=6))
        qubit = draw(st.integers(min_value=0, max_value=NUM_QUBITS - 1))
        if kind == 0:
            circuit.h(qubit)
        elif kind == 1:
            circuit.t(qubit)
        elif kind == 2:
            circuit.s(qubit)
        elif kind == 3:
            circuit.x(qubit)
        elif kind == 4:
            circuit.z(qubit)
        elif kind == 5:
            other = (qubit + 1 + draw(st.integers(min_value=0, max_value=NUM_QUBITS - 2))) % NUM_QUBITS
            circuit.cx(qubit, other)
        else:
            others = [q for q in range(NUM_QUBITS) if q != qubit]
            circuit.ccx(others[0], others[1], qubit)
    return circuit


class TestAlgebraicInvariants:
    @given(clifford_t_circuits())
    @settings(max_examples=30, deadline=None)
    def test_norm_exactly_preserved(self, circuit):
        """Unitary evolution keeps <psi|psi> == 1 *in the ring*."""
        manager = algebraic_manager(NUM_QUBITS)
        result = Simulator(manager).run(circuit)
        assert manager.system.is_one(manager.norm_squared(result.state))

    @given(clifford_t_circuits())
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_reference(self, circuit):
        manager = algebraic_manager(NUM_QUBITS)
        result = Simulator(manager).run(circuit)
        expected = StatevectorSimulator(NUM_QUBITS).run(circuit)
        np.testing.assert_allclose(result.final_amplitudes(), expected, atol=1e-9)

    @given(clifford_t_circuits())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_canonical_node(self, circuit):
        """Re-simulating yields the identical hash-consed node."""
        manager = algebraic_manager(NUM_QUBITS)
        first = Simulator(manager).run(circuit).state
        second = Simulator(manager).run(circuit).state
        assert first.node is second.node
        assert manager.edges_equal(first, second)

    @given(clifford_t_circuits())
    @settings(max_examples=20, deadline=None)
    def test_gcd_scheme_agrees_with_qomega_scheme(self, circuit):
        """Algorithms 2 and 3 detect the same redundancies: equal node
        counts and (numerically) equal amplitudes."""
        q_result = Simulator(algebraic_manager(NUM_QUBITS)).run(circuit)
        gcd_result = Simulator(algebraic_gcd_manager(NUM_QUBITS)).run(circuit)
        assert q_result.node_count == gcd_result.node_count
        np.testing.assert_allclose(
            q_result.final_amplitudes(), gcd_result.final_amplitudes(), atol=1e-9
        )

    @given(clifford_t_circuits())
    @settings(max_examples=20, deadline=None)
    def test_serialization_roundtrip(self, circuit):
        manager = algebraic_manager(NUM_QUBITS)
        state = Simulator(manager).run(circuit).state
        restored = loads(manager, dumps(manager, state))
        assert manager.edges_equal(restored, state)

    @given(clifford_t_circuits())
    @settings(max_examples=15, deadline=None)
    def test_unitary_times_adjoint_is_identity(self, circuit):
        manager = algebraic_manager(NUM_QUBITS)
        unitary = Simulator(manager).unitary(circuit)
        product = manager.mat_mat(unitary, manager.adjoint(unitary))
        assert manager.edges_equal(product, manager.identity())

    @given(clifford_t_circuits(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_matrix_matrix_strategy_agrees(self, circuit, block_size):
        manager = algebraic_manager(NUM_QUBITS)
        simulator = Simulator(manager)
        vector_state = simulator.run(circuit).state
        mm_state = simulator.run_matrix_matrix(circuit, block_size=block_size).state
        assert manager.edges_equal(vector_state, mm_state)


class TestNumericAgreement:
    @given(clifford_t_circuits())
    @settings(max_examples=20, deadline=None)
    def test_tolerant_numeric_close_to_exact(self, circuit):
        exact = Simulator(algebraic_manager(NUM_QUBITS)).run(circuit)
        numeric = Simulator(numeric_manager(NUM_QUBITS, eps=1e-10)).run(circuit)
        np.testing.assert_allclose(
            numeric.final_amplitudes(), exact.final_amplitudes(), atol=1e-6
        )

    @given(clifford_t_circuits())
    @settings(max_examples=20, deadline=None)
    def test_tolerant_numeric_size_never_below_exact(self, circuit):
        """The algebraic DD detects *all* redundancies: no numeric DD
        can be smaller without losing information."""
        exact = Simulator(algebraic_manager(NUM_QUBITS)).run(circuit)
        numeric = Simulator(numeric_manager(NUM_QUBITS, eps=1e-12)).run(circuit)
        assert numeric.node_count >= exact.node_count
