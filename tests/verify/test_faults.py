"""Tests for fault injection and exact fault diagnosis."""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuits.circuit import Circuit
from repro.errors import CircuitError
from repro.verify.equivalence import check_equivalence
from repro.verify.faults import (
    Fault,
    enumerate_single_faults,
    inject_fault,
    locate_fault,
)


@pytest.fixture
def reference():
    return Circuit(3).h(0).t(0).cx(0, 1).s(1).ccx(0, 1, 2).tdg(2).h(2)


class TestInjectFault:
    def test_drop(self, reference):
        faulty = inject_fault(reference, Fault("drop", 1))
        assert len(faulty) == len(reference) - 1

    def test_replace_t_with_tdg(self, reference):
        faulty = inject_fault(reference, Fault("replace", 1))
        assert faulty[1].gate.name == "tdg"
        assert len(faulty) == len(reference)

    def test_extra(self, reference):
        faulty = inject_fault(reference, Fault("extra", 0))
        assert len(faulty) == len(reference) + 1
        assert faulty[1].gate.name == "z"

    def test_control_drop(self, reference):
        faulty = inject_fault(reference, Fault("control-drop", 4))
        assert len(faulty[4].controls) == 1

    def test_control_drop_requires_controls(self, reference):
        with pytest.raises(CircuitError):
            inject_fault(reference, Fault("control-drop", 0))

    def test_position_validation(self, reference):
        with pytest.raises(CircuitError):
            inject_fault(reference, Fault("drop", 99))

    def test_unknown_kind(self, reference):
        with pytest.raises(CircuitError):
            inject_fault(reference, Fault("gamma-ray", 0))


class TestDetection:
    def test_every_single_fault_is_detected(self, reference):
        """Exact verification catches all injected faults (no tolerance
        blind spots) -- except physically inconsequential ones."""
        for fault in enumerate_single_faults(reference):
            faulty = inject_fault(reference, fault)
            verdict = check_equivalence(reference, faulty)
            assert not verdict.equivalent, f"fault {fault} went undetected"

    def test_enumeration_coverage(self, reference):
        faults = enumerate_single_faults(reference)
        kinds = {fault.kind for fault in faults}
        assert kinds == {"drop", "replace", "extra", "control-drop"}
        assert sum(1 for f in faults if f.kind == "drop") == len(reference)


class TestLocateFault:
    @pytest.mark.parametrize("position", [0, 1, 3, 5])
    def test_replace_fault_located(self, reference, position):
        fault_positions = [
            index for index, op in enumerate(reference)
            if op.gate.name in ("t", "tdg", "s", "h", "x")
        ]
        if position not in fault_positions:
            pytest.skip("no replacement defined at this position")
        faulty = inject_fault(reference, Fault("replace", position))
        assert locate_fault(reference, faulty) == position

    def test_equivalent_circuits_give_none(self, reference):
        assert locate_fault(reference, reference) is None

    def test_length_mismatch_rejected(self, reference):
        faulty = inject_fault(reference, Fault("drop", 0))
        with pytest.raises(CircuitError):
            locate_fault(reference, faulty)

    def test_width_mismatch_rejected(self, reference):
        with pytest.raises(CircuitError):
            locate_fault(reference, Circuit(2).h(0))

    def test_on_grover(self):
        original = grover_circuit(4, 9)
        position = len(original) // 2
        tampered = Circuit(4, name="tampered")
        tampered.operations = list(original.operations)
        from repro.circuits.gates import TDG
        from repro.circuits.circuit import Operation

        victim = tampered.operations[position]
        tampered.operations[position] = Operation(
            TDG, victim.target, victim.controls, victim.negative_controls
        )
        located = locate_fault(original, tampered)
        assert located == position
