"""Tests for DD-based equivalence checking."""

import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import CircuitError
from repro.verify.equivalence import check_equivalence, check_state_equivalence


def swap_via_cx(n, a, b):
    return Circuit(n).cx(a, b).cx(b, a).cx(a, b)


class TestUnitaryEquivalence:
    def test_identities(self):
        """Classic rewrite identities verified exactly."""
        # HH = I
        assert check_equivalence(Circuit(2).h(0).h(0), Circuit(2))
        # T T = S
        assert check_equivalence(Circuit(1).t(0).t(0), Circuit(1).s(0))
        # S S = Z
        assert check_equivalence(Circuit(1).s(0).s(0), Circuit(1).z(0))
        # HXH = Z
        assert check_equivalence(Circuit(1).h(0).x(0).h(0), Circuit(1).z(0))

    def test_cx_conjugation(self):
        """CX(0,1) = H(1) CZ(0,1) H(1)."""
        left = Circuit(2).cx(0, 1)
        right = Circuit(2).h(1).cz(0, 1).h(1)
        assert check_equivalence(left, right)

    def test_inequivalent(self):
        result = check_equivalence(Circuit(1).t(0), Circuit(1).s(0))
        assert not result

    def test_swap_decomposition(self):
        direct = Circuit(3).swap(0, 2)
        manual = swap_via_cx(3, 0, 2)
        assert check_equivalence(direct, manual)

    def test_global_phase_detection(self):
        """X Z X Z = -I: equal to identity only up to global phase."""
        phased = Circuit(1).x(0).z(0).x(0).z(0)
        identity = Circuit(1)
        with_phase = check_equivalence(phased, identity, up_to_global_phase=True)
        assert with_phase
        assert with_phase.phase_factor == pytest.approx(-1.0)
        strict = check_equivalence(phased, identity, up_to_global_phase=False)
        assert not strict

    def test_width_mismatch(self):
        with pytest.raises(CircuitError):
            check_equivalence(Circuit(1), Circuit(2))

    def test_numeric_eps0_misses_equivalence(self):
        """The paper's verification argument: with floats at eps = 0,
        H H != I structurally, so numeric verification reports a false
        negative where the algebraic check is exact."""
        left = Circuit(1).h(0).h(0)
        right = Circuit(1)
        exact = check_equivalence(left, right, manager=algebraic_manager(1))
        numeric = check_equivalence(
            left, right, manager=numeric_manager(1, eps=0.0), up_to_global_phase=False
        )
        assert exact
        assert not numeric

    def test_numeric_with_tolerance_recovers(self):
        left = Circuit(1).h(0).h(0)
        right = Circuit(1)
        assert check_equivalence(left, right, manager=numeric_manager(1, eps=1e-10))


class TestStateEquivalence:
    def test_equal_preparations(self):
        a = Circuit(2).h(0).cx(0, 1)
        b = Circuit(2).h(0).cx(0, 1)
        assert check_state_equivalence(a, b)

    def test_unequal_on_zero_but_state_check_passes(self):
        """T and identity agree on |0> but differ as unitaries -- the
        state check is intentionally weaker."""
        t_only = Circuit(1).t(0)
        nothing = Circuit(1)
        assert check_state_equivalence(t_only, nothing)
        assert not check_equivalence(t_only, nothing)

    def test_different_states(self):
        assert not check_state_equivalence(Circuit(1).x(0), Circuit(1))

    def test_custom_initial_state(self):
        manager = algebraic_manager(1)
        start = manager.basis_state(1)
        # On |1>, T applies a phase: differs from identity only by a
        # global phase.
        result = check_state_equivalence(
            Circuit(1).t(0), Circuit(1), manager=manager, initial_state=start
        )
        assert result
        assert result.phase_factor is not None
