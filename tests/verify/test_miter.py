"""Tests for miter-based equivalence and counterexample extraction."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.sim.statevector import StatevectorSimulator
from repro.verify.equivalence import (
    check_equivalence,
    check_equivalence_miter,
    find_counterexample,
)


class TestMiter:
    def test_agrees_with_direct_check_on_equivalent(self):
        left = Circuit(2).cx(0, 1)
        right = Circuit(2).h(1).cz(0, 1).h(1)
        assert check_equivalence_miter(left, right)
        assert check_equivalence(left, right)

    def test_detects_inequivalence(self):
        assert not check_equivalence_miter(Circuit(1).t(0), Circuit(1).s(0))

    def test_global_phase(self):
        phased = Circuit(1).x(0).z(0).x(0).z(0)  # -I
        result = check_equivalence_miter(phased, Circuit(1))
        assert result
        assert result.phase_factor == pytest.approx(-1.0)
        assert not check_equivalence_miter(phased, Circuit(1), up_to_global_phase=False)

    def test_miter_on_larger_circuit(self):
        from repro.algorithms.grover import grover_circuit

        original = grover_circuit(4, 9)
        assert check_equivalence_miter(original, grover_circuit(4, 9))
        tampered = grover_circuit(4, 9)
        tampered.z(0)
        assert not check_equivalence_miter(original, tampered)

    def test_numeric_manager_supported(self):
        left = Circuit(2).cx(0, 1)
        right = Circuit(2).h(1).cz(0, 1).h(1)
        assert check_equivalence_miter(left, right, manager=numeric_manager(2, eps=1e-10))


class TestCounterexample:
    def test_none_for_equivalent(self):
        assert find_counterexample(Circuit(2).swap(0, 1), Circuit(2).swap(0, 1)) is None

    def test_x_vs_identity(self):
        """X differs from I on every input; any column is valid."""
        witness = find_counterexample(Circuit(1).x(0), Circuit(1))
        assert witness in (0, 1)

    def test_controlled_difference_isolated(self):
        """CX vs I differ only on inputs with the control set."""
        witness = find_counterexample(Circuit(2).cx(0, 1), Circuit(2))
        assert witness is not None
        # Verify the witness by dense simulation.
        simulator = StatevectorSimulator(2)
        basis = np.zeros(4, dtype=complex)
        basis[witness] = 1.0
        out_first = simulator.run(Circuit(2).cx(0, 1), initial_state=basis)
        out_second = simulator.run(Circuit(2), initial_state=basis)
        assert np.linalg.norm(out_first - out_second) > 1e-9

    @pytest.mark.parametrize("fault_qubit", [0, 1, 2])
    def test_witness_is_genuine(self, fault_qubit):
        """Whatever witness comes back must actually distinguish."""
        good = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        faulty = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).z(fault_qubit)
        witness = find_counterexample(good, faulty)
        assert witness is not None
        simulator = StatevectorSimulator(3)
        basis = np.zeros(8, dtype=complex)
        basis[witness] = 1.0
        np.testing.assert_raises(
            AssertionError,
            np.testing.assert_allclose,
            simulator.run(good, initial_state=basis),
            simulator.run(faulty, initial_state=basis),
            atol=1e-9,
        )
