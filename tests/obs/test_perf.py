"""Performance observatory: schema, baselines, noise-aware comparison."""

import dataclasses
import json

import pytest

from repro.errors import BenchFormatError
from repro.obs import perf


def _record(workload="ghz_16q", samples=(1.0, 1.1, 0.9), mad_scale=1.0):
    timing = perf.TimingStats.from_samples(list(samples))
    if mad_scale != 1.0:
        timing = dataclasses.replace(timing, mad=timing.mad * mad_scale)
    return perf.BenchRecord(
        workload=workload,
        config={"system": "algebraic-gcd", "label": "algebraic-gcd"},
        timing=timing,
        counters={"sim.gates": 16},
        created_unix=1000.0,
    )


class TestStats:
    def test_median_odd_even(self):
        assert perf.median([3.0, 1.0, 2.0]) == 2.0
        assert perf.median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(BenchFormatError):
            perf.median([])

    def test_mad(self):
        assert perf.mad([1.0, 2.0, 3.0, 100.0]) == 1.0  # robust to outlier

    def test_timing_from_samples(self):
        timing = perf.TimingStats.from_samples([2.0, 1.0, 3.0])
        assert timing.median == 2.0
        assert timing.mad == 1.0
        assert timing.repeats == 3
        assert timing.samples == (2.0, 1.0, 3.0)

    def test_timing_requires_samples(self):
        with pytest.raises(BenchFormatError):
            perf.TimingStats.from_samples([])


class TestSchema:
    def test_round_trip(self, tmp_path):
        record = _record()
        path = perf.save_record(record, str(tmp_path))
        assert path.endswith("BENCH_ghz_16q.json")
        assert perf.load_record(path) == record

    def test_schema_version_stamped(self, tmp_path):
        path = perf.save_record(_record(), str(tmp_path))
        payload = json.loads(open(path).read())
        assert payload["schema"] == perf.BENCH_SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        payload = _record().to_dict()
        payload["schema"] = 99
        with pytest.raises(BenchFormatError, match="schema"):
            perf.BenchRecord.from_dict(payload)

    @pytest.mark.parametrize("missing", ["workload", "config", "timing"])
    def test_missing_field_rejected(self, missing):
        payload = _record().to_dict()
        del payload[missing]
        with pytest.raises(BenchFormatError, match=missing):
            perf.BenchRecord.from_dict(payload)

    def test_malformed_timing_rejected(self):
        payload = _record().to_dict()
        payload["timing"] = {"median_seconds": "fast"}
        with pytest.raises(BenchFormatError, match="timing"):
            perf.BenchRecord.from_dict(payload)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchFormatError, match="JSON"):
            perf.load_record(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BenchFormatError, match="cannot read"):
            perf.load_record(str(tmp_path / "BENCH_missing.json"))

    def test_list_records(self, tmp_path):
        perf.save_record(_record("b"), str(tmp_path))
        perf.save_record(_record("a"), str(tmp_path))
        (tmp_path / "notes.txt").write_text("ignored")
        names = [path.rsplit("/", 1)[-1] for path in perf.list_records(str(tmp_path))]
        assert names == ["BENCH_a.json", "BENCH_b.json"]
        assert perf.list_records(str(tmp_path / "absent")) == []


class TestCompare:
    def test_identical_records_ok(self):
        record = _record()
        comparison = perf.compare_records(record, record)
        assert comparison.verdict == "ok"
        assert not comparison.regressed and not comparison.improved
        assert comparison.ratio == 1.0

    def test_2x_slowdown_regresses(self):
        base = _record(samples=(1.0, 1.02, 0.98))
        slow = _record(samples=(2.0, 2.04, 1.96))
        comparison = perf.compare_records(base, slow)
        assert comparison.regressed
        assert comparison.verdict == "REGRESSED"
        assert comparison.ratio == pytest.approx(2.0)

    def test_2x_speedup_improves(self):
        base = _record(samples=(2.0, 2.04, 1.96))
        fast = _record(samples=(1.0, 1.02, 0.98))
        assert perf.compare_records(base, fast).verdict == "improved"

    def test_noise_band_absorbs_jitter(self):
        # 8% slower but MADs are huge: inside the 3-sigma band.
        base = _record(samples=(1.0, 1.2, 0.8))
        jittery = _record(samples=(1.08, 1.3, 0.86))
        assert perf.compare_records(base, jittery).verdict == "ok"

    def test_min_rel_floor(self):
        # Zero MAD (all samples equal) would make any delta regress;
        # the relative floor keeps a 3% shift inside the band.
        base = _record(samples=(1.0, 1.0, 1.0))
        close = _record(samples=(1.03, 1.03, 1.03))
        assert not perf.compare_records(base, close).regressed
        assert perf.compare_records(base, close, min_rel=0.01).regressed

    def test_workload_mismatch_raises(self):
        with pytest.raises(BenchFormatError, match="workload"):
            perf.compare_records(_record("a"), _record("b"))

    def test_config_mismatch_raises(self):
        base = _record()
        other = dataclasses.replace(base, config={"system": "numeric"})
        with pytest.raises(BenchFormatError, match="configurations"):
            perf.compare_records(base, other)


class TestWorkloads:
    def test_names_listed(self):
        names = perf.workload_names()
        assert "grover_8q" in names and "ghz_16q" in names

    def test_unknown_workload_raises(self):
        with pytest.raises(BenchFormatError, match="unknown workload"):
            perf.record_workload("nope", repeats=1)

    def test_bad_repeats_raises(self):
        with pytest.raises(BenchFormatError, match="repeats"):
            perf.record_workload("ghz_16q", repeats=0)

    def test_record_and_compare_round_trip(self, tmp_path):
        record = perf.record_workload("ghz_16q", repeats=3, warmup=0, now=5.0)
        assert record.workload == "ghz_16q"
        assert record.timing.repeats == 3
        assert record.created_unix == 5.0
        assert record.counters["sim.gates"] == 16
        path = perf.save_record(record, str(tmp_path))
        assert not perf.compare_records(perf.load_record(path), record).regressed


class TestReports:
    def test_record_report_mentions_workloads(self):
        text = perf.format_record_report([_record("a"), _record("b")])
        assert "a" in text and "b" in text and "median" in text

    def test_comparison_report_mentions_verdicts(self):
        base = _record(samples=(1.0, 1.02, 0.98))
        slow = _record(samples=(2.0, 2.04, 1.96))
        text = perf.format_comparison_report(
            [perf.compare_records(base, base), perf.compare_records(base, slow)]
        )
        assert "ok" in text and "REGRESSED" in text
