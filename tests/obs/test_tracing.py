"""Unit tests for span tracing (repro.obs.tracing)."""

import pytest

from repro.obs import Telemetry
from repro.obs.tracing import NULL_SPAN, Tracer


class TestTracer:
    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("work", key=1)
        assert span is NULL_SPAN
        with span:
            span.set(ignored=True)
        assert len(tracer) == 0
        assert NULL_SPAN.attrs == {}

    def test_spans_record_name_attrs_and_duration(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", gate="h") as span:
            span.set(nodes=7)
        (recorded,) = tracer.spans()
        assert recorded.name == "outer"
        assert recorded.attrs == {"gate": "h", "nodes": 7}
        assert recorded.seconds >= 0.0
        assert recorded.end >= recorded.start

    def test_nesting_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # completion order: inner first
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)

    def test_attrs_mutable_after_exit(self):
        # The simulator stamps node deltas after the span closes; the
        # ring stores the object, so late set() calls are visible.
        tracer = Tracer(enabled=True)
        span = tracer.span("sim.gate")
        with span:
            pass
        span.set(node_delta=3)
        assert tracer.spans()[0].attrs["node_delta"] == 3

    def test_ring_capacity_and_dropped(self):
        tracer = Tracer(enabled=True, capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_exception_marks_span(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        assert tracer.spans()[0].attrs["error"] == "RuntimeError"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True, capacity=0)

    def test_detail_requires_enabled(self):
        assert Tracer(enabled=False, detail=True).detail is False
        assert Tracer(enabled=True, detail=True).detail is True


class TestTelemetry:
    def test_default_is_metrics_only(self):
        telemetry = Telemetry()
        assert telemetry.metrics.enabled
        assert not telemetry.tracer.enabled
        assert telemetry.enabled

    def test_disabled(self):
        telemetry = Telemetry.disabled()
        assert not telemetry.metrics.enabled
        assert not telemetry.tracer.enabled
        assert not telemetry.enabled

    def test_tracing_factory(self):
        telemetry = Telemetry.tracing(detail=True, trace_capacity=8)
        assert telemetry.metrics.enabled
        assert telemetry.tracer.enabled
        assert telemetry.tracer.detail
        assert telemetry.tracer.capacity == 8
