"""End-to-end telemetry: registry-backed statistics, spans, schemas.

The uniform-table-schema regression here is the contract the
``profile`` CLI and ``evalsuite.reporting.hit_rate_rows`` build on:
every engine table -- unique tables, compute tables, weight memos, the
numeric complex table -- reports ``size/hits/misses/inserts/evictions``
under all four number systems.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.evalsuite.reporting import hit_rate_rows
from repro.obs import Telemetry, validate_chrome_trace, spans_to_chrome_trace
from repro.sim.simulator import Simulator

UNIFORM_KEYS = {"size", "hits", "misses", "inserts", "evictions"}

SYSTEMS = {
    "numeric-double": lambda n, **kw: numeric_manager(n, eps=1e-12, **kw),
    "numeric-single": lambda n, **kw: numeric_manager(
        n, eps=1e-6, precision="single", **kw
    ),
    "algebraic-q": algebraic_manager,
    "algebraic-gcd": algebraic_gcd_manager,
}


def _run_grover(factory, telemetry=None):
    kwargs = {} if telemetry is None else {"telemetry": telemetry}
    manager = factory(3, **kwargs)
    simulator = Simulator(manager)
    simulator.run(grover_circuit(3, 2))
    return manager


class TestUniformSchema:
    @pytest.mark.parametrize("kind", list(SYSTEMS))
    def test_every_table_reports_the_uniform_counters(self, kind):
        manager = _run_grover(SYSTEMS[kind])
        stats = manager.statistics()
        tables = {}
        tables.update(("ut." + name, t) for name, t in stats["unique_tables"].items())
        tables.update(("ct." + name, t) for name, t in stats["compute_tables"].items())
        tables.update(("w." + name, t) for name, t in stats["weights"].items())
        assert tables, f"no tables reported for {kind}"
        for name, table in tables.items():
            missing = UNIFORM_KEYS - set(table)
            assert not missing, f"{kind}/{name} missing {sorted(missing)}"
            for key in UNIFORM_KEYS:
                assert table[key] >= 0, f"{kind}/{name}[{key}] negative"

    @pytest.mark.parametrize("kind", list(SYSTEMS))
    def test_hit_rate_rows_cover_every_system(self, kind):
        manager = _run_grover(SYSTEMS[kind])
        rows = hit_rate_rows(manager.telemetry.metrics.snapshot())
        tables = {row[0] for row in rows}
        assert "dd.ct.apply" in tables
        assert any(table.startswith("dd.ut.") for table in tables)
        assert any(table.startswith("weights.") for table in tables)


class TestRegistryIntegration:
    def test_apply_routing_counters(self):
        manager = _run_grover(SYSTEMS["algebraic-q"])
        snapshot = manager.telemetry.metrics.snapshot()
        assert snapshot["dd.apply.direct"] == manager.apply_direct_ops
        assert snapshot["dd.apply.direct"] > 0
        assert snapshot["sim.gates"] == snapshot["dd.apply.direct"]
        assert snapshot["sim.state.peak_nodes"] >= snapshot["sim.state.nodes"]

    def test_system_metric_values_in_snapshot(self):
        gcd = _run_grover(SYSTEMS["algebraic-gcd"])
        snapshot = gcd.telemetry.metrics.snapshot()
        assert snapshot["rings.domega.bit_width"] >= 1
        assert snapshot["rings.domega.interned_values"] > 0
        numeric = _run_grover(SYSTEMS["numeric-double"])
        snapshot = numeric.telemetry.metrics.snapshot()
        assert snapshot["numeric.eps.lookups"] > 0
        assert (
            snapshot["numeric.eps.identifications"]
            == snapshot["numeric.eps.lookups"] - snapshot["numeric.eps.inserts"]
        )

    def test_disabled_telemetry_keeps_collector_statistics(self):
        manager = _run_grover(SYSTEMS["algebraic-q"], telemetry=Telemetry.disabled())
        stats = manager.statistics()
        # Hot tables always count; only push instruments are null.
        assert stats["compute_tables"]["apply"]["misses"] > 0
        assert manager.apply_direct_ops == 0  # push counter was null
        snapshot = manager.telemetry.metrics.snapshot()
        assert snapshot["dd.ct.apply.misses"] > 0

    def test_legacy_statistics_match_snapshot(self):
        manager = _run_grover(SYSTEMS["algebraic-q"])
        stats = manager.statistics()
        snapshot = manager.telemetry.metrics.snapshot()
        assert stats["vector_nodes"] == snapshot["dd.nodes.vector"]
        assert (
            stats["compute_tables"]["apply"]["hits"] == snapshot["dd.ct.apply.hits"]
        )


class TestTracingIntegration:
    def test_gate_spans_recorded(self):
        telemetry = Telemetry.tracing()
        manager = SYSTEMS["algebraic-q"](3, telemetry=telemetry)
        result = Simulator(manager).run(grover_circuit(3, 2))
        spans = telemetry.tracer.spans()
        names = {span.name for span in spans}
        assert "sim.gate" in names
        assert "dd.apply.direct" in names
        gate_spans = [span for span in spans if span.name == "sim.gate"]
        assert len(gate_spans) == len(result.trace.steps)
        assert all("node_delta" in span.attrs for span in gate_spans)
        document = spans_to_chrome_trace(spans)
        assert validate_chrome_trace(document) == []

    def test_detail_spans(self):
        telemetry = Telemetry.tracing(detail=True)
        manager = SYSTEMS["algebraic-q"](3, telemetry=telemetry)
        Simulator(manager).run(grover_circuit(3, 2))
        names = {span.name for span in telemetry.tracer.spans()}
        assert "dd.ut.lookup" in names
        assert "dd.normalize" in names

    def test_sanitizer_spans(self):
        telemetry = Telemetry.tracing()
        manager = SYSTEMS["algebraic-q"](3, telemetry=telemetry)
        simulator = Simulator(manager, sanitize="check-on-root")
        simulator.run(grover_circuit(3, 2))
        names = {span.name for span in telemetry.tracer.spans()}
        assert "dd.sanitize.walk" in names
