"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_set_max(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set_max(2)
        assert gauge.value == 3
        gauge.set_max(7)
        assert gauge.value == 7
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        stats = histogram.statistics()
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(106.2)
        assert stats["buckets"] == {"le_1": 2, "le_10": 1, "inf": 1}

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_disabled_registry_hands_out_nulls(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        gauge = registry.gauge("y")
        histogram = registry.histogram("z")
        assert counter is NULL_COUNTER
        assert gauge is NULL_GAUGE
        assert histogram is NULL_HISTOGRAM
        counter.inc()
        gauge.set(9)
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0
        # Names are still registered (so kind checks keep working).
        assert registry.names() == ["x", "y", "z"]
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_flattens_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 5
        assert snap["h"]["count"] == 1

    def test_collectors_merge_last(self):
        registry = MetricsRegistry()
        registry.counter("push").inc()
        registry.register_collector(lambda: {"pull.a": 10, "push": 99})
        snap = registry.snapshot()
        assert snap["pull.a"] == 10
        assert snap["push"] == 99  # collector may refresh a name it owns

    def test_collectors_run_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.register_collector(lambda: {"pull.a": 1})
        assert registry.snapshot()["pull.a"] == 1

    def test_value_convenience(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        assert registry.value("c") == 3
        assert registry.value("missing", default=-1) == -1
