"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_set_max(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set_max(2)
        assert gauge.value == 3
        gauge.set_max(7)
        assert gauge.value == 7
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        stats = histogram.statistics()
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(106.2)
        assert stats["buckets"] == {"le_1": 2, "le_10": 1, "inf": 1}

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a.b")

    def test_disabled_registry_hands_out_nulls(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x")
        gauge = registry.gauge("y")
        histogram = registry.histogram("z")
        assert counter is NULL_COUNTER
        assert gauge is NULL_GAUGE
        assert histogram is NULL_HISTOGRAM
        counter.inc()
        gauge.set(9)
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0
        # Names are still registered (so kind checks keep working).
        assert registry.names() == ["x", "y", "z"]
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_flattens_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 5
        assert snap["h"]["count"] == 1

    def test_collectors_merge_last(self):
        registry = MetricsRegistry()
        registry.counter("push").inc()
        registry.register_collector(lambda: {"pull.a": 10, "push": 99})
        snap = registry.snapshot()
        assert snap["pull.a"] == 10
        assert snap["push"] == 99  # collector may refresh a name it owns

    def test_collectors_run_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.register_collector(lambda: {"pull.a": 1})
        assert registry.snapshot()["pull.a"] == 1

    def test_value_convenience(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        assert registry.value("c") == 3
        assert registry.value("missing", default=-1) == -1


class TestMergeSnapshotErrors:
    """Typed-error edge cases of merge_snapshots (SnapshotMergeError)."""

    def test_empty_snapshot_list_raises(self):
        from repro.errors import SnapshotMergeError
        from repro.obs.metrics import merge_snapshots

        with pytest.raises(SnapshotMergeError, match="empty snapshot list"):
            merge_snapshots([])

    def test_disjoint_instrument_sets_raise(self):
        from repro.errors import SnapshotMergeError
        from repro.obs.metrics import merge_snapshots

        with pytest.raises(SnapshotMergeError, match="shares no instrument"):
            merge_snapshots([{"sim.gates": 3}, {"other.counter": 1}])

    def test_empty_member_snapshots_merge_fine(self):
        # A worker that died before its first snapshot ships {}.
        from repro.obs.metrics import merge_snapshots

        merged = merge_snapshots([{}, {"sim.gates": 3}, {}])
        assert merged == {"sim.gates": 3}

    def test_mismatched_histogram_buckets_raise(self):
        from repro.errors import SnapshotMergeError
        from repro.obs.metrics import merge_snapshots

        left = {"count": 1, "sum": 0.5, "mean": 0.5, "buckets": {"le_1": 1, "inf": 0}}
        right = {"count": 1, "sum": 2.0, "mean": 2.0, "buckets": {"inf": 1}}
        with pytest.raises(SnapshotMergeError, match="bucket boundaries"):
            merge_snapshots([{"h": left}, {"h": right}])

    def test_empty_buckets_merge_with_anything(self):
        # Disabled registries emit histograms with no buckets at all;
        # they must not poison a fleet merge.
        from repro.obs.metrics import merge_snapshots

        empty = {"count": 0, "sum": 0.0, "mean": 0.0, "buckets": {}}
        full = {"count": 2, "sum": 3.0, "mean": 1.5, "buckets": {"le_1": 1, "inf": 1}}
        merged = merge_snapshots([{"h": empty}, {"h": full}])
        assert merged["h"]["buckets"] == {"le_1": 1, "inf": 1}
        assert merged["h"]["count"] == 2


class TestTraceDroppedCounter:
    """Satellite: the tracer ring overflow is a first-class metric."""

    def test_visible_in_snapshot(self):
        from repro.obs import Telemetry

        scope = Telemetry.tracing(trace_capacity=2)
        for index in range(5):
            with scope.tracer.span("sim.gate", index=index):
                pass
        snapshot = scope.metrics.snapshot()
        assert snapshot["obs.trace.dropped"] == 3
        assert scope.tracer.dropped == 3

    def test_zero_when_ring_never_overflows(self):
        from repro.obs import Telemetry

        scope = Telemetry()
        assert scope.metrics.snapshot()["obs.trace.dropped"] == 0

    def test_sums_across_merge_snapshots(self):
        from repro.obs import Telemetry
        from repro.obs.metrics import merge_snapshots

        snapshots = []
        for overflow in (2, 3):
            scope = Telemetry.tracing(trace_capacity=1)
            for index in range(overflow + 1):
                with scope.tracer.span("sim.gate", index=index):
                    pass
            snapshots.append(scope.metrics.snapshot())
        merged = merge_snapshots(snapshots)
        assert merged["obs.trace.dropped"] == 5
