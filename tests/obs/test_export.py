"""Exporter tests: JSONL, Chrome trace JSON, validator, aggregation."""

import json

import pytest

from repro.obs import (
    aggregate_spans,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracing import Tracer


def _sample_tracer():
    tracer = Tracer(enabled=True)
    with tracer.span("sim.gate", gate="h", index=0):
        with tracer.span("dd.apply.direct"):
            pass
    with tracer.span("sim.gate", gate="x", index=1, payload=object()):
        pass
    return tracer


class TestJsonl:
    def test_one_object_per_span(self):
        tracer = _sample_tracer()
        lines = spans_to_jsonl(tracer.spans()).splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["name"] == "dd.apply.direct"
        assert set(first) == {"name", "start", "seconds", "depth", "attrs"}

    def test_write_jsonl(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(tracer.spans(), str(path)) == 3
        content = path.read_text()
        assert content.endswith("\n")
        assert len(content.splitlines()) == 3

    def test_write_jsonl_empty(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_jsonl([], str(path)) == 0
        assert path.read_text() == ""


class TestChromeTrace:
    def test_shape(self):
        tracer = _sample_tracer()
        document = spans_to_chrome_trace(tracer.spans(), process_name="test")
        events = document["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "test"},
        }
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 3
        # Sorted by start: the outer sim.gate opens before its child.
        assert complete[0]["name"] == "sim.gate"
        assert complete[1]["name"] == "dd.apply.direct"
        assert complete[0]["cat"] == "sim"
        assert complete[1]["cat"] == "dd"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Non-JSON attr values are repr()'d, never dropped.
        assert complete[2]["args"]["payload"].startswith("<object object")
        assert validate_chrome_trace(document) == []

    def test_write_chrome_trace_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.json"
        document = write_chrome_trace(tracer.spans(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == document
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def test_top_level_must_be_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_bad_events_reported_individually(self):
        document = {
            "traceEvents": [
                {"name": "ok", "ph": "M", "pid": 0, "tid": 0},
                {"name": "bad-phase", "ph": "B", "pid": 0, "tid": 0},
                {"name": "", "ph": "M", "pid": 0, "tid": 0},
                {"name": "bad-pid", "ph": "M", "pid": "zero", "tid": 0},
                {"name": "bad-ts", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 0},
                {"name": "bad-args", "ph": "M", "pid": 0, "tid": 0, "args": [1]},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(document)
        assert len(problems) == 6
        assert any("unknown phase" in problem for problem in problems)
        assert any("'ts'" in problem for problem in problems)


class TestAggregate:
    def test_totals_sorted_descending(self):
        tracer = _sample_tracer()
        rows = aggregate_spans(tracer.spans())
        names = [row[0] for row in rows]
        assert set(names) == {"sim.gate", "dd.apply.direct"}
        by_name = {row[0]: row for row in rows}
        name, count, total, mean, peak = by_name["sim.gate"]
        assert count == 2
        assert total == pytest.approx(mean * 2)
        assert peak <= total
        totals = [row[2] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_empty(self):
        assert aggregate_spans([]) == []
