"""Exporter tests: JSONL, Chrome trace JSON, validator, aggregation."""

import json

import pytest

from repro.obs import (
    aggregate_spans,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracing import Tracer


def _sample_tracer():
    tracer = Tracer(enabled=True)
    with tracer.span("sim.gate", gate="h", index=0):
        with tracer.span("dd.apply.direct"):
            pass
    with tracer.span("sim.gate", gate="x", index=1, payload=object()):
        pass
    return tracer


class TestJsonl:
    def test_one_object_per_span(self):
        tracer = _sample_tracer()
        lines = spans_to_jsonl(tracer.spans()).splitlines()
        assert len(lines) == 3
        first = json.loads(lines[0])
        assert first["name"] == "dd.apply.direct"
        assert set(first) == {
            "name", "start", "seconds", "depth", "pid", "tid", "attrs",
        }
        assert (first["pid"], first["tid"]) == (0, 0)  # local track

    def test_write_jsonl(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(tracer.spans(), str(path)) == 3
        content = path.read_text()
        assert content.endswith("\n")
        assert len(content.splitlines()) == 3

    def test_write_jsonl_empty(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_jsonl([], str(path)) == 0
        assert path.read_text() == ""


class TestChromeTrace:
    def test_shape(self):
        tracer = _sample_tracer()
        document = spans_to_chrome_trace(tracer.spans(), process_name="test")
        events = document["traceEvents"]
        assert events[0] == {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "test"},
        }
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 3
        # Sorted by start: the outer sim.gate opens before its child.
        assert complete[0]["name"] == "sim.gate"
        assert complete[1]["name"] == "dd.apply.direct"
        assert complete[0]["cat"] == "sim"
        assert complete[1]["cat"] == "dd"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Non-JSON attr values are repr()'d, never dropped.
        assert complete[2]["args"]["payload"].startswith("<object object")
        assert validate_chrome_trace(document) == []

    def test_write_chrome_trace_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.json"
        document = write_chrome_trace(tracer.spans(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == document
        assert validate_chrome_trace(loaded) == []


class TestValidator:
    def test_top_level_must_be_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_bad_events_reported_individually(self):
        document = {
            "traceEvents": [
                {"name": "ok", "ph": "M", "pid": 0, "tid": 0},
                {"name": "bad-phase", "ph": "B", "pid": 0, "tid": 0},
                {"name": "", "ph": "M", "pid": 0, "tid": 0},
                {"name": "bad-pid", "ph": "M", "pid": "zero", "tid": 0},
                {"name": "bad-ts", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 0},
                {"name": "bad-args", "ph": "M", "pid": 0, "tid": 0, "args": [1]},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(document)
        assert len(problems) == 6
        assert any("unknown phase" in problem for problem in problems)
        assert any("'ts'" in problem for problem in problems)


class TestAggregate:
    def test_totals_sorted_descending(self):
        tracer = _sample_tracer()
        rows = aggregate_spans(tracer.spans())
        names = [row[0] for row in rows]
        assert set(names) == {"sim.gate", "dd.apply.direct"}
        by_name = {row[0]: row for row in rows}
        name, count, total, mean, peak = by_name["sim.gate"]
        assert count == 2
        assert total == pytest.approx(mean * 2)
        assert peak <= total
        totals = [row[2] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_empty(self):
        assert aggregate_spans([]) == []


class TestChromeTraceEdgeCases:
    def test_empty_span_list(self):
        document = spans_to_chrome_trace([], process_name="empty")
        events = document["traceEvents"]
        # Still a valid document: the pid-0 metadata track and nothing else.
        assert [event["ph"] for event in events] == ["M"]
        assert events[0]["args"]["name"] == "empty"
        assert validate_chrome_trace(document) == []

    def test_nested_spans_share_track_and_nest_in_time(self):
        tracer = _sample_tracer()
        document = spans_to_chrome_trace(tracer.spans())
        outer, inner = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X" and event["name"] in ("sim.gate", "dd.apply.direct")
        ][:2]
        assert (outer["pid"], outer["tid"]) == (inner["pid"], inner["tid"])
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_multi_process_track_assignment(self):
        tracer = Tracer(enabled=True)
        with tracer.span("exec.batch"):
            pass
        worker_span = tracer.spans()[0]
        adopted = Tracer(enabled=True)
        with adopted.span("exec.batch"):
            pass
        local, = adopted.spans()
        foreign = type(worker_span)(adopted, "exec.job", {"worker": True})
        foreign.start, foreign.end = local.start, local.end
        foreign.pid, foreign.tid = 4242, 7
        adopted.adopt(foreign)
        document = spans_to_chrome_trace(adopted.spans())
        assert validate_chrome_trace(document) == []
        tracks = {
            event["pid"]: event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert set(tracks) == {0, 4242}
        assert tracks[4242] == "repro-qmdd worker 4242"
        job_event = next(
            event
            for event in document["traceEvents"]
            if event["ph"] == "X" and event["name"] == "exec.job"
        )
        assert (job_event["pid"], job_event["tid"]) == (4242, 7)

    def test_process_names_override(self):
        tracer = Tracer(enabled=True)
        with tracer.span("exec.job"):
            pass
        span, = tracer.spans()
        span.pid = 99
        document = spans_to_chrome_trace(
            tracer.spans(), process_names={99: "worker-a", 0: "driver"}
        )
        tracks = {
            event["pid"]: event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert tracks == {0: "driver", 99: "worker-a"}


class TestValidatorRejections:
    def test_trace_events_must_be_list(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_complete_event_requires_duration(self):
        document = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1},
            ]
        }
        problems = validate_chrome_trace(document)
        assert any("'dur'" in problem for problem in problems)

    def test_negative_duration_rejected(self):
        document = {
            "traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1, "dur": -5},
            ]
        }
        assert validate_chrome_trace(document) != []

    def test_round_tripped_multiprocess_trace_stays_valid(self, tmp_path):
        tracer = _sample_tracer()
        for index, span in enumerate(tracer.spans()):
            span.pid = 100 + index
        path = tmp_path / "multi.json"
        write_chrome_trace(tracer.spans(), str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []
