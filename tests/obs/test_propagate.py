"""Trace-context propagation and cross-process span re-parenting."""

import pytest

from repro.obs import (
    TraceContext,
    export_worker_spans,
    new_span_id,
    new_trace_id,
    reparent_spans,
)
from repro.obs.tracing import Tracer


class TestIds:
    def test_sizes_and_uniqueness(self):
        trace_ids = {new_trace_id() for _ in range(64)}
        span_ids = {new_span_id() for _ in range(64)}
        assert len(trace_ids) == 64 and len(span_ids) == 64
        assert all(len(tid) == 32 for tid in trace_ids)
        assert all(len(sid) == 16 for sid in span_ids)
        assert all(int(tid, 16) >= 0 for tid in trace_ids)


class TestTraceContext:
    def test_for_tracer_anchors_epoch(self):
        tracer = Tracer(enabled=True)
        context = TraceContext.for_tracer(tracer)
        assert context.epoch_unix == tracer.epoch_unix
        assert len(context.trace_id) == 32
        assert len(context.parent_span_id) == 16

    def test_dict_round_trip(self):
        tracer = Tracer(enabled=True)
        context = TraceContext.for_tracer(tracer)
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_picklable(self):
        import pickle

        context = TraceContext.for_tracer(Tracer(enabled=True))
        assert pickle.loads(pickle.dumps(context)) == context


def _worker_payload(context, names=("exec.job", "sim.gate")):
    """A worker-side tracer with one nested span pair, exported."""
    worker = Tracer(enabled=True)
    with worker.span(names[0], label="job-0"):
        with worker.span(names[1], gate="h"):
            pass
    return worker, export_worker_spans(worker, context)


class TestExportWorkerSpans:
    def test_payload_shape(self):
        coordinator = Tracer(enabled=True)
        context = TraceContext.for_tracer(coordinator)
        worker, payload = _worker_payload(context)
        assert payload["trace_id"] == context.trace_id
        assert payload["parent_span_id"] == context.parent_span_id
        assert payload["epoch_unix"] == worker.epoch_unix
        assert payload["dropped"] == 0
        assert isinstance(payload["pid"], int)
        names = [record["name"] for record in payload["spans"]]
        assert names == ["sim.gate", "exec.job"]  # completion order

    def test_payload_is_json_safe(self):
        import json

        context = TraceContext.for_tracer(Tracer(enabled=True))
        _, payload = _worker_payload(context)
        assert json.loads(json.dumps(payload)) == payload

    def test_without_context(self):
        _, payload = _worker_payload(None)
        assert payload["trace_id"] is None
        assert payload["parent_span_id"] is None


class TestReparentSpans:
    def test_clock_offset_alignment(self):
        coordinator = Tracer(enabled=True)
        context = TraceContext.for_tracer(coordinator)
        worker, payload = _worker_payload(context)
        # Pretend the worker's clock epoch started 10s after the
        # coordinator's: all adopted times must shift by +10s.
        payload["epoch_unix"] = coordinator.epoch_unix + 10.0
        adopted = reparent_spans(coordinator, payload, parent_depth=0)
        original = payload["spans"]
        for span, record in zip(adopted, original):
            assert span.start == pytest.approx(record["start"] + 10.0)
            assert span.seconds == pytest.approx(record["seconds"])

    def test_depth_rebase_and_tags(self):
        coordinator = Tracer(enabled=True)
        context = TraceContext.for_tracer(coordinator)
        _, payload = _worker_payload(context)
        adopted = reparent_spans(coordinator, payload, parent_depth=2, tid=3)
        by_name = {span.name: span for span in adopted}
        job, gate = by_name["exec.job"], by_name["sim.gate"]
        assert job.depth == 3  # parent_depth + 1 + worker depth 0
        assert gate.depth == 4
        # Only worker-side roots link to the exec.batch span id.
        assert job.attrs["parent_span_id"] == context.parent_span_id
        assert "parent_span_id" not in gate.attrs
        for span in adopted:
            assert span.attrs["trace_id"] == context.trace_id
            assert span.attrs["worker_pid"] == payload["pid"]
            assert span.pid == payload["pid"]
            assert span.tid == 3

    def test_lands_in_coordinator_ring(self):
        coordinator = Tracer(enabled=True)
        context = TraceContext.for_tracer(coordinator)
        _, payload = _worker_payload(context)
        assert len(coordinator) == 0
        adopted = reparent_spans(coordinator, payload)
        assert coordinator.spans() == adopted

    def test_adopt_overflow_counts_dropped(self):
        coordinator = Tracer(enabled=True, capacity=1)
        context = TraceContext.for_tracer(coordinator)
        _, payload = _worker_payload(context)
        reparent_spans(coordinator, payload)
        assert len(coordinator) == 1
        assert coordinator.dropped == 1  # second adopted span evicted one
