"""Tests for the Clifford+T approximation pipeline."""

import cmath
import math

import numpy as np
import pytest

from repro.approx.clifford_t import (
    approximate_circuit,
    approximate_phase,
    decompose_controlled_phase,
    word_database_size,
)
from repro.circuits.circuit import Circuit
from repro.circuits.gates import rx_gate, ry_gate
from repro.errors import ApproximationError
from repro.sim.statevector import StatevectorSimulator

# A small database keeps these tests fast; quality assertions are scaled
# to the budget.
SMALL = dict(max_words=2000, max_length=18)


def word_unitary(result):
    matrix = np.eye(2, dtype=complex)
    for gate in result.gates:
        matrix = np.array(gate.matrix, dtype=complex).reshape(2, 2) @ matrix
    return matrix


def phase_free_distance(u, v):
    return math.sqrt(max(0.0, 4.0 - 2.0 * abs(np.trace(u.conj().T @ v))))


class TestApproximatePhase:
    @pytest.mark.parametrize("k", range(-8, 9))
    def test_pi_over_4_multiples_exact(self, k):
        result = approximate_phase(k * math.pi / 4, **SMALL)
        assert result.error == 0.0
        target = np.diag([1, cmath.exp(1j * k * math.pi / 4)])
        np.testing.assert_allclose(word_unitary(result), target, atol=1e-12)

    @pytest.mark.parametrize("theta", [0.3, -0.77, 1.9, 0.05])
    def test_error_reported_matches_actual(self, theta):
        result = approximate_phase(theta, **SMALL)
        target = np.diag([1, cmath.exp(1j * theta)])
        actual = phase_free_distance(word_unitary(result), target)
        assert actual == pytest.approx(result.error, abs=1e-9)

    @pytest.mark.parametrize("theta", [0.3, -0.77, 1.9])
    def test_error_beats_identity_baseline(self, theta):
        """The search must improve on doing nothing (and on bare T runs)."""
        result = approximate_phase(theta, **SMALL)
        target = np.diag([1, cmath.exp(1j * theta)])
        baseline = min(
            phase_free_distance(np.diag([1, cmath.exp(1j * k * math.pi / 4)]), target)
            for k in range(8)
        )
        assert result.error <= baseline + 1e-12

    def test_word_gates_are_exact(self):
        result = approximate_phase(0.3, **SMALL)
        assert all(gate.is_exactly_representable for gate in result.gates)

    def test_caching(self):
        first = approximate_phase(0.123, **SMALL)
        second = approximate_phase(0.123, **SMALL)
        assert first is second

    def test_database_size(self):
        assert word_database_size(**SMALL) == 2000


class TestControlledPhaseDecomposition:
    @pytest.mark.parametrize("num_controls", [0, 1, 2, 3])
    def test_matches_dense(self, num_controls):
        theta = 0.7321
        n = num_controls + 1
        controls = tuple(range(num_controls))
        target = num_controls
        circuit = decompose_controlled_phase(n, theta, controls, target)
        reference = Circuit(n)
        reference.append(
            __import__("repro.circuits.gates", fromlist=["phase_gate"]).phase_gate(theta),
            target,
            controls=controls,
        )
        simulator = StatevectorSimulator(n)
        np.testing.assert_allclose(
            simulator.unitary(circuit), simulator.unitary(reference), atol=1e-9
        )

    def test_only_cx_and_phases(self):
        circuit = decompose_controlled_phase(3, 0.5, (0, 1), 2)
        for operation in circuit:
            assert operation.gate.name in ("p", "x")
            if operation.gate.name == "x":
                assert len(operation.controls) == 1  # plain CX only
            else:
                assert not operation.controls  # phases are bare


class TestApproximateCircuit:
    def test_exact_circuit_untouched(self):
        circuit = Circuit(2).h(0).t(1).cx(0, 1)
        compiled = approximate_circuit(circuit, **SMALL)
        assert [op.gate.name for op in compiled] == ["h", "t", "x"]

    def test_compiled_circuit_is_exact(self):
        circuit = Circuit(2).rz(0.3, 0).cp(0.9, 0, 1).ry(0.2, 1)
        compiled = approximate_circuit(circuit, **SMALL)
        assert compiled.is_exactly_representable
        assert len(compiled) > len(circuit)

    @pytest.mark.parametrize(
        "build",
        [
            lambda c: c.p(0.7, 0),
            lambda c: c.rz(0.7, 0),
            lambda c: c.rx(0.7, 0),
            lambda c: c.ry(0.7, 0),
            lambda c: c.cp(0.7, 0, 1),
            lambda c: c.mcp(0.7, [0, 1], 2),
        ],
    )
    def test_state_close_to_original(self, build):
        """Compiled circuit acting on a superposition stays close to the
        rotation circuit (up to global phase)."""
        n = 3
        circuit = Circuit(n)
        for q in range(n):
            circuit.h(q)
        build(circuit)
        compiled = approximate_circuit(circuit, **SMALL)
        simulator = StatevectorSimulator(n)
        original = simulator.run(circuit)
        approximated = simulator.run(compiled)
        overlap = abs(np.vdot(original, approximated))
        assert overlap > 0.99

    def test_unsupported_gate_raises(self):
        from repro.circuits.gates import u_gate

        circuit = Circuit(1)
        circuit.append(u_gate(0.3, 0.2, 0.1), 0)
        with pytest.raises(ApproximationError):
            approximate_circuit(circuit, **SMALL)

    def test_negative_controls_rejected(self):
        from repro.circuits.gates import rz_gate

        circuit = Circuit(2)
        circuit.append(rz_gate(0.3), 1, negative_controls=[0])
        with pytest.raises(ApproximationError):
            approximate_circuit(circuit, **SMALL)

    def test_algebraic_simulation_of_compiled_circuit(self):
        """The whole point: the compiled circuit simulates exactly."""
        from repro.dd.manager import algebraic_manager
        from repro.sim.simulator import Simulator

        circuit = Circuit(2).h(0).cp(0.37, 0, 1).h(1)
        compiled = approximate_circuit(circuit, **SMALL)
        result = Simulator(algebraic_manager(2)).run(compiled)
        dense = StatevectorSimulator(2).run(compiled)
        np.testing.assert_allclose(result.final_amplitudes(), dense, atol=1e-9)
