"""Tests for the QMDD circuit simulator against the dense reference."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, qft_circuit, uniform_superposition
from repro.dd.manager import algebraic_gcd_manager, algebraic_manager, numeric_manager
from repro.errors import SimulationError
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator

ALL_MANAGERS = [
    ("numeric", lambda n: numeric_manager(n, eps=0.0)),
    ("numeric-tol", lambda n: numeric_manager(n, eps=1e-10)),
    ("algebraic-q", algebraic_manager),
    ("algebraic-gcd", algebraic_gcd_manager),
]


def random_clifford_t_circuit(num_qubits, num_gates, seed):
    """A random exactly-representable circuit (like the paper's Grover/BWT)."""
    import random

    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"random_{seed}")
    for _ in range(num_gates):
        choice = rng.randrange(6)
        qubit = rng.randrange(num_qubits)
        if choice == 0:
            circuit.h(qubit)
        elif choice == 1:
            circuit.t(qubit)
        elif choice == 2:
            circuit.s(qubit)
        elif choice == 3:
            circuit.x(qubit)
        elif choice == 4 and num_qubits > 1:
            other = rng.randrange(num_qubits - 1)
            other = other if other != qubit else num_qubits - 1
            circuit.cx(qubit, other)
        else:
            circuit.z(qubit)
    return circuit


class TestAgainstDenseReference:
    @pytest.mark.parametrize("kind,factory", ALL_MANAGERS, ids=[k for k, _ in ALL_MANAGERS])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_clifford_t(self, kind, factory, seed):
        n = 4
        circuit = random_clifford_t_circuit(n, 25, seed)
        result = Simulator(factory(n)).run(circuit)
        expected = StatevectorSimulator(n).run(circuit)
        np.testing.assert_allclose(result.final_amplitudes(), expected, atol=1e-9)

    @pytest.mark.parametrize("kind,factory", ALL_MANAGERS, ids=[k for k, _ in ALL_MANAGERS])
    def test_ghz(self, kind, factory):
        result = Simulator(factory(4)).run(ghz_circuit(4))
        expected = StatevectorSimulator(4).run(ghz_circuit(4))
        np.testing.assert_allclose(result.final_amplitudes(), expected, atol=1e-12)
        assert result.node_count == 7  # GHZ is linear-size (2n-1 nodes)

    def test_qft_numeric_only(self):
        """The 5-qubit QFT has pi/8 phases -- numeric simulation works,
        algebraic must refuse (paper: GSE needed Quipper preprocessing)."""
        circuit = qft_circuit(5)
        result = Simulator(numeric_manager(5)).run(circuit)
        expected = StatevectorSimulator(5).run(circuit)
        np.testing.assert_allclose(result.final_amplitudes(), expected, atol=1e-9)
        with pytest.raises(SimulationError):
            Simulator(algebraic_manager(5)).run(circuit)

    def test_uniform_superposition_is_one_node_per_level(self):
        result = Simulator(algebraic_manager(6)).run(uniform_superposition(6))
        assert result.node_count == 6
        np.testing.assert_allclose(
            result.final_amplitudes(), np.full(64, 1 / 8.0), atol=1e-12
        )


class TestExactness:
    def test_algebraic_amplitudes_are_exact(self):
        """After H T H Tdg ... the algebraic amplitudes are exact ring
        elements; verify one against its closed form."""
        from repro.rings.qomega import QOmega

        circuit = Circuit(1).h(0).t(0).h(0)
        result = Simulator(algebraic_manager(1)).run(circuit)
        amp0 = result.manager.amplitude(result.state, 0)
        # HTH|0> amplitude 0: (1 + omega)/2
        expected = (QOmega.one() + QOmega.omega_power(1)) * QOmega.one_over_sqrt2(2)
        assert amp0 == expected

    def test_numeric_eps0_misses_redundancy(self):
        """(H;H)^k on all qubits: algebraic recognises |0..0> exactly;
        eps=0 numeric typically accumulates distinct float weights."""
        n = 3
        circuit = Circuit(n)
        for _ in range(4):
            for q in range(n):
                circuit.h(q)
        alg = Simulator(algebraic_manager(n)).run(circuit)
        assert alg.manager.edges_equal(alg.state, alg.manager.zero_state())

    def test_trace_metrics_recorded(self):
        circuit = ghz_circuit(3)
        result = Simulator(algebraic_manager(3)).run(circuit)
        trace = result.trace
        assert len(trace.steps) == len(circuit)
        assert trace.final_node_count == 5  # GHZ on 3 qubits: 2n-1
        assert trace.peak_node_count >= 1
        assert trace.total_seconds > 0
        assert trace.steps[0].gate_name == "h"

    def test_bit_width_recording(self):
        circuit = Circuit(2).h(0).t(0).h(0).t(0)
        result = Simulator(algebraic_manager(2), record_bit_widths=True).run(circuit)
        assert all(step.max_bit_width >= 1 for step in result.trace.steps)


class TestUnitary:
    @pytest.mark.parametrize("kind,factory", ALL_MANAGERS, ids=[k for k, _ in ALL_MANAGERS])
    def test_circuit_unitary_matches_dense(self, kind, factory):
        circuit = Circuit(3).h(0).cx(0, 1).t(2).ccx(0, 2, 1)
        manager = factory(3)
        unitary = Simulator(manager).unitary(circuit)
        expected = StatevectorSimulator(3).unitary(circuit)
        np.testing.assert_allclose(manager.to_matrix(unitary), expected, atol=1e-9)

    def test_unitary_of_inverse_is_adjoint(self):
        circuit = Circuit(2).h(0).t(1).cx(0, 1)
        manager = algebraic_manager(2)
        simulator = Simulator(manager)
        forward = manager.to_matrix(simulator.unitary(circuit))
        backward = manager.to_matrix(simulator.unitary(circuit.inverse()))
        np.testing.assert_allclose(backward, forward.conj().T, atol=1e-9)


class TestValidation:
    def test_width_mismatch(self):
        with pytest.raises(SimulationError):
            Simulator(numeric_manager(2)).run(Circuit(3).h(0))

    def test_gate_cache_reuse(self):
        # Kernel path: the ten identical gates share one prepared kernel.
        simulator = Simulator(algebraic_manager(2))
        circuit = Circuit(2)
        for _ in range(10):
            circuit.h(0)
        simulator.run(circuit)
        assert len(simulator._kernel_cache) == 1
        # Matrix-DD fallback: they share one built gate DD.
        simulator = Simulator(algebraic_manager(2), use_apply_kernel=False)
        simulator.run(circuit)
        assert len(simulator._gate_cache) == 1

    def test_step_callback(self):
        seen = []
        Simulator(numeric_manager(2)).run(
            ghz_circuit(2), step_callback=lambda i, s: seen.append(i)
        )
        assert seen == [0, 1]

    def test_initial_state_override(self):
        manager = algebraic_manager(2)
        simulator = Simulator(manager)
        start = manager.basis_state(3)
        result = simulator.run(Circuit(2).x(0), initial_state=start)
        np.testing.assert_allclose(
            result.final_amplitudes(), [0, 1, 0, 0], atol=1e-12
        )
