"""Tests for measurement sampling and the paper's accuracy metric."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, uniform_superposition
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import SimulationError
from repro.sim.accuracy import state_error, trace_errors
from repro.sim.measure import measure_probabilities, sample_counts
from repro.sim.simulator import Simulator


class TestMeasureProbabilities:
    def test_basis_state(self):
        manager = algebraic_manager(3)
        state = manager.basis_state(0b101)
        assert measure_probabilities(manager, state, 0) == pytest.approx(1.0)
        assert measure_probabilities(manager, state, 1) == pytest.approx(0.0)
        assert measure_probabilities(manager, state, 2) == pytest.approx(1.0)

    def test_plus_state(self):
        result = Simulator(algebraic_manager(2)).run(Circuit(2).h(0))
        p = measure_probabilities(result.manager, result.state, 0)
        assert p == pytest.approx(0.5)

    def test_ghz_correlations(self):
        result = Simulator(algebraic_manager(3)).run(ghz_circuit(3))
        for qubit in range(3):
            assert measure_probabilities(result.manager, result.state, qubit) == pytest.approx(0.5)

    def test_zero_state_rejected(self):
        manager = numeric_manager(2)
        with pytest.raises(SimulationError):
            measure_probabilities(manager, manager.zero_edge(), 0)


class TestSampling:
    def test_basis_state_deterministic(self):
        manager = algebraic_manager(3)
        counts = sample_counts(manager, manager.basis_state(5), shots=50, seed=1)
        assert counts == {5: 50}

    def test_ghz_only_extremes(self):
        result = Simulator(algebraic_manager(4)).run(ghz_circuit(4))
        counts = sample_counts(result.manager, result.state, shots=200, seed=7)
        assert set(counts) <= {0, 0b1111}
        assert sum(counts.values()) == 200
        # Both outcomes should appear with ~50% each.
        assert 60 <= counts.get(0, 0) <= 140

    def test_uniform_sampling_covers_space(self):
        result = Simulator(algebraic_manager(3)).run(uniform_superposition(3))
        counts = sample_counts(result.manager, result.state, shots=800, seed=3)
        assert len(counts) == 8  # all outcomes observed

    def test_shots_validation(self):
        manager = algebraic_manager(1)
        with pytest.raises(SimulationError):
            sample_counts(manager, manager.zero_state(), shots=-1)
        assert sample_counts(manager, manager.zero_state(), shots=0) == {}

    def test_sampling_matches_amplitudes(self):
        circuit = Circuit(2).h(0).t(0).h(0).h(1)
        result = Simulator(algebraic_manager(2)).run(circuit)
        probabilities = np.abs(result.final_amplitudes()) ** 2
        counts = sample_counts(result.manager, result.state, shots=4000, seed=11)
        for index in range(4):
            frequency = counts.get(index, 0) / 4000
            assert abs(frequency - probabilities[index]) < 0.05


class TestAccuracyMetric:
    def test_identical_vectors(self):
        v = np.array([1, 0, 0, 0], dtype=complex)
        assert state_error(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_length_error_is_forgiven(self):
        """Footnote 8: the numeric vector is rescaled to norm 1."""
        v_alg = np.array([1, 0], dtype=complex)
        v_num = np.array([0.5, 0], dtype=complex)
        assert state_error(v_num, v_alg) == pytest.approx(0.0, abs=1e-12)

    def test_global_phase_is_forgiven(self):
        v_alg = np.array([1, 0], dtype=complex) / math.sqrt(2) * np.array([1, 1])
        v_alg = np.array([1, 1], dtype=complex) / math.sqrt(2)
        v_num = v_alg * np.exp(0.3j)
        assert state_error(v_num, v_alg) == pytest.approx(0.0, abs=1e-12)

    def test_zero_vector_worst_case(self):
        """Example 5's collapsed vector: error = ||v_alg|| = 1."""
        v_alg = np.array([1, 0, 0, 0], dtype=complex)
        v_num = np.zeros(4, dtype=complex)
        assert state_error(v_num, v_alg) == pytest.approx(1.0)

    def test_orthogonal_vectors_error_sqrt2(self):
        v_alg = np.array([1, 0], dtype=complex)
        v_num = np.array([0, 1], dtype=complex)
        assert state_error(v_num, v_alg) == pytest.approx(math.sqrt(2))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            state_error(np.zeros(2), np.zeros(4))

    def test_trace_errors_pipeline(self):
        n = 2
        circuit = ghz_circuit(n)
        numeric = numeric_manager(n, eps=0.0)
        num_states = []
        Simulator(numeric).run(circuit, step_callback=lambda i, s: num_states.append(s))
        exact = algebraic_manager(n)
        exact_states = []
        Simulator(exact).run(
            circuit, step_callback=lambda i, s: exact_states.append(exact.to_statevector(s))
        )
        errors = trace_errors(numeric, num_states, exact_states)
        assert len(errors) == len(circuit)
        assert all(error < 1e-10 for error in errors)
