"""JSON round-trip of SimulationTrace (satellite of the obs layer)."""

import json

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_manager
from repro.sim.simulator import Simulator
from repro.sim.trace import SimulationStep, SimulationTrace


def _sample_trace():
    trace = SimulationTrace("algebraic", "toy", 2)
    trace.steps.append(
        SimulationStep(
            gate_index=0,
            gate_name="h",
            node_count=3,
            cumulative_seconds=0.25,
            max_bit_width=4,
            error=None,
        )
    )
    trace.steps.append(
        SimulationStep(
            gate_index=1,
            gate_name="cx",
            node_count=5,
            cumulative_seconds=0.5,
            error=1.5e-9,
        )
    )
    return trace


class TestRoundTrip:
    def test_round_trips_every_field(self):
        trace = _sample_trace()
        restored = SimulationTrace.from_json(trace.to_json())
        assert restored.system_name == trace.system_name
        assert restored.circuit_name == trace.circuit_name
        assert restored.num_qubits == trace.num_qubits
        assert restored.steps == trace.steps

    def test_error_none_is_preserved_not_dropped(self):
        trace = _sample_trace()
        data = json.loads(trace.to_json())
        assert data["steps"][0]["error"] is None  # explicit null, not absent
        restored = SimulationTrace.from_json(trace.to_json())
        assert restored.steps[0].error is None
        assert restored.steps[1].error == pytest.approx(1.5e-9)

    def test_missing_optional_step_fields_default(self):
        data = _sample_trace().to_dict()
        for raw in data["steps"]:
            raw.pop("max_bit_width")
            raw.pop("error")
        restored = SimulationTrace.from_dict(data)
        assert restored.steps[0].max_bit_width == 0
        assert restored.steps[0].error is None

    def test_empty_trace(self):
        trace = SimulationTrace("numeric", "empty", 1)
        restored = SimulationTrace.from_json(trace.to_json())
        assert restored.steps == []
        assert restored.total_seconds == 0.0

    def test_rejects_non_object_json(self):
        with pytest.raises(ValueError):
            SimulationTrace.from_json("[1, 2, 3]")

    def test_simulator_trace_round_trips(self):
        manager = algebraic_manager(3)
        result = Simulator(manager).run(grover_circuit(3, 2))
        restored = SimulationTrace.from_json(result.trace.to_json())
        assert restored.steps == result.trace.steps
        assert restored.peak_node_count == result.trace.peak_node_count

    def test_json_is_deterministic(self):
        trace = _sample_trace()
        assert trace.to_json() == trace.to_json()
        assert trace.to_json(indent=2).count("\n") > 0
