"""Tests for Pauli-string observables on DD states."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, uniform_superposition
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import SimulationError
from repro.rings.qomega import QOmega
from repro.sim.observables import PauliString, expectation, variance
from repro.sim.simulator import Simulator


class TestPauliString:
    def test_from_label(self):
        pauli = PauliString.from_label("ZIXI")
        assert pauli.num_qubits == 4
        assert pauli.factors == {0: "Z", 2: "X"}
        assert pauli.weight == 2
        assert pauli.label() == "ZIXI"

    def test_identity_factors_dropped(self):
        pauli = PauliString(3, {0: "I", 1: "Y"})
        assert pauli.factors == {1: "Y"}

    def test_validation(self):
        with pytest.raises(SimulationError):
            PauliString(2, {5: "X"})
        with pytest.raises(SimulationError):
            PauliString(2, {0: "Q"})
        with pytest.raises(SimulationError):
            PauliString(0, {})

    def test_matrix_dd_matches_dense(self):
        manager = algebraic_manager(2)
        pauli = PauliString.from_label("ZX")
        dense = manager.to_matrix(pauli.matrix_dd(manager))
        expected = np.kron(np.diag([1, -1]), np.array([[0, 1], [1, 0]])).astype(complex)
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    def test_y_matrix(self):
        manager = algebraic_manager(1)
        dense = manager.to_matrix(PauliString.from_label("Y").matrix_dd(manager))
        np.testing.assert_allclose(dense, np.array([[0, -1j], [1j, 0]]), atol=1e-12)


class TestExpectation:
    def test_z_on_basis_states(self):
        manager = algebraic_manager(2)
        z0 = PauliString.from_label("ZI")
        assert expectation(manager, manager.basis_state(0), z0) == QOmega.one()
        assert expectation(manager, manager.basis_state(2), z0) == QOmega.from_int(-1)

    def test_x_on_plus_state(self):
        manager = algebraic_manager(1)
        state = Simulator(manager).run(Circuit(1).h(0)).state
        assert expectation(manager, state, PauliString.from_label("X")) == QOmega.one()
        assert expectation(manager, state, PauliString.from_label("Z")).is_zero()

    def test_ghz_stabilizers(self):
        """GHZ is stabilised by XXX and ZZI (exact +1 eigenvalues)."""
        manager = algebraic_manager(3)
        state = Simulator(manager).run(ghz_circuit(3)).state
        assert expectation(manager, state, PauliString.from_label("XXX")) == QOmega.one()
        assert expectation(manager, state, PauliString.from_label("ZZI")) == QOmega.one()
        assert expectation(manager, state, PauliString.from_label("ZII")).is_zero()

    def test_matches_dense(self):
        manager = numeric_manager(3, eps=1e-12)
        circuit = Circuit(3).h(0).t(0).cx(0, 1).s(2).h(2)
        state = Simulator(manager).run(circuit).state
        pauli = PauliString.from_label("XZY")
        dense_state = manager.to_statevector(state)
        dense_matrix = manager.to_matrix(pauli.matrix_dd(manager))
        expected = np.vdot(dense_state, dense_matrix @ dense_state)
        value = manager.system.to_complex(expectation(manager, state, pauli))
        assert abs(value - expected) < 1e-9

    def test_expectation_is_real(self):
        manager = algebraic_manager(2)
        state = Simulator(manager).run(Circuit(2).h(0).t(0).cx(0, 1)).state
        value = expectation(manager, state, PauliString.from_label("YX"))
        assert abs(value.to_complex().imag) < 1e-12

    def test_width_mismatch(self):
        manager = algebraic_manager(2)
        with pytest.raises(SimulationError):
            PauliString.from_label("ZZZ").matrix_dd(manager)


class TestVariance:
    def test_eigenstate_has_zero_variance(self):
        manager = algebraic_manager(1)
        state = Simulator(manager).run(Circuit(1).h(0)).state
        assert variance(manager, state, PauliString.from_label("X")) == pytest.approx(0.0)

    def test_unbiased_state_has_unit_variance(self):
        manager = algebraic_manager(1)
        state = manager.basis_state(0)
        assert variance(manager, state, PauliString.from_label("X")) == pytest.approx(1.0)

    def test_uniform_superposition_zz(self):
        manager = algebraic_manager(2)
        state = Simulator(manager).run(uniform_superposition(2)).state
        assert variance(manager, state, PauliString.from_label("ZZ")) == pytest.approx(1.0)
