"""Tests for measurement collapse and the matrix-matrix strategy [25]."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit, uniform_superposition
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.errors import SimulationError
from repro.sim.measure import measure_and_collapse
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator


class TestMeasureAndCollapse:
    def test_basis_state_deterministic(self):
        manager = algebraic_manager(3)
        state = manager.basis_state(0b101)
        outcome, probability, collapsed = measure_and_collapse(manager, state, 0, seed=1)
        assert outcome == 1 and probability == pytest.approx(1.0)
        assert manager.edges_equal(collapsed, state)

    def test_ghz_collapse_correlates(self):
        """Measuring one GHZ qubit collapses all of them."""
        manager = algebraic_manager(3)
        state = Simulator(manager).run(ghz_circuit(3)).state
        outcome, probability, collapsed = measure_and_collapse(
            manager, state, 0, outcome=1, renormalize=False
        )
        assert probability == pytest.approx(0.5)
        dense = manager.to_statevector(collapsed)
        # Unnormalised projection: only |111> survives with amp 1/sqrt2.
        expected = np.zeros(8, dtype=complex)
        expected[7] = 1 / math.sqrt(2)
        np.testing.assert_allclose(dense, expected, atol=1e-12)

    def test_numeric_renormalises_by_default(self):
        manager = numeric_manager(3)
        state = Simulator(manager).run(ghz_circuit(3)).state
        outcome, probability, collapsed = measure_and_collapse(
            manager, state, 0, outcome=0
        )
        dense = manager.to_statevector(collapsed)
        assert np.linalg.norm(dense) == pytest.approx(1.0)
        assert abs(dense[0]) == pytest.approx(1.0)

    def test_algebraic_refuses_renormalisation(self):
        manager = algebraic_manager(2)
        state = Simulator(manager).run(Circuit(2).h(0).t(0).h(0)).state
        with pytest.raises(SimulationError):
            measure_and_collapse(manager, state, 0, outcome=0, renormalize=True)

    def test_impossible_postselection(self):
        manager = algebraic_manager(2)
        state = manager.basis_state(0)
        with pytest.raises(SimulationError):
            measure_and_collapse(manager, state, 0, outcome=1)

    def test_collapse_matches_projector_math(self):
        """P(ψ -> outcome) and the projected vector agree with dense
        linear algebra on a generic superposition."""
        manager = algebraic_manager(2)
        circuit = Circuit(2).h(0).t(0).h(0).h(1).s(1)
        state = Simulator(manager).run(circuit).state
        dense = manager.to_statevector(state)
        outcome, probability, collapsed = measure_and_collapse(
            manager, state, 1, outcome=1, renormalize=False
        )
        projector = np.diag([0, 1, 0, 1]).astype(complex)  # qubit 1 == 1
        projected = projector @ dense
        assert probability == pytest.approx(float(np.linalg.norm(projected) ** 2))
        np.testing.assert_allclose(
            manager.to_statevector(collapsed), projected, atol=1e-9
        )

    def test_sampled_outcome_reproducible(self):
        manager = algebraic_manager(1)
        state = Simulator(manager).run(Circuit(1).h(0)).state
        first = measure_and_collapse(manager, state, 0, seed=42)
        second = measure_and_collapse(manager, state, 0, seed=42)
        assert first[0] == second[0]

    def test_invalid_outcome(self):
        manager = algebraic_manager(1)
        with pytest.raises(SimulationError):
            measure_and_collapse(manager, manager.zero_state(), 0, outcome=2)


class TestMatrixMatrixStrategy:
    @pytest.mark.parametrize("block_size", [None, 1, 3, 7])
    def test_agrees_with_vector_strategy(self, block_size):
        circuit = Circuit(3).h(0).cx(0, 1).t(1).ccx(0, 1, 2).h(2).s(0)
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        vector_result = simulator.run(circuit)
        mm_result = simulator.run_matrix_matrix(circuit, block_size=block_size)
        assert manager.edges_equal(vector_result.state, mm_result.state)

    def test_block_count_in_trace(self):
        circuit = ghz_circuit(4)  # 4 gates
        simulator = Simulator(algebraic_manager(4))
        result = simulator.run_matrix_matrix(circuit, block_size=2)
        assert len(result.trace.steps) == 2
        assert result.trace.steps[0].gate_name == "block[2]"

    def test_whole_circuit_single_block(self):
        circuit = uniform_superposition(3)
        simulator = Simulator(algebraic_manager(3))
        result = simulator.run_matrix_matrix(circuit)
        assert len(result.trace.steps) == 1

    def test_matches_dense(self):
        circuit = Circuit(3).h(0).t(0).cx(0, 1).h(2).cz(1, 2)
        simulator = Simulator(numeric_manager(3, eps=1e-12))
        result = simulator.run_matrix_matrix(circuit, block_size=2)
        np.testing.assert_allclose(
            result.final_amplitudes(), StatevectorSimulator(3).run(circuit), atol=1e-9
        )

    def test_invalid_block_size(self):
        simulator = Simulator(algebraic_manager(2))
        with pytest.raises(SimulationError):
            simulator.run_matrix_matrix(Circuit(2).h(0), block_size=0)

    def test_width_mismatch(self):
        simulator = Simulator(algebraic_manager(2))
        with pytest.raises(SimulationError):
            simulator.run_matrix_matrix(Circuit(3).h(0))
