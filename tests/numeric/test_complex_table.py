"""Tests for the tolerance-based complex value table."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.numeric import ComplexTable

finite = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
complexes = st.builds(complex, finite, finite)


class TestExactMode:
    def test_zero_eps_distinguishes_last_bit(self):
        table = ComplexTable(eps=0.0)
        a = table.lookup(1 / math.sqrt(2))
        assert table.lookup(1 / math.sqrt(2)) is a  # identical bits intern
        # A value one ulp away must create a distinct entry.
        bumped = table.lookup(math.nextafter(1 / math.sqrt(2), 2.0))
        assert bumped is not a

    def test_negative_zero_normalised(self):
        table = ComplexTable(eps=0.0)
        assert table.lookup(complex(-0.0, 0.0)) is table.zero

    def test_seeded_anchors(self):
        table = ComplexTable(eps=0.0)
        assert table.lookup(0j) is table.zero
        assert table.lookup(1 + 0j) is table.one
        assert table.is_zero(table.zero)
        assert table.is_one(table.one)

    @given(complexes)
    def test_idempotent_interning(self, value):
        table = ComplexTable(eps=0.0)
        assert table.lookup(value) is table.lookup(value)


class TestToleranceMode:
    def test_rejects_negative_eps(self):
        with pytest.raises(ValueError):
            ComplexTable(eps=-1.0)

    def test_values_within_eps_identified(self):
        table = ComplexTable(eps=1e-5)
        a = table.lookup(0.5 + 0.5j)
        b = table.lookup(0.5 + 1e-6 + (0.5 - 1e-6) * 1j)
        assert b is a
        assert b.value == a.value  # the incoming value was discarded

    def test_values_outside_eps_distinct(self):
        table = ComplexTable(eps=1e-5)
        a = table.lookup(0.5 + 0j)
        b = table.lookup(0.5 + 1e-4 + 0j)
        assert b is not a

    def test_componentwise_criterion(self):
        # Both components must be within eps (the established package's
        # criterion) -- a point eps-close in modulus but not per component
        # stays distinct.
        table = ComplexTable(eps=1e-5)
        a = table.lookup(0.5 + 0j)
        b = table.lookup(0.5 + 2e-5j)
        assert b is not a

    def test_snap_to_zero_loses_small_amplitudes(self):
        """The information-loss mechanism behind the paper's Example 5."""
        table = ComplexTable(eps=1e-3)
        tiny = table.lookup(5e-4 + 0j)
        assert tiny is table.zero

    def test_snap_to_one(self):
        table = ComplexTable(eps=1e-3)
        assert table.lookup(1.0005 + 0j) is table.one

    @given(complexes, st.floats(min_value=1e-10, max_value=1e-2))
    def test_lookup_always_within_eps_of_input(self, value, eps):
        table = ComplexTable(eps=eps)
        entry = table.lookup(value)
        assert abs(entry.value.real - value.real) <= eps
        assert abs(entry.value.imag - value.imag) <= eps

    def test_bucket_neighbour_search(self):
        # Values straddling a bucket boundary must still be identified.
        eps = 1e-4
        table = ComplexTable(eps=eps)
        boundary = 3 * eps  # precisely between buckets of width 2*eps
        a = table.lookup(complex(boundary - eps / 4, 0.0))
        b = table.lookup(complex(boundary + eps / 4, 0.0))
        assert a is b

    def test_statistics(self):
        table = ComplexTable(eps=1e-6)
        table.lookup(0.3 + 0.4j)
        stats = table.statistics()
        assert stats["entries"] == 3.0  # zero, one, and the new value
        assert stats["eps"] == 1e-6


class TestGrowthBehaviour:
    def test_exact_table_growth_vs_tolerant(self):
        """eps = 0 accumulates near-duplicate entries; a tolerant table
        re-uses them -- the compactness side of the trade-off."""
        import random

        rng = random.Random(42)
        exact = ComplexTable(eps=0.0)
        tolerant = ComplexTable(eps=1e-8)
        base = 1 / math.sqrt(2)
        for _ in range(100):
            noisy = base + rng.uniform(-1e-12, 1e-12)
            exact.lookup(complex(noisy, 0.0))
            tolerant.lookup(complex(noisy, 0.0))
        assert len(exact) > 50
        assert len(tolerant) == 3  # zero, one, ~1/sqrt2
