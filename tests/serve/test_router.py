"""ShardRouter: deterministic, warm-locality-preserving assignment."""

import pytest

from repro.api import RunRequest, SimulatorConfig
from repro.circuits.library import ghz_circuit
from repro.serve.router import ShardRouter


def _request(qubits=4, **config_kwargs):
    return RunRequest(ghz_circuit(qubits), SimulatorConfig(**config_kwargs))


class TestRouting:
    def test_same_identity_same_worker(self):
        router = ShardRouter(num_workers=4)
        assert router.route(_request()) == router.route(_request())

    def test_route_is_independent_of_display_name(self):
        router = ShardRouter(num_workers=4)
        a = _request()
        b = RunRequest(a.circuit, a.config, label="renamed")
        assert router.route(a) == router.route(b)

    def test_qubit_bucketing_keeps_adjacent_widths_together(self):
        router = ShardRouter(num_workers=8, bucket_size=4)
        # 1-4 qubits share a bucket; 5 starts the next one.
        assert router.shard_key(_request(2)) == router.shard_key(_request(4))
        assert router.shard_key(_request(4)) != router.shard_key(_request(5))

    def test_different_systems_may_split(self):
        router = ShardRouter(num_workers=64)
        keys = {
            router.shard_key(_request(system="algebraic")),
            router.shard_key(_request(system="algebraic-gcd")),
            router.shard_key(_request(system="numeric")),
            router.shard_key(_request(system="numeric", eps=1e-10)),
            router.shard_key(_request(system="numeric", precision="single")),
        }
        assert len(keys) == 5

    def test_route_stays_in_range(self):
        for workers in (1, 2, 3, 7):
            router = ShardRouter(num_workers=workers)
            for qubits in range(1, 10):
                assert 0 <= router.route(_request(qubits)) < workers

    def test_route_is_not_process_salted(self):
        # sha256-based, never builtin hash(): the same request must land
        # on the same shard in every interpreter (PYTHONHASHSEED-proof).
        import subprocess
        import sys

        script = (
            "from repro.api import RunRequest, SimulatorConfig\n"
            "from repro.circuits.library import ghz_circuit\n"
            "from repro.serve.router import ShardRouter\n"
            "router = ShardRouter(num_workers=16)\n"
            "req = RunRequest(ghz_circuit(6), SimulatorConfig(system='numeric', eps=1e-10))\n"
            "print(router.route(req))\n"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
            ).stdout.strip()
            for seed in ("0", "1", "12345")
        }
        assert len(outputs) == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardRouter(num_workers=0)
        with pytest.raises(ValueError):
            ShardRouter(num_workers=2, bucket_size=0)
