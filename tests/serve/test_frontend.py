"""ServiceFrontend backpressure and deadline contract (fake workers).

pytest-asyncio is not a dependency of this repo: every test drives its
coroutine with asyncio.run() from a plain sync function.
"""

import asyncio
import threading
import time

import pytest

from repro import errors
from repro.api import RunRequest, SimulatorConfig, run
from repro.circuits.library import ghz_circuit
from repro.serve.frontend import ServiceFrontend
from repro.serve.protocol import ServeResponse
from repro.serve.worker import InlineWorkerClient


class BlockingClient:
    """A worker client that parks until released (deterministic jams)."""

    def __init__(self, worker_id=0):
        self.worker_id = worker_id
        self.release = threading.Event()
        self.executed = []

    def execute(self, serve_request):
        self.release.wait(timeout=10.0)
        self.executed.append(serve_request.seq)
        return ServeResponse(
            seq=serve_request.seq,
            ok=False,
            worker_id=self.worker_id,
            error_type="Blocked",
            message="released without a result",
        )

    def close(self):
        self.release.set()


def _request(qubits=3, label=None):
    return RunRequest(ghz_circuit(qubits), SimulatorConfig(), label=label)


class TestBackpressure:
    def test_queue_full_is_a_typed_rejection(self):
        client = BlockingClient()

        async def scenario():
            frontend = ServiceFrontend([client], queue_size=1, cache_capacity=0)
            await frontend.start()
            try:
                # First request occupies the worker; second fills the
                # queue; the third must bounce.
                first = asyncio.create_task(frontend.submit(_request(label="a")))
                await asyncio.sleep(0.05)
                second = asyncio.create_task(frontend.submit(_request(label="b")))
                await asyncio.sleep(0.05)
                with pytest.raises(errors.QueueFull):
                    await frontend.submit(_request(label="c"))
                stats = frontend.stats()
                assert stats["serve.rejected.queue_full"] == 1
                client.release.set()
                for task in (first, second):
                    with pytest.raises(errors.ServeError):
                        await task
            finally:
                client.release.set()
                await frontend.close()

        asyncio.run(scenario())

    def test_deadline_expired_in_queue_never_reaches_worker(self):
        client = BlockingClient()

        async def scenario():
            frontend = ServiceFrontend([client], queue_size=4, cache_capacity=0)
            await frontend.start()
            try:
                blocker = asyncio.create_task(frontend.submit(_request(label="jam")))
                await asyncio.sleep(0.05)
                with pytest.raises(errors.DeadlineExceeded):
                    await frontend.submit(_request(label="late"), timeout=0.01)
                stats = frontend.stats()
                assert stats["serve.rejected.deadline"] >= 1
                client.release.set()
                with pytest.raises(errors.ServeError):
                    await blocker
                # The expired request was dropped, not executed.
                assert len(client.executed) == 1
            finally:
                client.release.set()
                await frontend.close()

        asyncio.run(scenario())

    def test_submit_after_close_raises_service_closed(self):
        async def scenario():
            frontend = ServiceFrontend([InlineWorkerClient(0)], cache_capacity=0)
            await frontend.start()
            await frontend.close()
            with pytest.raises(errors.ServiceClosed):
                await frontend.submit(_request())

        asyncio.run(scenario())


class TestDispatch:
    def test_requests_flow_and_instruments_move(self):
        async def scenario():
            frontend = ServiceFrontend([InlineWorkerClient(0)], cache_capacity=8)
            await frontend.start()
            try:
                direct = run(_request(label="ref"))
                miss = await frontend.submit(_request(label="ref"))
                hit = await frontend.submit(_request(label="ref"))
                assert miss.state_payload == direct.state_payload
                assert hit.state_payload == direct.state_payload
                stats = frontend.stats()
                assert stats["serve.requests"] == 2
                assert stats["serve.cache.hits"] == 1
                assert stats["serve.cache.misses"] == 1
                assert stats["serve.request.seconds"]["count"] == 2
                assert stats["serve.worker.busy"] == 0
            finally:
                await frontend.close()

        asyncio.run(scenario())

    def test_worker_failure_surfaces_as_serve_error(self):
        async def scenario():
            frontend = ServiceFrontend([InlineWorkerClient(0)], cache_capacity=8)
            await frontend.start()
            try:
                # 3-qubit circuit routed to a worker is fine, but a gate
                # with no exact representation fails inside the worker.
                from repro.circuits.circuit import Circuit

                bad = Circuit(1).p(0.1, 0)  # not Clifford+T-exact
                with pytest.raises(errors.ServeError):
                    await frontend.submit(
                        RunRequest(bad, SimulatorConfig(system="algebraic"))
                    )
            finally:
                await frontend.close()

        asyncio.run(scenario())

    def test_failures_are_not_cached(self):
        async def scenario():
            frontend = ServiceFrontend([InlineWorkerClient(0)], cache_capacity=8)
            await frontend.start()
            try:
                from repro.circuits.circuit import Circuit

                bad = RunRequest(Circuit(1).p(0.1, 0), SimulatorConfig())
                for _ in range(2):
                    with pytest.raises(errors.ServeError):
                        await frontend.submit(bad)
                stats = frontend.stats()
                assert stats["serve.cache.size"] == 0
                assert stats["serve.cache.misses"] == 2
            finally:
                await frontend.close()

        asyncio.run(scenario())
