"""ResultCache: canonical keys, LRU eviction, instrument wiring."""

import math

from repro.api import RunRequest, SimulatorConfig, run
from repro.circuits.circuit import Circuit
from repro.obs import MetricsRegistry
from repro.serve.cache import ResultCache, request_key


def _request(name="bell", label=None, config=None):
    circuit = Circuit(2, name=name).h(0).cx(0, 1)
    return RunRequest(circuit, config or SimulatorConfig(), label=label)


def _cache(capacity=8):
    metrics = MetricsRegistry()
    return ResultCache(metrics, capacity=capacity), metrics


class TestKeying:
    def test_display_name_shares_entry(self):
        assert request_key(_request("a")) == request_key(_request("b"))

    def test_gate_spelling_shares_entry(self):
        spelled_t = RunRequest(Circuit(1).t(0), SimulatorConfig())
        spelled_p = RunRequest(Circuit(1).p(math.pi / 4, 0), SimulatorConfig())
        assert request_key(spelled_t) == request_key(spelled_p)

    def test_config_splits_entries(self):
        exact = _request(config=SimulatorConfig(system="algebraic"))
        lossy = _request(config=SimulatorConfig(system="numeric", eps=1e-5))
        assert request_key(exact) != request_key(lossy)

    def test_error_reference_splits_entries(self):
        plain = _request()
        with_ref = RunRequest(
            plain.circuit,
            plain.config,
            error_reference=SimulatorConfig(system="algebraic"),
        )
        assert request_key(plain) != request_key(with_ref)


class TestLookup:
    def test_miss_then_hit_with_counters(self):
        cache, metrics = _cache()
        request = _request()
        assert cache.get(request) is None
        cache.put(request, run(request))
        assert cache.get(request) is not None
        snap = metrics.snapshot()
        assert snap["serve.cache.hits"] == 1
        assert snap["serve.cache.misses"] == 1
        assert snap["serve.cache.size"] == 1

    def test_hit_carries_the_incoming_label(self):
        cache, _ = _cache()
        first = _request("original", label="first-label")
        cache.put(first, run(first))
        hit = cache.get(_request("renamed", label="second-label"))
        assert hit is not None
        assert hit.label == "second-label"

    def test_hit_payload_matches_direct_run(self):
        cache, _ = _cache()
        request = _request()
        direct = run(request)
        cache.put(request, direct)
        hit = cache.get(_request("other-name"))
        assert hit.state_payload == direct.state_payload
        assert hit.node_count == direct.node_count


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache, metrics = _cache(capacity=2)
        requests = [
            RunRequest(
                Circuit(1, name=f"c{i}").rz(0.1 * (i + 1), 0),
                SimulatorConfig(system="numeric"),
            )
            for i in range(3)
        ]
        for request in requests:
            cache.put(request, run(request))
        assert len(cache) == 2
        assert cache.get(requests[0]) is None  # evicted
        assert cache.get(requests[2]) is not None
        assert metrics.snapshot()["serve.cache.evictions"] == 1

    def test_get_refreshes_recency(self):
        cache, _ = _cache(capacity=2)
        requests = [
            RunRequest(
                Circuit(1, name=f"c{i}").rz(0.1 * (i + 1), 0),
                SimulatorConfig(system="numeric"),
            )
            for i in range(3)
        ]
        cache.put(requests[0], run(requests[0]))
        cache.put(requests[1], run(requests[1]))
        cache.get(requests[0])  # now most-recent
        cache.put(requests[2], run(requests[2]))
        assert cache.get(requests[0]) is not None
        assert cache.get(requests[1]) is None  # the stale one went

    def test_capacity_zero_disables_caching(self):
        cache, metrics = _cache(capacity=0)
        request = _request()
        cache.put(request, run(request))
        assert cache.get(request) is None
        assert len(cache) == 0
        assert metrics.snapshot()["serve.cache.hits"] == 0
