"""SimulationService end-to-end: byte-identity, client paths, tracing.

The service's core contract -- cache hit, warm run and cold run all
produce payloads byte-identical to the direct repro.api.run path -- is
asserted here across all four number systems.
"""

import pytest

from repro import errors
from repro.api import RunRequest, SimulatorConfig, run, run_batch
from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit
from repro.obs import Telemetry
from repro.serve import SimulationService

FOUR_SYSTEMS = [
    pytest.param(SimulatorConfig(system="algebraic"), id="algebraic"),
    pytest.param(SimulatorConfig(system="algebraic-gcd"), id="algebraic-gcd"),
    pytest.param(SimulatorConfig(system="numeric", eps=1e-10), id="numeric-eps"),
    pytest.param(
        SimulatorConfig(system="numeric", precision="single"), id="numeric-single"
    ),
]


def _workload(name="serve-e2e"):
    circuit = Circuit(4, name=name)
    circuit.h(0).t(0).cx(0, 1).h(2).s(2).cx(2, 3).ccx(0, 2, 3).tdg(1)
    return circuit


def _fingerprint(result):
    return (
        result.state_payload,
        result.node_count,
        result.is_zero_state,
        result.final_error,
        result.fidelity,
        tuple(result.trace.node_counts()),
    )


class TestByteIdentity:
    @pytest.mark.parametrize("config", FOUR_SYSTEMS)
    def test_miss_and_hit_match_direct_run(self, config):
        request = RunRequest(_workload(), config)
        direct = run(request)
        with SimulationService(workers=2) as service:
            miss = service.submit(request)
            hit = service.submit(request)
            stats = service.stats()
        assert _fingerprint(miss) == _fingerprint(direct)
        assert _fingerprint(hit) == _fingerprint(direct)
        assert stats["serve.cache.misses"] == 1
        assert stats["serve.cache.hits"] == 1

    @pytest.mark.parametrize("config", FOUR_SYSTEMS)
    def test_warm_rerun_matches_with_cache_off(self, config):
        # Cache disabled: the second request really re-simulates on the
        # warm worker tables and must still be byte-identical.
        request = RunRequest(_workload(), config)
        direct = run(request)
        with SimulationService(workers=1, cache_capacity=0) as service:
            first = service.submit(request)
            second = service.submit(request)
        assert _fingerprint(first) == _fingerprint(direct)
        assert _fingerprint(second) == _fingerprint(direct)

    def test_process_mode_matches_direct_run(self):
        request = RunRequest(_workload(), SimulatorConfig())
        direct = run(request)
        with SimulationService(workers=1, mode="process") as service:
            got = service.submit(request)
            again = service.submit(RunRequest(_workload("renamed"), SimulatorConfig()))
            stats = service.stats()
        assert got.state_payload == direct.state_payload
        # Canonical hashing: the renamed copy hits the cache.
        assert stats["serve.cache.hits"] == 1
        assert again.state_payload == direct.state_payload


class TestClientPaths:
    def test_run_accepts_client(self):
        request = RunRequest(_workload(), SimulatorConfig())
        direct = run(request)
        with SimulationService(workers=1) as service:
            via_client = run(request, client=service)
        assert via_client.state_payload == direct.state_payload

    def test_run_batch_accepts_client(self):
        requests = [
            RunRequest(ghz_circuit(n), SimulatorConfig(), label=f"ghz{n}")
            for n in (2, 3, 4)
        ]
        direct = run_batch(requests)
        with SimulationService(workers=2) as service:
            batch = run_batch(requests, client=service)
        assert batch.ok
        assert batch.workers == 2
        assert [r.label for r in batch.completed] == ["ghz2", "ghz3", "ghz4"]
        for via_service, reference in zip(batch.results, direct.results):
            assert via_service.state_payload == reference.state_payload
        assert batch.metrics["serve.requests"] == 3

    def test_run_batch_records_typed_rejections_as_failures(self):
        good = RunRequest(ghz_circuit(3), SimulatorConfig(), label="good")
        bad = RunRequest(
            Circuit(1, name="bad").p(0.1, 0),
            SimulatorConfig(system="algebraic"),
            label="bad",
        )
        with SimulationService(workers=1) as service:
            batch = run_batch([good, bad], client=service)
        assert not batch.ok
        assert batch.results[0] is not None and batch.results[1] is None
        (failure,) = batch.failures
        assert failure.index == 1
        assert failure.label == "bad"
        assert failure.error_type == "ServeError"


class TestLifecycle:
    def test_submit_before_start_and_after_close(self):
        service = SimulationService(workers=1)
        request = RunRequest(ghz_circuit(2), SimulatorConfig())
        with pytest.raises(errors.ServiceClosed):
            service.submit(request)
        service.start()
        service.submit(request)
        service.close()
        with pytest.raises(errors.ServiceClosed):
            service.submit(request)
        with pytest.raises(errors.ServiceClosed):
            service.start()

    def test_config_validation(self):
        with pytest.raises(errors.ConfigError):
            SimulationService(workers=0)
        with pytest.raises(errors.ConfigError):
            SimulationService(mode="threads")


class TestTracing:
    def test_request_span_with_reparented_worker_spans(self):
        request = RunRequest(_workload(), SimulatorConfig())
        with SimulationService(workers=1, telemetry=Telemetry.tracing()) as service:
            service.submit(request)
            spans = service.telemetry.tracer.spans()
            trace_id = service._frontend.trace_id
        names = [span.name for span in spans]
        assert "serve.request" in names
        assert "exec.job" in names
        assert "sim.gate" in names
        request_span = next(s for s in spans if s.name == "serve.request")
        job_span = next(s for s in spans if s.name == "exec.job")
        # The worker's exec.job span was re-parented under serve.request.
        assert job_span.depth == request_span.depth + 1
        assert job_span.attrs["trace_id"] == trace_id
        assert job_span.attrs["parent_span_id"] == request_span.attrs["span_id"]

    def test_process_mode_ships_spans_across_the_pipe(self):
        request = RunRequest(_workload(), SimulatorConfig())
        with SimulationService(
            workers=1, mode="process", telemetry=Telemetry.tracing()
        ) as service:
            service.submit(request)
            names = {span.name for span in service.telemetry.tracer.spans()}
        assert {"serve.request", "exec.job", "sim.gate"} <= names

    def test_tracing_off_records_nothing(self):
        request = RunRequest(_workload(), SimulatorConfig())
        with SimulationService(workers=1) as service:
            service.submit(request)
            assert service.telemetry.tracer.spans() == []


class TestWarmReuse:
    def test_worker_reuses_and_bounds_warm_entries(self):
        from repro.serve.protocol import ServeRequest
        from repro.serve.worker import WarmWorker, WorkerOptions

        worker = WarmWorker(0, WorkerOptions(max_warm=2), serialize_spans=False)
        request = RunRequest(_workload(), SimulatorConfig())
        cold = worker.execute(ServeRequest(seq=1, request=request))
        warm = worker.execute(ServeRequest(seq=2, request=request))
        assert cold.ok and warm.ok
        assert not cold.warm and warm.warm
        assert cold.result.state_payload == warm.result.state_payload
        # Three distinct configs through a max_warm=2 worker: LRU bound.
        for index, system in enumerate(("algebraic-gcd", "numeric")):
            worker.execute(
                ServeRequest(
                    seq=3 + index,
                    request=RunRequest(_workload(), SimulatorConfig(system=system)),
                )
            )
        assert worker.warm_entries == 2

    def test_failed_request_discards_its_warm_entry(self):
        from repro.serve.protocol import ServeRequest
        from repro.serve.worker import WarmWorker, WorkerOptions

        worker = WarmWorker(0, WorkerOptions(), serialize_spans=False)
        config = SimulatorConfig(system="algebraic")
        good = RunRequest(Circuit(1).t(0), config)
        worker.execute(ServeRequest(seq=1, request=good))
        assert worker.warm_entries == 1
        bad = RunRequest(Circuit(1, name="bad").p(0.1, 0), config)
        response = worker.execute(ServeRequest(seq=2, request=bad))
        assert not response.ok
        # The 1-qubit algebraic entry (shared key) was dropped.
        assert worker.warm_entries == 0

    def test_lossy_numeric_entries_are_per_circuit(self):
        from repro.serve.protocol import ServeRequest
        from repro.serve.worker import WarmWorker, WorkerOptions

        worker = WarmWorker(0, WorkerOptions(), serialize_spans=False)
        config = SimulatorConfig(system="numeric", eps=1e-5)
        first = Circuit(2, name="a").h(0).t(0).cx(0, 1)
        second = Circuit(2, name="b").h(0).s(0).cx(0, 1)
        worker.execute(ServeRequest(seq=1, request=RunRequest(first, config)))
        worker.execute(ServeRequest(seq=2, request=RunRequest(second, config)))
        # Different structures never share a lossy tolerance table.
        assert worker.warm_entries == 2
        # eps=0 numerics do share (value-based, history-free).
        exact_numeric = SimulatorConfig(system="numeric")
        worker2 = WarmWorker(1, WorkerOptions(), serialize_spans=False)
        worker2.execute(ServeRequest(seq=1, request=RunRequest(first, exact_numeric)))
        worker2.execute(ServeRequest(seq=2, request=RunRequest(second, exact_numeric)))
        assert worker2.warm_entries == 1
