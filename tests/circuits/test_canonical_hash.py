"""Canonical circuit/config hashing: name-independence and sensitivity."""

import math

import pytest

from repro.api import RunRequest, SimulatorConfig, run
from repro.circuits import (
    Circuit,
    canonical_hash,
    circuit_fingerprint,
    config_fingerprint,
)


def _bell(name: str = "circuit") -> Circuit:
    return Circuit(2, name=name).h(0).cx(0, 1)


class TestNameIndependence:
    def test_display_name_does_not_change_hash(self):
        assert canonical_hash(_bell("bell")) == canonical_hash(_bell("bell (copy)"))

    def test_t_equals_phase_pi_over_4(self):
        # T and p(pi/4) apply the same exact unitary; the evalsuite
        # drivers used to treat them as different circuits by name.
        assert canonical_hash(Circuit(1).t(0)) == canonical_hash(
            Circuit(1).p(math.pi / 4, 0)
        )

    def test_sdg_equals_phase_minus_pi_over_2(self):
        assert canonical_hash(Circuit(1).sdg(0)) == canonical_hash(
            Circuit(1).p(-math.pi / 2, 0)
        )

    def test_control_order_is_normalised(self):
        first = Circuit(3).mcx([0, 1], 2)
        second = Circuit(3).mcx([1, 0], 2)
        assert canonical_hash(first) == canonical_hash(second)


class TestSensitivity:
    def test_different_gates_differ(self):
        assert canonical_hash(Circuit(1).x(0)) != canonical_hash(Circuit(1).z(0))

    def test_different_targets_differ(self):
        assert canonical_hash(Circuit(2).x(0)) != canonical_hash(Circuit(2).x(1))

    def test_gate_order_matters(self):
        assert canonical_hash(Circuit(1).h(0).t(0)) != canonical_hash(
            Circuit(1).t(0).h(0)
        )

    def test_width_matters(self):
        assert canonical_hash(Circuit(2).x(0)) != canonical_hash(Circuit(3).x(0))

    def test_numeric_angles_distinguished_at_float_resolution(self):
        assert canonical_hash(Circuit(1).rz(0.1, 0)) != canonical_hash(
            Circuit(1).rz(0.1000000001, 0)
        )

    def test_inverse_pairs_differ(self):
        assert canonical_hash(Circuit(1).t(0)) != canonical_hash(Circuit(1).tdg(0))


class TestConfigFingerprint:
    def test_config_changes_hash(self):
        circuit = _bell()
        exact = SimulatorConfig(system="algebraic")
        lossy = SimulatorConfig(system="numeric", eps=1e-5)
        assert canonical_hash(circuit, exact) != canonical_hash(circuit, lossy)

    def test_every_semantic_field_is_hashed(self):
        circuit = _bell()
        base = SimulatorConfig()
        variants = [
            SimulatorConfig(system="numeric"),
            SimulatorConfig(system="numeric", eps=1e-10),
            SimulatorConfig(system="numeric", normalization="max-magnitude"),
            SimulatorConfig(system="numeric", precision="single"),
            SimulatorConfig(sanitize="check-on-root"),
            SimulatorConfig(gc=512),
            SimulatorConfig(gc=512, gc_min_yield=0.5),
            SimulatorConfig(max_nodes=10_000),
            SimulatorConfig(max_bytes=1 << 20),
            SimulatorConfig(record_bit_widths=True),
            SimulatorConfig(use_apply_kernel=False),
        ]
        hashes = {canonical_hash(circuit, config) for config in [base, *variants]}
        assert len(hashes) == len(variants) + 1

    def test_telemetry_mode_is_invisible(self):
        # Observability never changes results, so it must not split
        # cache entries.
        circuit = _bell()
        assert canonical_hash(circuit, SimulatorConfig(telemetry="off")) == (
            canonical_hash(circuit, SimulatorConfig(telemetry="tracing"))
        )

    def test_none_config_is_distinct_from_default(self):
        circuit = _bell()
        assert canonical_hash(circuit) != canonical_hash(circuit, SimulatorConfig())
        assert config_fingerprint(None) == ("none",)


class TestRoundTrip:
    def test_fingerprint_is_stable_across_calls(self):
        circuit = _bell()
        assert circuit_fingerprint(circuit) == circuit_fingerprint(circuit)
        assert canonical_hash(circuit) == canonical_hash(circuit)

    @pytest.mark.parametrize("system", ["algebraic", "algebraic-gcd", "numeric"])
    def test_equal_hash_implies_equal_payload(self, system):
        # The property the serve cache relies on: same canonical hash,
        # same serialized result -- even across gate spellings.
        config = SimulatorConfig(system=system)
        spelled_t = Circuit(2, name="with-t").h(0).t(0).cx(0, 1)
        spelled_p = Circuit(2, name="with-p").h(0).p(math.pi / 4, 0).cx(0, 1)
        assert canonical_hash(spelled_t, config) == canonical_hash(spelled_p, config)
        first = run(RunRequest(spelled_t, config))
        second = run(RunRequest(spelled_p, config))
        assert first.state_payload == second.state_payload
        assert first.node_count == second.node_count


class TestEvalsuiteIdentity:
    def test_tradeoff_records_circuit_hash(self):
        from repro.evalsuite.tradeoff import run_tradeoff

        circuit = _bell("tradeoff-bell")
        result = run_tradeoff(
            circuit, epsilons=(0.0,), include_gcd=False, compute_errors=False
        )
        assert result.circuit_hash == canonical_hash(circuit)
        # Identity survives a display rename; the old name-keyed
        # matching would have broken here.
        assert result.circuit_hash == canonical_hash(_bell("renamed"))
