"""Tests for the OpenQASM 2.0 subset serialiser/parser."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.errors import CircuitError
from repro.sim.statevector import StatevectorSimulator


class TestRoundtrip:
    def test_clifford_t_roundtrip(self):
        circuit = Circuit(3).h(0).t(1).sdg(2).cx(0, 1).ccx(0, 1, 2).cz(1, 2)
        parsed = from_qasm(to_qasm(circuit))
        assert parsed.num_qubits == 3
        assert [op.gate.name for op in parsed] == [op.gate.name for op in circuit]
        simulator = StatevectorSimulator(3)
        np.testing.assert_allclose(
            simulator.run(parsed), simulator.run(circuit), atol=1e-12
        )

    def test_rotation_roundtrip(self):
        circuit = Circuit(2).rz(0.375, 0).ry(-1.25, 1).rx(math.pi / 7, 0).p(0.5, 1)
        parsed = from_qasm(to_qasm(circuit))
        simulator = StatevectorSimulator(2)
        np.testing.assert_allclose(
            simulator.run(parsed), simulator.run(circuit), atol=1e-12
        )

    def test_swap_roundtrip(self):
        circuit = Circuit(2).x(0).swap(0, 1)
        parsed = from_qasm(to_qasm(circuit))
        simulator = StatevectorSimulator(2)
        np.testing.assert_allclose(
            simulator.run(parsed), simulator.run(circuit), atol=1e-12
        )


class TestParsing:
    def test_parse_external_text(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        cx q[0], q[1];
        rz(pi/4) q[1];
        measure q -> c;  // ignored
        """
        circuit = from_qasm(text)
        assert circuit.num_qubits == 2
        assert [op.gate.name for op in circuit] == ["h", "x", "rz"]
        assert abs(circuit[2].gate.params[0] - math.pi / 4) < 1e-12

    def test_pi_expression_evaluation(self):
        circuit = from_qasm("qreg q[1]; rz(2*pi/3) q[0];")
        assert abs(circuit[0].gate.params[0] - 2 * math.pi / 3) < 1e-12

    def test_missing_qreg_raises(self):
        with pytest.raises(CircuitError):
            from_qasm("h q[0];")

    def test_unknown_gate_raises(self):
        with pytest.raises(CircuitError):
            from_qasm("qreg q[1]; frobnicate q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("qreg q[1]; rz(__import__('os')) q[0];")

    def test_negative_controls_not_serialisable(self):
        from repro.circuits.gates import X

        circuit = Circuit(2)
        circuit.append(X, 1, negative_controls=[0])
        with pytest.raises(CircuitError):
            to_qasm(circuit)

    def test_cp_gate(self):
        circuit = from_qasm("qreg q[2]; cp(pi/2) q[0], q[1];")
        assert circuit[0].controls == (0,)
        assert circuit[0].gate.name == "p"
