"""Tests for the basic-gate (1-qubit + CX) Clifford+T transpiler."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import H, S, T, X, Z, phase_gate
from repro.circuits.transpile import transpile_to_basic_gates
from repro.errors import CircuitError
from repro.sim.statevector import StatevectorSimulator


def assert_same_unitary(original, transpiled, atol=1e-9):
    simulator = StatevectorSimulator(original.num_qubits)
    np.testing.assert_allclose(
        simulator.unitary(transpiled), simulator.unitary(original), atol=atol
    )


def assert_basic(circuit):
    for operation in circuit:
        assert len(operation.controls) <= 1
        assert not operation.negative_controls
        if operation.controls:
            assert operation.gate.name == "x"  # only CX as 2-qubit gate


class TestSingleControl:
    @pytest.mark.parametrize("gate", [X, Z, H, S], ids=lambda g: g.name)
    def test_controlled_gate(self, gate):
        circuit = Circuit(2)
        circuit.append(gate, 1, controls=(0,))
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    def test_cy(self):
        from repro.circuits.gates import Y

        circuit = Circuit(2)
        circuit.append(Y, 0, controls=(1,))
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_controlled_even_pi4_phase(self, k):
        circuit = Circuit(2).cp(k * math.pi / 4, 0, 1)
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    @pytest.mark.parametrize("k", [1, 3, 5, 7])
    def test_controlled_t_needs_ancilla(self, k):
        """Determinant obstruction: controlled odd-pi/4 phases (e.g.
        controlled-T) are not ancilla-free over {1q Clifford+T, CX}."""
        circuit = Circuit(2).cp(k * math.pi / 4, 0, 1)
        with pytest.raises(CircuitError):
            transpile_to_basic_gates(circuit)

    def test_unsupported_controlled_gate(self):
        circuit = Circuit(2).cp(0.3, 0, 1)  # not a pi/4 multiple
        with pytest.raises(CircuitError):
            transpile_to_basic_gates(circuit)


class TestDoubleControl:
    def test_toffoli_seven_t(self):
        circuit = Circuit(3).ccx(0, 1, 2)
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert transpiled.t_count() == 7
        assert_same_unitary(circuit, transpiled)

    @pytest.mark.parametrize("layout", [(0, 1, 2), (2, 0, 1), (1, 2, 0)])
    def test_toffoli_layouts(self, layout):
        a, b, c = layout
        circuit = Circuit(3).ccx(a, b, c)
        transpiled = transpile_to_basic_gates(circuit)
        assert_same_unitary(circuit, transpiled)

    def test_ccz(self):
        circuit = Circuit(3).ccz(0, 1, 2)
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    @pytest.mark.parametrize("k", [4])
    def test_ccp_multiple_of_pi(self, k):
        circuit = Circuit(3).mcp(k * math.pi / 4, [0, 1], 2)
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    @pytest.mark.parametrize("k", [1, 2])
    def test_ccp_below_pi_needs_ancilla(self, k):
        """cc-P(k pi/4) for k < 4 bottoms out in controlled-T."""
        circuit = Circuit(3).mcp(k * math.pi / 4, [0, 1], 2)
        with pytest.raises(CircuitError):
            transpile_to_basic_gates(circuit)

    def test_three_controls_rejected(self):
        circuit = Circuit(4).mcx([0, 1, 2], 3)
        with pytest.raises(CircuitError):
            transpile_to_basic_gates(circuit)


class TestWholeCircuits:
    def test_negative_controls_expanded(self):
        circuit = Circuit(3)
        circuit.append(X, 2, controls=(0,), negative_controls=(1,))
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    def test_ghz_plus_toffoli(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).t(2)
        transpiled = transpile_to_basic_gates(circuit)
        assert_basic(transpiled)
        assert_same_unitary(circuit, transpiled)

    def test_transpiled_stays_exact(self):
        """The output is an exactly representable circuit -- simulatable
        by the algebraic QMDD with the identical unitary."""
        from repro.dd.manager import algebraic_manager
        from repro.sim.simulator import Simulator

        circuit = Circuit(3).h(0).ccx(0, 1, 2).cz(1, 2).cp(math.pi, 0, 2)
        transpiled = transpile_to_basic_gates(circuit)
        assert transpiled.is_exactly_representable
        manager = algebraic_manager(3)
        simulator = Simulator(manager)
        assert manager.edges_equal(
            simulator.unitary(circuit), simulator.unitary(transpiled)
        )

    def test_qasm_export_of_transpiled(self):
        from repro.circuits.qasm import from_qasm, to_qasm

        circuit = Circuit(3).h(0).ccx(0, 1, 2)
        transpiled = transpile_to_basic_gates(circuit)
        parsed = from_qasm(to_qasm(transpiled))
        assert_same_unitary(transpiled, parsed)
