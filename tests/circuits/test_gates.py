"""Tests for gate definitions: exact/numeric matrix consistency."""

import cmath
import math

import numpy as np
import pytest

from repro.circuits.gates import (
    H,
    S,
    SDG,
    SQRT_X,
    STANDARD_GATES,
    T,
    TDG,
    X,
    Y,
    Z,
    identity_gate,
    phase_gate,
    rx_gate,
    ry_gate,
    rz_gate,
    u_gate,
)

EXACT_GATES = [H, X, Y, Z, S, SDG, T, TDG, SQRT_X, identity_gate()]


def dense(gate):
    return np.array(gate.matrix, dtype=complex).reshape(2, 2)


class TestExactNumericConsistency:
    @pytest.mark.parametrize("gate", EXACT_GATES, ids=lambda g: g.name)
    def test_exact_matches_numeric(self, gate):
        assert gate.is_exactly_representable
        exact_dense = np.array(
            [entry.to_complex() for entry in gate.exact], dtype=complex
        ).reshape(2, 2)
        np.testing.assert_allclose(exact_dense, dense(gate), atol=1e-12)

    @pytest.mark.parametrize("gate", EXACT_GATES, ids=lambda g: g.name)
    def test_unitarity(self, gate):
        assert gate.is_unitary()

    def test_paper_example_2_matrices(self):
        omega = cmath.exp(1j * math.pi / 4)
        np.testing.assert_allclose(dense(T), np.diag([1, omega]), atol=1e-12)
        np.testing.assert_allclose(dense(S), np.diag([1, 1j]), atol=1e-12)
        np.testing.assert_allclose(dense(Z), np.diag([1, -1]), atol=1e-12)
        np.testing.assert_allclose(dense(X), np.array([[0, 1], [1, 0]]), atol=1e-12)

    def test_t_squared_is_s(self):
        np.testing.assert_allclose(dense(T) @ dense(T), dense(S), atol=1e-12)

    def test_s_squared_is_z(self):
        np.testing.assert_allclose(dense(S) @ dense(S), dense(Z), atol=1e-12)

    def test_sqrt_x_squares_to_x(self):
        np.testing.assert_allclose(dense(SQRT_X) @ dense(SQRT_X), dense(X), atol=1e-12)


class TestDagger:
    @pytest.mark.parametrize("gate", EXACT_GATES, ids=lambda g: g.name)
    def test_dagger_inverts(self, gate):
        np.testing.assert_allclose(
            dense(gate) @ dense(gate.dagger()), np.eye(2), atol=1e-12
        )

    def test_dagger_naming(self):
        assert T.dagger().name == "tdg"
        assert TDG.dagger().name == "t"
        assert H.dagger().name == "h"  # self-adjoint keeps its name
        assert X.dagger().name == "x"

    def test_dagger_preserves_exactness(self):
        assert T.dagger().is_exactly_representable
        assert rz_gate(0.3).dagger().exact is None

    def test_dagger_negates_params(self):
        assert rz_gate(0.3).dagger().params == (-0.3,)


class TestParametrisedGates:
    @pytest.mark.parametrize("theta", [0.0, 0.1, math.pi / 3, math.pi, 2 * math.pi])
    def test_rz_matrix(self, theta):
        gate = rz_gate(theta)
        expected = np.diag([cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)])
        np.testing.assert_allclose(dense(gate), expected, atol=1e-12)
        assert gate.is_unitary()

    @pytest.mark.parametrize("theta", [0.1, math.pi / 5, 1.0])
    def test_rotations_unitary(self, theta):
        for factory in (rx_gate, ry_gate, rz_gate):
            assert factory(theta).is_unitary()

    def test_phase_gate_exact_on_pi_over_4_multiples(self):
        for k in range(-8, 9):
            gate = phase_gate(k * math.pi / 4)
            assert gate.is_exactly_representable
            expected = cmath.exp(1j * k * math.pi / 4)
            assert abs(gate.matrix[3] - expected) < 1e-12

    def test_phase_gate_inexact_otherwise(self):
        assert phase_gate(0.1).exact is None
        assert phase_gate(math.pi / 8).exact is None

    def test_phase_pi_over_4_equals_t(self):
        gate = phase_gate(math.pi / 4)
        assert gate.exact == T.exact

    def test_rz_never_exact(self):
        """Even RZ(pi/4) involves e^{i pi/8}, outside D[omega]."""
        assert rz_gate(math.pi / 4).exact is None

    def test_u_gate(self):
        gate = u_gate(0.3, 0.5, 0.7)
        assert gate.is_unitary()
        # U(theta, 0, 0) == RY(theta)
        np.testing.assert_allclose(
            dense(u_gate(0.4, 0.0, 0.0)), dense(ry_gate(0.4)), atol=1e-12
        )

    def test_str_forms(self):
        assert str(H) == "h"
        assert str(rz_gate(0.5)) == "rz(0.5)"


class TestRegistry:
    def test_standard_gates_complete(self):
        for name in ("h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "id"):
            assert name in STANDARD_GATES

    def test_registry_gates_exact(self):
        assert all(g.is_exactly_representable for g in STANDARD_GATES.values())
