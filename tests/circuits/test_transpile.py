"""Tests for the interoperability rewrites."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import H, X, Z
from repro.circuits.transpile import count_multi_controls, expand_negative_controls
from repro.sim.statevector import StatevectorSimulator


class TestExpandNegativeControls:
    def test_no_negatives_untouched(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        expanded = expand_negative_controls(circuit)
        assert len(expanded) == 2

    @pytest.mark.parametrize("seed_gate", [X, Z, H])
    def test_equivalent_unitary(self, seed_gate):
        circuit = Circuit(3)
        circuit.append(seed_gate, 2, controls=(0,), negative_controls=(1,))
        expanded = expand_negative_controls(circuit)
        assert all(not op.negative_controls for op in expanded)
        simulator = StatevectorSimulator(3)
        np.testing.assert_allclose(
            simulator.unitary(expanded), simulator.unitary(circuit), atol=1e-12
        )

    def test_synthesised_circuit_exports(self):
        """End to end: multi-qubit synthesis emits negative controls;
        after expansion the circuit passes QASM export."""
        from repro.circuits.qasm import to_qasm
        from repro.synth.multiqubit import (
            exact_unitary_of_circuit,
            synthesize_unitary,
        )

        original = Circuit(2).h(0).t(0).cx(0, 1)
        target = exact_unitary_of_circuit(original)
        synthesised = synthesize_unitary(target, 2)
        expanded = expand_negative_controls(synthesised)
        text = to_qasm(expanded)
        assert "OPENQASM" in text
        # And the expansion preserved the unitary exactly.
        assert exact_unitary_of_circuit(expanded) == target

    def test_bwt_walk_expansion(self):
        from repro.algorithms.bwt import bwt_circuit

        circuit = bwt_circuit(depth=1, steps=1, seed=0)
        expanded = expand_negative_controls(circuit)
        simulator = StatevectorSimulator(circuit.num_qubits)
        np.testing.assert_allclose(
            simulator.run(expanded), simulator.run(circuit), atol=1e-12
        )


class TestCountMultiControls:
    def test_histogram(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).mcz([0, 1], 2)
        histogram = count_multi_controls(circuit)
        assert histogram == {0: 1, 1: 1, 2: 2}
