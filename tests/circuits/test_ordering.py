"""Tests for qubit relabelling and variable-order effects."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.ordering import interleaved_order, permute_qubits, reversed_order
from repro.dd.manager import algebraic_manager
from repro.errors import CircuitError
from repro.sim.simulator import Simulator
from repro.sim.statevector import StatevectorSimulator


class TestPermuteQubits:
    def test_identity_permutation(self):
        circuit = Circuit(3).h(0).cx(0, 1).t(2)
        same = permute_qubits(circuit, [0, 1, 2])
        assert [op.target for op in same] == [op.target for op in circuit]

    def test_relabelling_matches_dense(self):
        circuit = Circuit(3).h(0).cx(0, 2).ccx(0, 2, 1)
        permutation = [2, 0, 1]
        permuted = permute_qubits(circuit, permutation)
        dense_original = StatevectorSimulator(3).run(circuit)
        dense_permuted = StatevectorSimulator(3).run(permuted)
        # Permute the original's amplitudes to the new labelling.
        size = 8
        remapped = np.zeros(size, dtype=complex)
        for index in range(size):
            bits = [(index >> (2 - q)) & 1 for q in range(3)]
            new_index = sum(
                bit << (2 - permutation[q]) for q, bit in enumerate(bits)
            )
            remapped[new_index] = dense_original[index]
        np.testing.assert_allclose(dense_permuted, remapped, atol=1e-12)

    def test_invalid_permutation(self):
        with pytest.raises(CircuitError):
            permute_qubits(Circuit(2).h(0), [0, 0])
        with pytest.raises(CircuitError):
            permute_qubits(Circuit(2).h(0), [0, 2])

    def test_controls_remapped(self):
        circuit = Circuit(3)
        from repro.circuits.gates import X

        circuit.append(X, 2, controls=[0], negative_controls=[1])
        permuted = permute_qubits(circuit, [1, 2, 0])
        assert permuted[0].target == 0
        assert permuted[0].controls == (1,)
        assert permuted[0].negative_controls == (2,)


class TestOrderHelpers:
    def test_reversed_order(self):
        assert reversed_order(4) == [3, 2, 1, 0]

    def test_interleaved_order_is_permutation(self):
        for n in (2, 3, 4, 5, 8):
            assert sorted(interleaved_order(n)) == list(range(n))

    def test_order_changes_dd_size(self):
        """An entangled register pair: adjacent order keeps the DD
        small, separated order inflates it -- the classic ordering
        effect the DD literature describes."""
        n = 8  # 4 Bell pairs
        adjacent = Circuit(n, name="bell_adjacent")
        for pair in range(4):
            adjacent.h(2 * pair).cx(2 * pair, 2 * pair + 1)
        # Separate the partners to opposite halves: pair i on (i, 4+i).
        separated = Circuit(n, name="bell_separated")
        for pair in range(4):
            separated.h(pair).cx(pair, 4 + pair)
        size_adjacent = Simulator(algebraic_manager(n)).run(adjacent).node_count
        size_separated = Simulator(algebraic_manager(n)).run(separated).node_count
        assert size_separated > 2 * size_adjacent

    def test_permutation_can_fix_the_order(self):
        """Relabelling the separated layout back to adjacency recovers
        the small DD."""
        n = 8
        separated = Circuit(n, name="bell_separated")
        for pair in range(4):
            separated.h(pair).cx(pair, 4 + pair)
        # Move partner 4+i next to i: old->new mapping.
        permutation = [0, 2, 4, 6, 1, 3, 5, 7]
        fixed = permute_qubits(separated, permutation)
        size_fixed = Simulator(algebraic_manager(n)).run(fixed).node_count
        size_separated = Simulator(algebraic_manager(n)).run(separated).node_count
        assert size_fixed < size_separated
