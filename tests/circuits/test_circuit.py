"""Tests for the Circuit container and composite builders."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import H, X
from repro.circuits.library import (
    ghz_circuit,
    inverse_qft_circuit,
    mcx_with_toffolis,
    qft_circuit,
    uniform_superposition,
)
from repro.errors import CircuitError
from repro.sim.statevector import StatevectorSimulator


class TestCircuitBasics:
    def test_builder_chaining(self):
        circuit = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).t(2)
        assert len(circuit) == 4
        assert circuit[0].gate.name == "h"
        assert circuit[2].controls == (0, 1)

    def test_qubit_range_validation(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)
        with pytest.raises(CircuitError):
            Circuit(2).cx(0, 5)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).cx(1, 1)

    def test_zero_width_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_gate_counts_and_t_count(self):
        circuit = Circuit(2).h(0).t(0).t(1).tdg(0).cx(0, 1)
        counts = circuit.gate_counts()
        assert counts == {"h": 1, "t": 2, "tdg": 1, "x": 1}
        assert circuit.t_count() == 3

    def test_exactness_flag(self):
        assert Circuit(2).h(0).cx(0, 1).is_exactly_representable
        assert not Circuit(2).rz(0.3, 0).is_exactly_representable

    def test_iteration_and_str(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        names = [op.gate.name for op in circuit]
        assert names == ["h", "x"]
        assert "2 qubits" in str(circuit)

    def test_concatenation(self):
        left = Circuit(2).h(0)
        right = Circuit(2).cx(0, 1)
        combined = left + right
        assert len(combined) == 2
        with pytest.raises(CircuitError):
            left + Circuit(3)

    def test_extend(self):
        circuit = Circuit(2).h(0)
        circuit.extend(Circuit(2).x(1))
        assert len(circuit) == 2

    def test_repeat(self):
        assert len(Circuit(1).h(0).repeat(5)) == 5
        assert len(Circuit(1).h(0).repeat(0)) == 0
        with pytest.raises(CircuitError):
            Circuit(1).h(0).repeat(-1)


class TestInverse:
    def test_inverse_reverses_and_daggers(self):
        circuit = Circuit(2).h(0).t(1).cx(0, 1)
        inverse = circuit.inverse()
        assert [op.gate.name for op in inverse] == ["x", "tdg", "h"]

    @pytest.mark.parametrize("n", [2, 3])
    def test_circuit_times_inverse_is_identity(self, n):
        circuit = Circuit(n).h(0).t(0).cx(0, 1).s(1).rz(0.37, 0)
        simulator = StatevectorSimulator(n)
        unitary = simulator.unitary(circuit + circuit.inverse())
        np.testing.assert_allclose(unitary, np.eye(1 << n), atol=1e-9)


class TestLibrary:
    def test_ghz_state(self):
        state = StatevectorSimulator(3).run(ghz_circuit(3))
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / math.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_uniform_superposition(self):
        state = StatevectorSimulator(3).run(uniform_superposition(3))
        np.testing.assert_allclose(state, np.full(8, 1 / math.sqrt(8)), atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_qft_matrix(self, n):
        """QFT matrix entries are the DFT matrix (with bit reversal swaps)."""
        unitary = StatevectorSimulator(n).unitary(qft_circuit(n))
        size = 1 << n
        expected = np.array(
            [
                [np.exp(2j * math.pi * row * col / size) / math.sqrt(size) for col in range(size)]
                for row in range(size)
            ]
        )
        np.testing.assert_allclose(unitary, expected, atol=1e-9)

    def test_qft_inverse_roundtrip(self):
        n = 3
        circuit = qft_circuit(n) + inverse_qft_circuit(n)
        unitary = StatevectorSimulator(n).unitary(circuit)
        np.testing.assert_allclose(unitary, np.eye(8), atol=1e-9)

    def test_qft_exactness_boundary(self):
        """QFT up to 3 qubits uses only angles >= pi/4 (exact); 4 qubits
        introduces pi/8 (inexact) -- the boundary the paper draws."""
        assert qft_circuit(2).is_exactly_representable
        assert qft_circuit(3).is_exactly_representable
        assert not qft_circuit(4).is_exactly_representable

    @pytest.mark.parametrize("num_controls", [1, 2, 3, 4])
    def test_mcx_with_toffolis(self, num_controls):
        controls = list(range(num_controls))
        target = num_controls
        ancillas = list(range(num_controls + 1, 2 * num_controls - 1))
        n = max(num_controls + 1, 2 * num_controls - 1)
        circuit = mcx_with_toffolis(n, controls, target, ancillas)
        reference = Circuit(n).mcx(controls, target)
        simulator = StatevectorSimulator(n)
        unitary = simulator.unitary(circuit)
        expected = simulator.unitary(reference)
        # The Toffoli ladder assumes *clean* ancillas: compare only the
        # columns (and rows) where every ancilla bit is zero.
        ancilla_mask = sum(1 << (n - 1 - a) for a in ancillas)
        clean = [i for i in range(1 << n) if not i & ancilla_mask]
        np.testing.assert_allclose(
            unitary[np.ix_(clean, clean)], expected[np.ix_(clean, clean)], atol=1e-9
        )
        # And ancillas must be returned to zero (no leakage off-subspace).
        dirty = [i for i in range(1 << n) if i & ancilla_mask]
        if dirty:
            np.testing.assert_allclose(
                unitary[np.ix_(dirty, clean)], 0.0, atol=1e-9
            )

    def test_mcx_needs_ancillas(self):
        with pytest.raises(CircuitError):
            mcx_with_toffolis(4, [0, 1, 2], 3, [])
