"""Tests for the Clifford+T approximation-budget ablation."""

import pytest

from repro.evalsuite.budget import approximation_budget_sweep


@pytest.fixture(scope="module")
def rows():
    return approximation_budget_sweep(
        num_sites=2, precision_bits=2, budgets=(500, 2000)
    )


class TestBudgetSweep:
    def test_row_per_budget(self, rows):
        assert [row.max_words for row in rows] == [500, 2000]

    def test_overlap_reasonable(self, rows):
        """Even the small budget keeps the compiled circuit close to the
        ideal rotations on this small instance."""
        assert all(row.overlap_with_ideal > 0.7 for row in rows)
        assert all(row.overlap_with_ideal <= 1.0 + 1e-9 for row in rows)

    def test_larger_budget_not_worse(self, rows):
        """A superset search space can only improve (or tie) the
        per-rotation error, hence the state overlap up to cross terms;
        allow a small slack for interference between rotations."""
        assert rows[1].overlap_with_ideal >= rows[0].overlap_with_ideal - 0.05

    def test_bit_widths_substantial(self, rows):
        """Any budget produces the bit-width growth behind Fig. 5."""
        assert all(row.max_bit_width > 8 for row in rows)

    def test_costs_recorded(self, rows):
        assert all(row.algebraic_seconds > 0 for row in rows)
        assert all(row.t_count > 0 for row in rows)
        assert all(row.gate_count >= row.t_count for row in rows)
