"""Tests for the verification-reliability study (paper Section V-B)."""

import pytest

from repro.evalsuite.verification_study import (
    make_pairs,
    verification_reliability,
)


@pytest.fixture(scope="module")
def rows():
    return verification_reliability(epsilons=(0.0, 1e-10, 1e-2))


class TestPairs:
    def test_pair_construction(self):
        equivalent, inequivalent = make_pairs(num_qubits=3, num_pairs=2, seed=1)
        assert len(equivalent) == 2
        assert len(inequivalent) == 2
        for left, right in equivalent:
            assert left.num_qubits == right.num_qubits

    def test_equivalent_pairs_are_equivalent(self):
        from repro.verify.equivalence import check_equivalence

        equivalent, inequivalent = make_pairs(num_qubits=3, num_pairs=2, seed=2)
        for left, right in equivalent:
            assert check_equivalence(left, right)
        for left, right in inequivalent:
            assert not check_equivalence(left, right)


class TestReliability:
    def test_algebraic_sound_and_complete(self, rows):
        algebraic = rows[0]
        assert algebraic.config == "algebraic"
        assert algebraic.is_sound_and_complete
        assert algebraic.subtle_false_positives is None

    def test_eps0_has_false_negatives(self, rows):
        """Bit-exact floats miss rewrite equivalences (paper: tiny
        deviations 'in a few of the least significant bits')."""
        by_config = {row.config: row for row in rows}
        assert by_config["eps=0"].false_negatives > 0

    def test_coarse_eps_has_subtle_false_positives(self, rows):
        """eps = 1e-2 declares circuits differing by a genuine 1e-4
        rotation 'equivalent' -- the information-loss side."""
        by_config = {row.config: row for row in rows}
        assert by_config["eps=0.01"].subtle_false_positives > 0

    def test_moderate_eps_clean_on_this_instance(self, rows):
        """The sweet spot exists here -- but it had to be found, which
        is the paper's complaint."""
        by_config = {row.config: row for row in rows}
        assert by_config["eps=1e-10"].is_sound_and_complete

    def test_large_faults_always_detected(self, rows):
        """No configuration misses the T -> Tdg faults (O(1) deviation)."""
        assert all(row.false_positives == 0 for row in rows)
