"""Tests for the machine-precision floor experiment and single mode."""

import math

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import numeric_manager
from repro.evalsuite.precision import precision_floor_experiment
from repro.numeric.complex_table import ComplexTable
from repro.sim.simulator import Simulator


class TestSinglePrecisionTable:
    def test_rounding_through_binary32(self):
        table = ComplexTable(eps=0.0, precision="single")
        entry = table.lookup(complex(1 / math.sqrt(2), 0.0))
        # binary32 has ~7 decimal digits; the stored value differs from
        # the double by more than double-epsilon.
        assert entry.value.real != 1 / math.sqrt(2)
        assert abs(entry.value.real - 1 / math.sqrt(2)) < 1e-7

    def test_values_identified_after_rounding(self):
        """Two doubles that agree to binary32 intern identically."""
        table = ComplexTable(eps=0.0, precision="single")
        a = table.lookup(complex(0.1, 0.0))
        b = table.lookup(complex(0.1 + 1e-12, 0.0))
        assert a is b

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            ComplexTable(precision="half")

    def test_manager_name_tagged(self):
        manager = numeric_manager(2, precision="single")
        assert "single" in manager.system.name


class TestPrecisionFloor:
    @pytest.fixture(scope="class")
    def rows(self):
        return precision_floor_experiment(grover_circuit(5, 21))

    def test_both_precisions_reported(self, rows):
        assert [row.precision for row in rows] == ["double", "single"]

    def test_single_floor_much_higher(self, rows):
        """Paper Section V-A: the error floor tracks machine precision.
        binary32 vs binary64 is ~1e9 epsilon ratio; demand at least 1e4
        separation on this short workload."""
        by_precision = {row.precision: row for row in rows}
        assert by_precision["single"].final_error > 1e4 * max(
            by_precision["double"].final_error, 1e-18
        )

    def test_double_floor_is_tiny(self, rows):
        assert rows[0].final_error < 1e-10

    def test_single_still_functional(self, rows):
        """Lower precision degrades accuracy, not correctness: the
        result is still approximately right (small error in absolute
        terms) on this short circuit."""
        assert rows[1].final_error < 1e-2

    def test_single_precision_simulation_compactness(self):
        """Coarser floats can *help* compactness at eps = 0 -- more
        accidental bit-equality.  Just assert it is not worse."""
        circuit = grover_circuit(5, 21)
        single = Simulator(numeric_manager(5, precision="single")).run(circuit)
        double = Simulator(numeric_manager(5, precision="double")).run(circuit)
        assert single.trace.peak_node_count <= double.trace.peak_node_count
