"""Tests for the tuning-cost and scaling experiments."""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuits.library import ghz_circuit
from repro.evalsuite.scaling import grover_scaling
from repro.evalsuite.tradeoff import run_tradeoff
from repro.evalsuite.tuning import error_growth, tune_epsilon


class TestTuneEpsilon:
    @pytest.fixture(scope="class")
    def report(self):
        return tune_epsilon(grover_circuit(5, 21), error_target=1e-6)

    def test_search_succeeds_on_grover(self, report):
        assert report.succeeded
        assert report.chosen_eps is not None
        assert 0.0 <= report.chosen_eps <= 1e-4

    def test_search_costs_multiple_full_runs(self, report):
        """The paper's point: tuning = repeated full simulations."""
        assert report.num_trials >= 2
        assert report.total_seconds > 0
        assert all(trial.seconds > 0 for trial in report.trials)

    def test_coarse_candidates_fail_accuracy(self, report):
        coarse = [trial for trial in report.trials if trial.eps >= 1e-3]
        assert coarse, "grid should include coarse candidates"
        assert not all(trial.meets_accuracy for trial in coarse)

    def test_impossible_targets_reported(self):
        """Demanding better-than-float accuracy cannot succeed -- the
        'not guaranteed that the desired accuracy ... can be achieved
        at all' case."""
        report = tune_epsilon(
            grover_circuit(4, 9), error_target=1e-30, grid=(1e-4, 1e-10, 0.0)
        )
        assert not report.succeeded
        assert report.num_trials == 3

    def test_node_budget_constraint(self):
        """An absurdly tight compactness budget is unreachable too."""
        report = tune_epsilon(
            grover_circuit(4, 9), error_target=1.0, node_budget=1, grid=(1e-10, 0.0)
        )
        assert not report.succeeded

    def test_exhaustive_mode(self):
        report = tune_epsilon(
            ghz_circuit(3), error_target=1e-6, grid=(1e-10, 1e-12, 0.0),
            stop_at_first=False,
        )
        assert report.num_trials == 3


class TestErrorGrowth:
    def test_linear_series(self):
        slope, r_squared = error_growth([i * 2.0 for i in range(50)])
        assert slope == pytest.approx(2.0)
        assert r_squared == pytest.approx(1.0)

    def test_on_real_trace(self):
        """Section V-A: eps = 0 errors grow ~linearly with gate count."""
        result = run_tradeoff(grover_circuit(5, 21), epsilons=(0.0,))
        slope, r_squared = error_growth(result.error_series("eps=0"))
        assert slope > 0
        assert r_squared > 0.5

    def test_handles_none_entries(self):
        slope, _ = error_growth([None, 1.0, None, 3.0])
        assert slope == pytest.approx(1.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            error_growth([1.0])

    def test_constant_series(self):
        slope, r_squared = error_growth([5.0] * 10)
        assert slope == pytest.approx(0.0)
        assert r_squared == pytest.approx(1.0)


class TestScaling:
    def test_grover_scaling_shapes(self):
        """Algebraic peak grows slowly; eps = 0 peak tracks 2^n."""
        rows = grover_scaling(qubit_range=(4, 5, 6))
        assert [row.num_qubits for row in rows] == [4, 5, 6]
        # Exact DDs stay tiny on Grover (two-valued state vector).
        assert all(row.algebraic_peak <= 4 * row.num_qubits for row in rows)
        # eps = 0 grows at least geometrically towards 2^n.
        assert rows[-1].eps0_peak > rows[0].eps0_peak * 2
        assert rows[-1].eps0_peak > rows[-1].algebraic_peak
