"""A concrete numerical-instability case study (paper Fig. 3b / [29]).

During the 7-qubit Grover run at ``eps = 1e-20`` with the original
leftmost-pivot normalisation, a ~5e-16 cancellation residual becomes a
normalisation pivot; dividing by it blows edge weights up to ~1e16 and
the next Hadamard destroys the state (error ~0.72).  The
largest-magnitude normalisation of [29] -- whose stated purpose is to
keep all weights at absolute value <= 1 "which can increase the
numerical stability" -- avoids the blow-up entirely.  This test pins
both behaviours.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.sim.accuracy import state_error
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def setup():
    circuit = grover_circuit(7, 85)
    reference_manager = algebraic_manager(7)
    reference = reference_manager.to_statevector(
        Simulator(reference_manager).run(circuit).state
    )
    return circuit, reference


class TestLeftmostPivotInstability:
    def test_leftmost_normalisation_diverges(self, setup):
        """The instability event the paper attributes to fine-eps runs
        ('peaks ... indicate an undesired numerical instability in the
        multiplication algorithm')."""
        circuit, reference = setup
        manager = numeric_manager(7, eps=1e-20, normalization="leftmost")
        result = Simulator(manager).run(circuit)
        error = state_error(result.final_amplitudes(), reference)
        assert error > 0.1  # catastrophic, not a rounding wobble

    def test_max_magnitude_normalisation_recovers(self, setup):
        """[29]'s variant keeps |weights| <= 1 and stays accurate."""
        circuit, reference = setup
        manager = numeric_manager(7, eps=1e-20, normalization="max-magnitude")
        result = Simulator(manager).run(circuit)
        error = state_error(result.final_amplitudes(), reference)
        assert error < 1e-10

    def test_algebraic_is_immune(self, setup):
        """Exact arithmetic has no pivots to blow up."""
        circuit, reference = setup
        manager = algebraic_manager(7)
        result = Simulator(manager).run(circuit)
        error = state_error(result.final_amplitudes(), reference)
        assert error < 1e-12  # only the float conversion of the metric
