"""Integration tests: the paper's qualitative claims on small instances.

These run the actual figure drivers at reduced sizes and assert the
shape checks the paper's evaluation section states in prose.
"""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.evalsuite.ablation import run_normalization_ablation
from repro.evalsuite.experiments import (
    fig2_gse_size,
    fig3_grover,
    fig4_bwt,
    fig5_gse,
    shape_checks,
)

SMALL_WORDS = 2000


@pytest.fixture(scope="module")
def grover_result():
    return fig3_grover(num_qubits=6)


@pytest.fixture(scope="module")
def bwt_result():
    return fig4_bwt(depth=1, steps=4)


@pytest.fixture(scope="module")
def gse_result():
    return fig5_gse(num_sites=2, precision_bits=2, max_words=SMALL_WORDS)


class TestFig3Grover:
    def test_shapes(self, grover_result):
        checks = shape_checks(grover_result)
        assert checks["high_accuracy_is_largest"]
        assert checks["algebraic_not_larger_than_eps0"]
        assert checks["large_eps_corrupts"]
        assert checks["moderate_eps_accurate"]
        assert checks["algebraic_exact"]

    def test_error_grows_roughly_linearly_for_fine_eps(self, grover_result):
        """Section V-A: 'for a sufficiently small tolerance value the
        error indeed scales linearly with the number of applied gates'
        -- check it at least grows and stays tiny."""
        errors = [e for e in grover_result.error_series("eps=0") if e is not None]
        assert errors[-1] < 1e-10
        assert errors[-1] >= errors[0]

    def test_algebraic_overhead_is_moderate(self, grover_result):
        """Section V-B: algebraic vs redundancy-exploiting numeric is a
        small constant factor (paper: ~2x; allow slack for Python)."""
        algebraic = grover_result.traces["algebraic"].total_seconds
        numeric = grover_result.traces["eps=1e-10"].total_seconds
        assert algebraic < 25 * numeric

    def test_algebraic_not_slower_than_eps0_blowup(self, grover_result):
        """The headline win: exact without paying the eps = 0 blow-up.

        At this small size the two run-times are close (the exponential
        gap opens with the qubit count -- see bench_scaling); assert the
        algebraic run at least does not lose by more than a small
        factor despite exact arithmetic.
        """
        assert (
            grover_result.traces["algebraic"].total_seconds
            < 1.5 * grover_result.traces["eps=0"].total_seconds
        )


class TestFig4Bwt:
    def test_shapes(self, bwt_result):
        checks = shape_checks(bwt_result)
        assert checks["algebraic_exact"]
        assert checks.get("algebraic_not_larger_than_eps0", True)

    def test_fine_eps_accurate(self, bwt_result):
        errors = [e for e in bwt_result.error_series("eps=1e-10") if e is not None]
        assert errors[-1] < 1e-6


class TestFig5Gse:
    def test_shapes(self, gse_result):
        checks = shape_checks(gse_result)
        assert checks["algebraic_exact"]
        assert checks["algebraic_not_larger_than_eps0"]

    def test_bit_width_growth_is_the_overhead_mechanism(self, gse_result):
        """Section V-B: GSE blows up the integer bit-widths (unlike
        Grover/BWT where they stay tiny)."""
        widths = gse_result.bit_width_series("algebraic")
        assert max(widths) > 16

    def test_gse_slower_per_gate_than_numeric(self, gse_result):
        """The paper's Fig. 5c: the algebraic run-time overhead on GSE is
        far beyond the ~2x of Grover/BWT."""
        algebraic = gse_result.traces["algebraic"].total_seconds
        fastest_numeric = min(
            gse_result.traces[c].total_seconds
            for c in gse_result.configurations()
            if c.startswith("eps=")
        )
        assert algebraic > fastest_numeric


class TestFig2:
    def test_fig2_epsilon_set(self):
        result = fig2_gse_size(num_sites=2, precision_bits=2, max_words=SMALL_WORDS)
        assert "eps=0.001" in result.configurations()
        assert "eps=0" in result.configurations()


class TestAblation:
    def test_normalization_ablation_rows(self):
        rows = run_normalization_ablation(grover_circuit(4, 5), include_gcd=True)
        schemes = [row.scheme for row in rows]
        assert schemes[0].startswith("algebraic-q")
        assert any("gcd" in s for s in schemes)
        assert any("max-magnitude" in s for s in schemes)

    def test_qomega_keeps_half_weights_trivial(self):
        """Section V-B: 'at least half of the occurring edge weights are
        trivial' under the Q[omega] scheme."""
        rows = run_normalization_ablation(grover_circuit(4, 5), include_gcd=True)
        by_scheme = {row.scheme: row for row in rows}
        q_row = by_scheme["algebraic-q (Alg.2)"]
        assert q_row.trivial_weight_fraction >= 0.5

    def test_gcd_has_fewer_trivial_weights(self):
        """Section V-B: the GCD scheme 'obtains ... very few trivial edge
        weights' in comparison."""
        rows = run_normalization_ablation(grover_circuit(4, 5), include_gcd=True)
        by_scheme = {row.scheme: row for row in rows}
        assert (
            by_scheme["algebraic-gcd (Alg.3)"].trivial_weight_fraction
            <= by_scheme["algebraic-q (Alg.2)"].trivial_weight_fraction
        )
