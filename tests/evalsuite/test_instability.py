"""Tests for the error-peak instability analysis (paper Fig. 3b)."""

import pytest

from repro.evalsuite.instability import analyze_error_series


class TestAnalyzeErrorSeries:
    def test_smooth_linear_growth_is_stable(self):
        series = [1e-16 * (i + 1) for i in range(200)]
        report = analyze_error_series(series)
        assert not report.is_unstable
        assert report.num_peaks == 0
        assert report.samples == 200

    def test_isolated_peak_detected(self):
        series = [1e-15] * 100
        series[40] = 1e-9  # a 10^6 spike
        report = analyze_error_series(series)
        assert report.is_unstable
        assert 40 in report.peak_indices
        assert report.peak_factor > 1e5

    def test_multiple_peaks(self):
        series = [1e-14] * 300
        for index in (50, 150, 250):
            series[index] = 1e-8
        report = analyze_error_series(series)
        assert report.num_peaks == 3
        assert report.peak_indices == (50, 150, 250)

    def test_none_entries_skipped(self):
        series = [None, 1e-15, None, 1e-15, 1e-15]
        report = analyze_error_series(series)
        assert report.samples == 3

    def test_empty_series(self):
        report = analyze_error_series([])
        assert report.samples == 0
        assert not report.is_unstable

    def test_all_zero_series(self):
        report = analyze_error_series([0.0] * 50)
        assert not report.is_unstable
        assert report.median_error == 0.0

    def test_threshold_configurable(self):
        series = [1e-15] * 60
        series[30] = 5e-14  # a 50x bump
        strict = analyze_error_series(series, threshold=10.0)
        lax = analyze_error_series(series, threshold=100.0)
        assert strict.num_peaks == 1
        assert lax.num_peaks == 0

    def test_median_and_max(self):
        series = [2.0, 4.0, 6.0]
        report = analyze_error_series(series, threshold=1e9)
        assert report.median_error == pytest.approx(4.0)
        assert report.max_error == pytest.approx(6.0)
