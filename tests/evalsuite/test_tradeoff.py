"""Tests for the trade-off experiment runner and reporting."""

import pytest

from repro.algorithms.grover import grover_circuit
from repro.circuits.circuit import Circuit
from repro.circuits.library import ghz_circuit
from repro.evalsuite.reporting import (
    format_table,
    render_series,
    render_summary,
    sample_indices,
)
from repro.evalsuite.tradeoff import run_tradeoff


@pytest.fixture(scope="module")
def grover_result():
    return run_tradeoff(
        grover_circuit(4, 9), epsilons=(0.0, 1e-10, 1e-3), include_gcd=True
    )


class TestRunTradeoff:
    def test_all_configurations_present(self, grover_result):
        assert set(grover_result.configurations()) == {
            "algebraic",
            "algebraic-gcd",
            "eps=0",
            "eps=1e-10",
            "eps=0.001",
        }

    def test_series_lengths(self, grover_result):
        for config in grover_result.configurations():
            assert len(grover_result.node_series(config)) == grover_result.num_gates
            assert len(grover_result.runtime_series(config)) == grover_result.num_gates

    def test_errors_only_for_numeric(self, grover_result):
        assert all(e is None for e in grover_result.error_series("algebraic"))
        numeric_errors = grover_result.error_series("eps=0")
        assert all(isinstance(e, float) for e in numeric_errors)

    def test_runtime_monotone(self, grover_result):
        for config in grover_result.configurations():
            series = grover_result.runtime_series(config)
            assert all(b >= a for a, b in zip(series, series[1:]))

    def test_exact_schemes_agree_on_sizes(self, grover_result):
        """Both algebraic normalisations detect the same redundancies,
        so their node counts coincide."""
        assert grover_result.node_series("algebraic") == grover_result.node_series(
            "algebraic-gcd"
        )

    def test_moderate_eps_matches_algebraic_size(self, grover_result):
        assert (
            grover_result.node_series("eps=1e-10")
            == grover_result.node_series("algebraic")
        )

    def test_eps0_larger_than_algebraic(self, grover_result):
        assert (
            grover_result.traces["eps=0"].peak_node_count
            > grover_result.traces["algebraic"].peak_node_count
        )

    def test_summary_rows(self, grover_result):
        rows = grover_result.summary_rows()
        assert len(rows) == 5
        by_config = {row["config"]: row for row in rows}
        assert by_config["algebraic"]["final_error"] == 0.0
        assert by_config["eps=0"]["max_error"] < 1e-10

    def test_errors_can_be_disabled(self):
        result = run_tradeoff(
            ghz_circuit(3), epsilons=(0.0,), compute_errors=False
        )
        assert all(e is None for e in result.error_series("eps=0"))

    def test_dense_qubit_guard(self):
        result = run_tradeoff(
            ghz_circuit(3), epsilons=(0.0,), max_dense_qubits=2
        )
        assert all(e is None for e in result.error_series("eps=0"))


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_format_cell_styles(self):
        table = format_table(
            ["x"], [[True], [None], [0.0], [1.5e-7], [123456.0], [3.14]]
        )
        assert "yes" in table and "-" in table and "1.50e-07" in table

    def test_sample_indices(self):
        assert sample_indices(5, 10) == [0, 1, 2, 3, 4]
        indices = sample_indices(100, 5)
        assert indices[0] == 0 and indices[-1] == 99
        assert len(indices) == 5
        assert sample_indices(0, 4) == []

    def test_render_series_and_summary(self, grover_result):
        for metric in ("nodes", "error", "seconds"):
            text = render_series(grover_result, metric)
            assert "algebraic" in text or metric == "error"
            assert "eps=0" in text
        summary = render_summary(grover_result)
        assert "zero_collapse" in summary

    def test_render_unknown_metric(self, grover_result):
        with pytest.raises(ValueError):
            render_series(grover_result, "bogus")
