"""Distributed tracing through the batch engine.

The acceptance contract of the tracing tentpole: a ``workers=2``
``run_batch`` with a tracing coordinator scope produces ONE validated
Chrome trace containing every worker's ``sim.gate`` /
``dd.apply.direct`` spans re-parented under the coordinator's
``exec.batch`` span, on distinct per-worker pid tracks -- and tracing
never changes the simulation results (byte-identity on vs off).
"""

import json

import pytest

from repro import Circuit
from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.obs import Telemetry, validate_chrome_trace, write_chrome_trace


def ghz_t(num_qubits: int = 3) -> Circuit:
    circuit = Circuit(num_qubits, name=f"ghzt{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.t(qubit)
    circuit.h(num_qubits - 1)
    return circuit


def _requests(count=4):
    return [
        RunRequest(ghz_t(), config=SimulatorConfig(system="algebraic-gcd"))
        for _ in range(count)
    ]


def _traced_batch(workers, count=4):
    telemetry = Telemetry.tracing()
    batch = run_batch(_requests(count), workers=workers, telemetry=telemetry)
    assert batch.ok, batch.failures
    return telemetry, batch


class TestCoordinatorRing:
    def test_trace_id_minted_and_tagged(self):
        telemetry, batch = _traced_batch(workers=1)
        assert batch.trace_id is not None and len(batch.trace_id) == 32
        spans = telemetry.tracer.spans()
        batch_span = next(s for s in spans if s.name == "exec.batch")
        assert batch_span.attrs["trace_id"] == batch.trace_id
        adopted = [s for s in spans if "worker_pid" in s.attrs]
        assert adopted and all(
            s.attrs["trace_id"] == batch.trace_id for s in adopted
        )

    def test_exec_job_roots_link_to_exec_batch(self):
        telemetry, _ = _traced_batch(workers=1)
        spans = telemetry.tracer.spans()
        batch_span = next(s for s in spans if s.name == "exec.batch")
        jobs = [s for s in spans if s.name == "exec.job"]
        assert len(jobs) == 4
        for job in jobs:
            assert job.attrs["parent_span_id"] == batch_span.attrs["span_id"]
            assert job.depth == batch_span.depth + 1
            # Offset-aligned containment within the batch window.
            assert batch_span.start <= job.start
            assert job.end <= batch_span.end

    def test_worker_span_kinds_present(self):
        telemetry, _ = _traced_batch(workers=1)
        names = {s.name for s in telemetry.tracer.spans()}
        assert {"exec.batch", "exec.job", "sim.gate", "dd.apply.direct"} <= names

    def test_span_counter_in_fleet_metrics(self):
        telemetry, batch = _traced_batch(workers=1)
        adopted = [
            s for s in telemetry.tracer.spans() if "worker_pid" in s.attrs
        ]
        assert batch.metrics["exec.batch.trace.spans"] == len(adopted)

    def test_untraced_scope_ships_nothing(self):
        telemetry = Telemetry()  # metrics only
        batch = run_batch(_requests(2), workers=1, telemetry=telemetry)
        assert batch.ok
        assert batch.trace_id is None
        assert len(telemetry.tracer) == 0
        assert batch.metrics["exec.batch.trace.spans"] == 0


class TestMultiProcessTrace:
    def test_workers2_single_validated_chrome_trace(self, tmp_path):
        telemetry, batch = _traced_batch(workers=2, count=6)
        path = tmp_path / "batch_trace.json"
        document = write_chrome_trace(telemetry.tracer.spans(), str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert len(by_name["exec.batch"]) == 1
        assert len(by_name["exec.job"]) == 6
        assert by_name["sim.gate"] and by_name["dd.apply.direct"]

        # Every worker process that ran a job appears as its own pid
        # track with a metadata name; the coordinator keeps pid 0.
        worker_pids = {e["pid"] for e in by_name["exec.job"]}
        assert 0 not in worker_pids
        assert by_name["exec.batch"][0]["pid"] == 0
        named_tracks = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(named_tracks) == worker_pids | {0}
        assert all(
            str(pid) in named_tracks[pid] for pid in worker_pids
        )

        # Each worker's gate spans live on that worker's own track.
        for event in by_name["sim.gate"]:
            assert event["pid"] in worker_pids

        # Re-parenting as time containment: every job event inside the
        # batch window (µs integers: allow 1µs rounding).
        batch_event = by_name["exec.batch"][0]
        for event in by_name["exec.job"]:
            assert batch_event["ts"] <= event["ts"] + 1
            assert (
                event["ts"] + event["dur"]
                <= batch_event["ts"] + batch_event["dur"] + 1
            )

    def test_every_job_ships_spans(self):
        telemetry, _ = _traced_batch(workers=2, count=5)
        jobs = [s for s in telemetry.tracer.spans() if s.name == "exec.job"]
        assert sorted(s.attrs["index"] for s in jobs) == [0, 1, 2, 3, 4]


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_results_identical_tracing_on_off(self, workers):
        plain = run_batch(_requests(3), workers=workers)
        traced = run_batch(
            _requests(3), workers=workers, telemetry=Telemetry.tracing()
        )
        assert plain.ok and traced.ok
        for left, right in zip(plain.results, traced.results):
            assert left.state_payload == right.state_payload
            assert left.node_count == right.node_count
            assert left.metrics["sim.gates"] == right.metrics["sim.gates"]


class TestFailurePaths:
    def test_failed_job_still_ships_spans(self):
        bad = Circuit(2, name="bad")
        bad.h(0)
        bad.cp(0.3, 0, 1)  # no exact D[omega] representation
        telemetry = Telemetry.tracing()
        batch = run_batch(
            [RunRequest(bad, config=SimulatorConfig(system="algebraic-gcd"))],
            workers=1,
            telemetry=telemetry,
        )
        assert not batch.ok
        spans = telemetry.tracer.spans()
        job = next(s for s in spans if s.name == "exec.job")
        assert job.attrs["error"] == "SimulationError"
        # The gates applied before the failure made it home too.
        assert any(s.name == "sim.gate" for s in spans)
