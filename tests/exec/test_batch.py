"""Tests for the repro.exec batch engine.

The engine's headline guarantee -- ``workers=4`` produces byte-identical
job payloads to the sequential ``workers=1`` fallback -- is asserted
here across all four number-system configurations, alongside failure
isolation, bounded retry and the worker-side timeout.
"""

import time

import pytest

from repro import Circuit
from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.errors import ConfigError
from repro.exec import BatchResult, JobFailure
from repro.exec.batch import JobTimeout
from repro.obs import merge_snapshots


def ghz_t(num_qubits: int = 3) -> Circuit:
    circuit = Circuit(num_qubits, name=f"ghzt{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.t(qubit)
    circuit.h(num_qubits - 1)
    return circuit


#: The four number-system configurations of the facade (paper Section V).
FOUR_SYSTEMS = (
    SimulatorConfig(system="algebraic"),
    SimulatorConfig(system="algebraic-gcd"),
    SimulatorConfig(system="numeric", eps=1e-10, normalization="leftmost"),
    SimulatorConfig(system="numeric", eps=1e-10, normalization="max-magnitude"),
)


class TestDeterminism:
    def test_workers4_byte_identical_to_workers1(self):
        requests = [
            RunRequest(
                ghz_t(),
                config,
                error_reference=(
                    SimulatorConfig(system="algebraic")
                    if config.system == "numeric"
                    else None
                ),
            )
            for config in FOUR_SYSTEMS
        ]
        sequential = run_batch(requests, workers=1)
        parallel = run_batch(requests, workers=4)
        assert sequential.ok and parallel.ok
        for seq, par in zip(sequential.results, parallel.results):
            assert seq.state_payload == par.state_payload  # byte-identical
            assert seq.node_count == par.node_count
            assert seq.is_zero_state == par.is_zero_state
            assert seq.trace.node_counts() == par.trace.node_counts()
            assert seq.final_error == par.final_error
            assert seq.fidelity == par.fidelity

    def test_results_stay_index_aligned(self):
        requests = [
            RunRequest(ghz_t(), config, label=f"job{index}")
            for index, config in enumerate(FOUR_SYSTEMS)
        ]
        batch = run_batch(requests, workers=2)
        assert [result.label for result in batch.results] == [
            "job0", "job1", "job2", "job3",
        ]


class TestFailureIsolation:
    def test_poisoned_job_becomes_typed_failure(self):
        requests = [
            RunRequest(ghz_t(), SimulatorConfig(system="algebraic"), label="good-1"),
            RunRequest(
                ghz_t(4), SimulatorConfig(max_nodes=1), label="poisoned"
            ),
            RunRequest(ghz_t(), SimulatorConfig(system="numeric"), label="good-2"),
        ]
        batch = run_batch(requests, workers=2)
        assert isinstance(batch, BatchResult)
        assert not batch.ok
        assert [result.label for result in batch.completed] == ["good-1", "good-2"]
        assert batch.results[1] is None
        (failure,) = batch.failures
        assert isinstance(failure, JobFailure)
        assert failure.label == "poisoned"
        assert failure.error_type == "MemoryBudgetExceeded"
        assert failure.attempts == 1
        assert not failure.timed_out
        assert failure.metrics  # partial telemetry survived the crash
        assert batch.metrics["exec.batch.failed"] == 1
        assert batch.metrics["exec.batch.completed"] == 2

    def test_report_is_json_ready(self):
        import json

        batch = run_batch(
            [RunRequest(ghz_t(), SimulatorConfig(max_nodes=1), label="boom")]
        )
        report = json.loads(json.dumps(batch.to_dict()))
        assert report["failed"] == 1
        assert report["results"] == [None]
        assert report["failures"][0]["error_type"] == "MemoryBudgetExceeded"


class TestRetry:
    def test_flaky_job_succeeds_on_retry(self, monkeypatch):
        from repro.api import run as real_run
        from repro.exec import batch as batch_mod

        calls = {"count": 0}

        def flaky_run(request, telemetry=None):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient worker hiccup")
            return real_run(request, telemetry=telemetry)

        monkeypatch.setattr(batch_mod, "run", flaky_run)
        batch = run_batch(
            [RunRequest(ghz_t(), label="flaky")], workers=1, retries=2, backoff=0.0
        )
        assert batch.ok
        assert batch.results[0].attempts == 2
        assert batch.metrics["exec.batch.retries"] == 1

    def test_retries_are_bounded(self, monkeypatch):
        from repro.exec import batch as batch_mod

        def always_fails(request, telemetry=None):
            raise RuntimeError("permanent")

        monkeypatch.setattr(batch_mod, "run", always_fails)
        batch = run_batch(
            [RunRequest(ghz_t(), label="doomed")], workers=1, retries=2, backoff=0.0
        )
        (failure,) = batch.failures
        assert failure.attempts == 3  # initial attempt + 2 retries
        assert failure.error_type == "RuntimeError"

    def test_backoff_sleeps_between_rounds(self, monkeypatch):
        from repro.exec import batch as batch_mod

        sleeps = []
        monkeypatch.setattr(batch_mod.time, "sleep", sleeps.append)

        def always_fails(request, telemetry=None):
            raise RuntimeError("permanent")

        monkeypatch.setattr(batch_mod, "run", always_fails)
        run_batch([RunRequest(ghz_t())], workers=1, retries=3, backoff=0.5)
        assert sleeps == [0.5, 1.0, 2.0]  # exponential


class TestTimeout:
    def test_wedged_job_times_out(self, monkeypatch):
        from repro.exec import batch as batch_mod

        def wedged(request, telemetry=None):
            time.sleep(30.0)

        monkeypatch.setattr(batch_mod, "run", wedged)
        started = time.perf_counter()
        batch = run_batch([RunRequest(ghz_t(), label="wedged")], workers=1, timeout=0.2)
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0
        (failure,) = batch.failures
        assert failure.timed_out
        assert failure.error_type == "JobTimeout"
        assert batch.metrics["exec.batch.timeouts"] == 1

    def test_fast_job_unaffected_by_deadline(self):
        batch = run_batch([RunRequest(ghz_t())], workers=1, timeout=60.0)
        assert batch.ok

    def test_job_timeout_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(JobTimeout, ReproError)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"retries": -1},
            {"timeout": 0.0},
            {"backoff": -0.1},
        ],
    )
    def test_bad_engine_parameters(self, kwargs):
        with pytest.raises(ConfigError):
            run_batch([RunRequest(ghz_t())], **kwargs)

    def test_empty_batch(self):
        batch = run_batch([])
        assert batch.ok and batch.results == []


class TestTelemetryMerge:
    def test_counters_sum_and_gauges_max(self):
        merged = merge_snapshots(
            [
                {"dd.apply.direct": 3, "dd.ut.vector.size": 10},
                {"dd.apply.direct": 4, "dd.ut.vector.size": 7},
            ]
        )
        assert merged["dd.apply.direct"] == 7
        assert merged["dd.ut.vector.size"] == 10  # high-water, not sum

    def test_histograms_merge_bucketwise(self):
        histogram = {
            "count": 2,
            "sum": 3.0,
            "mean": 1.5,
            "buckets": {"le_1": 1, "inf": 1},
        }
        other = {
            "count": 1,
            "sum": 9.0,
            "mean": 9.0,
            "buckets": {"le_1": 0, "inf": 1},
        }
        merged = merge_snapshots([{"h": histogram}, {"h": other}])
        assert merged["h"]["count"] == 3
        assert merged["h"]["sum"] == 12.0
        assert merged["h"]["mean"] == 4.0
        assert merged["h"]["buckets"] == {"le_1": 1, "inf": 2}

    def test_batch_merges_sim_metrics_fleet_wide(self):
        requests = [RunRequest(ghz_t()) for _ in range(3)]
        batch = run_batch(requests, workers=2)
        per_job = sum(result.metrics["sim.gates"] for result in batch.completed)
        assert batch.metrics["sim.gates"] == per_job
        assert batch.metrics["exec.batch.jobs"] == 3
        assert batch.metrics["exec.job.seconds"]["count"] == 3
