r"""Command-line interface: ``repro-qmdd``.

Subcommands mirror the evaluation workflow:

``repro-qmdd simulate --algorithm grover --qubits 6 --system algebraic``
    Simulate one benchmark under one representation and print metrics.

``repro-qmdd batch --algorithm grover --qubits 6 --workers 4``
    Run the epsilon-tradeoff sweep as a parallel batch through
    :func:`repro.api.run_batch` (per-job timeout, bounded retries) and
    print -- or write with ``--report`` -- the batch report with
    per-job and fleet-merged telemetry.

``repro-qmdd tradeoff --algorithm grover --qubits 6``
    Run the full epsilon sweep (the paper's Figs. 3-5) and print the
    three series plus the summary and shape checks.

``repro-qmdd figure fig2|fig3|fig4|fig5``
    Regenerate one paper figure with default (laptop) parameters.

``repro-qmdd ablation --qubits 5``
    The normalisation-scheme ablation of Section V-B.

``repro-qmdd sanitize --algorithm grover --qubits 6 --mode check-every-op``
    Simulate under the DD sanitizer and report the invariant-check
    coverage (nodes / edges / memo entries / amplitudes verified).

``repro-qmdd gc --algorithm grover --qubits 8 --threshold 256 --audit``
    Simulate with the mark-and-sweep garbage collector enabled, print
    the collection statistics, and (with ``--audit``) cross-check the
    incremental refcounts against a structural recount.  ``--max-nodes``
    / ``--max-bytes`` turn the run into a budget check that exits 2 on
    :class:`~repro.errors.MemoryBudgetExceeded`.

``repro-qmdd profile --algorithm grover --qubits 6``
    Run one benchmark with tracing on and print the top spans by total
    time plus the engine-table hit-rate table (see
    ``docs/OBSERVABILITY.md``).

``repro-qmdd trace --algorithm grover --qubits 6 --out trace.json``
    Run one benchmark and export the span ring as Chrome
    ``trace_event`` JSON (open in https://ui.perfetto.dev).

``repro-qmdd batch ... --trace-out batch_trace.json``
    Same batch run with distributed tracing on: every worker ships its
    spans home and the export is one multi-process Chrome trace --
    the coordinator's ``exec.batch`` span on track 0, each worker's
    ``exec.job``/``sim.gate`` spans on their own pid track.

``repro-qmdd perf record|compare|report``
    The performance observatory (see ``repro.obs.perf``): record
    median-of-N benchmark workloads as versioned ``BENCH_*.json``
    documents, compare them against the committed baselines in
    ``benchmarks/baselines/`` with noise-aware bands (non-zero exit on
    regression), and print result tables.

``repro-qmdd serve --workers 2 --verify``
    Run an embedded :class:`repro.serve.SimulationService` session: a
    mixed workload across all four number systems goes through the
    service twice (cache miss then hit), ``--verify`` asserts every
    payload byte-identical to the direct :func:`repro.api.run` path,
    and the ``serve.*`` telemetry is printed after a clean shutdown.
    Exit 1 on any mismatch or failed request.

``repro-qmdd serve-bench --qubits 8``
    The service latency benchmark (see ``repro.serve.bench``): warm
    repeat-request p50/p99 and throughput vs the cold batch per-job
    cost, written as ``BENCH_serve_*.json`` via ``repro.obs.perf``.

The simulation flags (``--system``, ``--eps``, ``--gc``,
``--sanitize``, ``--workers``) are spelled and defaulted identically
on every sweep-capable subcommand; they come from one shared parent
parser backed by :class:`repro.api.SimulatorConfig`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.algorithms.bwt import bwt_circuit
from repro.algorithms.grover import grover_circuit
from repro.algorithms.gse import gse_circuit
from repro.api import (
    SANITIZE_MODES,
    SYSTEMS,
    RunRequest,
    SimulatorConfig,
    make_simulator,
    run_batch,
)
from repro.circuits.circuit import Circuit
from repro.evalsuite.ablation import run_normalization_ablation
from repro.evalsuite.experiments import (
    fig2_gse_size,
    fig3_grover,
    fig4_bwt,
    fig5_gse,
    shape_checks,
)
from repro.evalsuite.reporting import (
    format_table,
    render_metrics,
    render_series,
    render_summary,
)
from repro.evalsuite.tradeoff import DEFAULT_EPSILONS, run_tradeoff, tradeoff_requests
from repro.obs import Telemetry, aggregate_spans, write_chrome_trace, write_jsonl

__all__ = ["main"]

#: Defaults for the shared flags come from the facade's own defaults,
#: so the CLI can never drift from the library.
_DEFAULTS = SimulatorConfig()


def _config_parents() -> "tuple[argparse.ArgumentParser, argparse.ArgumentParser]":
    """The two shared parent parsers (see module docstring).

    ``system_parent`` carries ``--system``/``--eps`` for single-run
    commands (profile, trace, sanitize, gc); ``config_parent`` extends
    it with ``--gc``/``--sanitize``/``--workers`` for the sweep-capable
    commands (simulate, batch, tradeoff, scaling, tuning, ablation).
    """
    system_parent = argparse.ArgumentParser(add_help=False)
    system_parent.add_argument(
        "--system", choices=SYSTEMS, default=_DEFAULTS.system, help="number system"
    )
    system_parent.add_argument(
        "--eps", type=float, default=_DEFAULTS.eps, help="numeric tolerance"
    )
    config_parent = argparse.ArgumentParser(add_help=False, parents=[system_parent])
    config_parent.add_argument(
        "--gc",
        type=int,
        default=_DEFAULTS.gc,
        help="garbage-collection node threshold (off when omitted)",
    )
    config_parent.add_argument(
        "--sanitize",
        choices=SANITIZE_MODES,
        default=_DEFAULTS.sanitize,
        help="DD invariant sanitizer mode",
    )
    config_parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for batched sweeps (1 = in-process)",
    )
    return system_parent, config_parent


def _config_from_args(args: argparse.Namespace) -> SimulatorConfig:
    """A :class:`SimulatorConfig` from the shared flags (absent = default)."""
    return SimulatorConfig(
        system=args.system,
        eps=args.eps,
        gc=getattr(args, "gc", _DEFAULTS.gc),
        sanitize=getattr(args, "sanitize", _DEFAULTS.sanitize),
    )


def _build_circuit(args: argparse.Namespace) -> Circuit:
    if args.algorithm == "grover":
        marked = args.marked if args.marked is not None else (1 << args.qubits) * 2 // 3
        return grover_circuit(args.qubits, marked)
    if args.algorithm == "bwt":
        return bwt_circuit(depth=args.depth, steps=args.steps, seed=args.seed)
    if args.algorithm == "gse":
        return gse_circuit(num_sites=args.sites, precision_bits=args.precision)
    raise SystemExit(f"unknown algorithm {args.algorithm!r}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    config = _config_from_args(args)
    manager = config.create_manager(circuit.num_qubits)
    result = make_simulator(manager, config).run(circuit)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}")
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print(f"zero collapse: {'yes' if result.is_zero_state else 'no'}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    epsilons = (
        tuple(float(eps) for eps in args.epsilons.split(","))
        if args.epsilons
        else DEFAULT_EPSILONS
    )
    requests = tradeoff_requests(
        circuit, epsilons=epsilons, include_gcd=args.include_gcd
    )
    # A tracing-enabled coordinator scope switches on distributed
    # tracing: run_batch injects a TraceContext into every job and
    # re-parents the shipped worker spans under its exec.batch span.
    telemetry = Telemetry.tracing() if args.trace_out else None
    batch = run_batch(
        requests,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        telemetry=telemetry,
    )
    report = batch.to_dict()
    print(
        f"batch: {len(batch.results)} jobs on {batch.workers} worker(s), "
        f"{batch.seconds:.2f} s wall-clock, "
        f"{len(batch.completed)} completed, {len(batch.failures)} failed"
    )
    print(
        format_table(
            ["job", "nodes", "seconds", "attempts", "final_error", "zero"],
            [
                [
                    result.label,
                    result.node_count,
                    round(result.seconds, 4),
                    result.attempts,
                    result.final_error if result.final_error is not None else "-",
                    result.is_zero_state,
                ]
                for result in batch.completed
            ],
        )
    )
    for failure in batch.failures:
        print(
            f"FAILED {failure.label}: [{failure.error_type}] {failure.message} "
            f"(attempts={failure.attempts}, timed_out={failure.timed_out})"
        )
    print()
    print("fleet-merged telemetry:")
    print(render_metrics(batch.metrics))
    if args.trace_out:
        assert telemetry is not None
        document = write_chrome_trace(telemetry.tracer.spans(), args.trace_out)
        print(
            f"wrote {len(document['traceEvents'])} trace events "
            f"(trace id {batch.trace_id}) to {args.trace_out} "
            "(open in https://ui.perfetto.dev or chrome://tracing)"
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote batch report to {args.report}")
    return 0 if batch.ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.errors import SanitizerError

    circuit = _build_circuit(args)
    if args.mode == "off":
        raise SystemExit("sanitize: --mode must be check-on-root or check-every-op")
    config = SimulatorConfig(system=args.system, eps=args.eps, sanitize=args.mode)
    manager = config.create_manager(circuit.num_qubits)
    simulator = make_simulator(manager, config)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}   mode: {args.mode}")
    try:
        result = simulator.run(circuit)
    except SanitizerError as error:
        print(f"FAIL {error}")
        return 1
    sanitizer = simulator.sanitizer
    assert sanitizer is not None
    print(sanitizer.total.summary())
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.errors import MemoryBudgetExceeded, SanitizerError

    circuit = _build_circuit(args)
    config = SimulatorConfig(
        system=args.system,
        eps=args.eps,
        gc=args.threshold,
        gc_min_yield=args.min_yield,
        max_nodes=args.max_nodes,
        max_bytes=args.max_bytes,
        sanitize="check-on-root" if args.audit else "off",
    )
    manager = config.create_manager(circuit.num_qubits)
    simulator = make_simulator(manager, config)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}   threshold: {args.threshold}")
    if args.max_nodes is not None or args.max_bytes is not None:
        print(f"budget:  max_nodes={args.max_nodes} max_bytes={args.max_bytes}")
    try:
        result = simulator.run(circuit)
    except MemoryBudgetExceeded as error:
        print(f"FAIL {error}")
        return 2
    except SanitizerError as error:
        print(f"FAIL {error}")
        return 1
    stats = manager.memory.statistics()
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in sorted(stats.items())],
        )
    )
    if args.audit:
        sanitizer = simulator.sanitizer
        assert sanitizer is not None
        print(sanitizer.total.summary())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    telemetry = Telemetry.tracing(detail=args.detail)
    config = SimulatorConfig(system=args.system, eps=args.eps, telemetry="tracing")
    manager = config.create_manager(circuit.num_qubits, telemetry)
    result = make_simulator(manager, config).run(circuit)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}")
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print()
    rows = aggregate_spans(telemetry.tracer.spans())[: args.top]
    print(f"top spans by total time (of {len(telemetry.tracer)} recorded):")
    print(
        format_table(
            ["span", "count", "total_s", "mean_s", "max_s"],
            [
                [name, count, round(total, 6), round(mean, 6), round(peak, 6)]
                for name, count, total, mean, peak in rows
            ],
        )
    )
    if telemetry.tracer.dropped:
        print(f"(ring full: {telemetry.tracer.dropped} older spans dropped)")
    print()
    print("engine table hit rates:")
    print(render_metrics(telemetry.metrics.snapshot()))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    telemetry = Telemetry.tracing(detail=args.detail)
    config = SimulatorConfig(system=args.system, eps=args.eps, telemetry="tracing")
    manager = config.create_manager(circuit.num_qubits, telemetry)
    make_simulator(manager, config).run(circuit)
    spans = telemetry.tracer.spans()
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    document = write_chrome_trace(spans, args.out)
    print(
        f"wrote {len(document['traceEvents'])} trace events to {args.out} "
        "(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    if telemetry.tracer.dropped:
        print(f"(ring full: {telemetry.tracer.dropped} older spans dropped)")
    return 0


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.errors import BenchFormatError
    from repro.obs import perf

    names = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else perf.workload_names()
    )
    records = []
    try:
        for name in names:
            record = perf.record_workload(
                name, repeats=args.repeats, system=args.system
            )
            path = perf.save_record(record, args.out_dir)
            print(f"recorded {name}: {path}")
            records.append(record)
    except BenchFormatError as error:
        print(f"perf record: {error}", file=sys.stderr)
        return 2
    print()
    print(perf.format_record_report(records))
    return 0


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.errors import BenchFormatError
    from repro.obs import perf

    try:
        baselines = {
            record.workload: record
            for record in map(perf.load_record, perf.list_records(args.baseline_dir))
        }
        currents = {
            record.workload: record
            for record in map(perf.load_record, perf.list_records(args.current_dir))
        }
    except BenchFormatError as error:
        print(f"perf compare: {error}", file=sys.stderr)
        return 2
    if not baselines:
        print(f"perf compare: no baselines under {args.baseline_dir}", file=sys.stderr)
        return 2
    shared = sorted(baselines.keys() & currents.keys())
    comparisons = []
    try:
        for name in shared:
            comparisons.append(
                perf.compare_records(
                    baselines[name], currents[name], min_rel=args.min_rel
                )
            )
    except BenchFormatError as error:
        print(f"perf compare: {error}", file=sys.stderr)
        return 2
    print(perf.format_comparison_report(comparisons))
    for name in sorted(baselines.keys() - currents.keys()):
        print(f"note: baseline {name} has no current record (not compared)")
    for name in sorted(currents.keys() - baselines.keys()):
        print(f"note: current {name} has no baseline (not compared)")
    regressed = [c for c in comparisons if c.regressed]
    if regressed:
        names = ", ".join(c.workload for c in regressed)
        if args.informational:
            print(f"REGRESSED (informational, not gating): {names}")
            return 0
        print(f"REGRESSED: {names}")
        return 1
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.errors import BenchFormatError
    from repro.obs import perf

    paths = perf.list_records(args.dir)
    if not paths:
        print(f"no BENCH_*.json records under {args.dir}")
        return 0
    try:
        records = [perf.load_record(path) for path in paths]
    except BenchFormatError as error:
        print(f"perf report: {error}", file=sys.stderr)
        return 2
    print(perf.format_record_report(records))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api import run
    from repro.serve import SimulationService

    marked = (1 << args.qubits) * 2 // 3
    circuit = grover_circuit(args.qubits, marked)
    configs = [
        SimulatorConfig(system="algebraic"),
        SimulatorConfig(system="algebraic-gcd"),
        SimulatorConfig(system="numeric", eps=args.eps),
        SimulatorConfig(system="numeric", precision="single"),
    ]
    requests = [
        RunRequest(circuit, config, label=f"serve/{config.system}/{config.precision}/{config.eps:g}")
        for config in configs
    ]
    print(
        f"service session: {circuit.name} ({circuit.num_qubits} qubits, "
        f"{len(circuit)} gates) x {len(requests)} configs x 2 passes "
        f"({args.workers} {args.mode} worker(s))"
    )
    mismatches = 0
    failures = 0
    with SimulationService(
        workers=args.workers,
        mode=args.mode,
        cache_capacity=args.cache_size,
        queue_size=args.queue_size,
    ) as service:
        for request in requests:
            reference = run(request) if args.verify else None
            for attempt in ("miss", "hit"):
                try:
                    result = run(request, client=service)
                except Exception as error:  # noqa: BLE001 - reported, exit 1
                    failures += 1
                    print(f"FAILED {request.job_label} [{attempt}]: {error}")
                    continue
                verdict = ""
                if reference is not None:
                    identical = (
                        result.state_payload == reference.state_payload
                        and result.node_count == reference.node_count
                        and result.is_zero_state == reference.is_zero_state
                    )
                    if not identical:
                        mismatches += 1
                    verdict = "  payload==direct" if identical else "  PAYLOAD MISMATCH"
                print(
                    f"  {request.job_label:<36} [{attempt}] "
                    f"{result.node_count:>6} nodes  {result.seconds:.4f}s{verdict}"
                )
        stats = service.stats()
    print()
    print("service telemetry:")
    for name in sorted(stats):
        if name.startswith("serve.") and not isinstance(stats[name], dict):
            print(f"  {name:<28} {stats[name]}")
    seconds_hist = stats.get("serve.request.seconds")
    if isinstance(seconds_hist, dict):
        print(
            "  %-28s count=%d mean=%.4fs"
            % ("serve.request.seconds", seconds_hist["count"], seconds_hist["mean"])
        )
    if mismatches or failures:
        print(f"FAIL: {mismatches} payload mismatch(es), {failures} failed request(s)")
        return 1
    print("clean shutdown; all payloads byte-identical" if args.verify else "clean shutdown")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.obs.perf import BenchRecord, save_record
    from repro.serve.bench import run_serve_bench

    report = run_serve_bench(
        qubits=args.qubits,
        iterations=args.iterations,
        repeats=args.repeats,
        workers=args.workers,
        mode=args.mode,
    )
    print(
        "serve bench: %s (%d gates), %d repeats, %d %s worker(s)"
        % (
            report["circuit"]["name"],
            report["circuit"]["num_gates"],
            args.repeats,
            args.workers,
            args.mode,
        )
    )
    print("  cold per-job   %.4fs  (run_batch workers=1)" % report["cold_per_job_seconds"])
    print(
        "  warm p50/p99   %.4fs / %.4fs  (%.1f req/s, cache off)"
        % (
            report["warm_p50_seconds"],
            report["warm_p99_seconds"],
            report["warm_throughput_rps"],
        )
    )
    print("  cached p50     %.4fs  (canonical-form LRU hit)" % report["cached_p50_seconds"])
    print("  cold/warm      %.2fx" % report["cold_over_warm_speedup"])
    if args.out_dir:
        record = BenchRecord.from_dict(report["record"])
        path = save_record(record, args.out_dir)
        print(f"wrote {path}")
    if report["cold_over_warm_speedup"] < args.min_speedup:
        print(
            "FAIL: warm median %.4fs is not <= %.2fx of the cold per-job cost"
            % (report["warm_p50_seconds"], 1.0 / args.min_speedup)
        )
        return 1
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    result = run_tradeoff(circuit, include_gcd=args.include_gcd, workers=args.workers)
    print(render_summary(result))
    print()
    for metric in ("nodes", "error", "seconds"):
        print(render_series(result, metric, samples=args.samples))
        print()
    checks = shape_checks(result)
    print("shape checks (paper Section V-A):")
    for name, passed in checks.items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    return 0 if all(checks.values()) else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = {
        "fig2": fig2_gse_size,
        "fig3": fig3_grover,
        "fig4": fig4_bwt,
        "fig5": fig5_gse,
    }[args.figure]
    result = driver(scale=args.scale)
    print(render_summary(result))
    print()
    metrics = ["nodes"] if args.figure == "fig2" else ["nodes", "error", "seconds"]
    if args.figure == "fig5":
        metrics.append("bits")
    for metric in metrics:
        print(render_series(result, metric, samples=args.samples))
        print()
    for name, passed in shape_checks(result).items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    marked = (1 << args.qubits) * 2 // 3
    circuit = grover_circuit(args.qubits, marked)
    rows = run_normalization_ablation(
        circuit, include_gcd=not args.skip_gcd, workers=args.workers
    )
    print(f"normalisation ablation on {circuit.name}:")
    print(
        format_table(
            ["scheme", "seconds", "final_nodes", "peak_nodes", "trivial_frac", "bits"],
            [
                [
                    row.scheme,
                    round(row.seconds, 4),
                    row.final_nodes,
                    row.peak_nodes,
                    round(row.trivial_weight_fraction, 3),
                    row.max_bit_width,
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.evalsuite.scaling import grover_scaling

    rows = grover_scaling(
        qubit_range=range(args.min_qubits, args.max_qubits + 1), workers=args.workers
    )
    print("Grover peak DD size, exact vs eps=0 floats:")
    print(
        format_table(
            ["qubits", "gates", "algebraic_peak", "eps0_peak", "alg_sec", "eps0_sec"],
            [
                [
                    row.num_qubits,
                    row.num_gates,
                    row.algebraic_peak,
                    row.eps0_peak,
                    round(row.algebraic_seconds, 3),
                    round(row.eps0_seconds, 3),
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_tuning(args: argparse.Namespace) -> int:
    from repro.evalsuite.tuning import tune_epsilon

    circuit = _build_circuit(args)
    report = tune_epsilon(
        circuit, error_target=args.error_target, workers=args.workers
    )
    print(
        f"tolerance tuning on {circuit.name}: {report.num_trials} full "
        f"simulations, {report.total_seconds:.2f} s total"
    )
    print(
        format_table(
            ["eps", "final_error", "peak_nodes", "seconds", "viable"],
            [
                [
                    f"{trial.eps:g}",
                    trial.final_error,
                    trial.peak_nodes,
                    round(trial.seconds, 4),
                    trial.meets_accuracy and trial.meets_compactness,
                ]
                for trial in report.trials
            ],
        )
    )
    if report.succeeded:
        print(f"chosen eps = {report.chosen_eps:g}")
        return 0
    print("no tolerance value satisfies both targets")
    return 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-qmdd",
        description="Algebraic vs numerical QMDDs (DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    system_parent, config_parent = _config_parents()

    def add_circuit_args(p):
        p.add_argument("--algorithm", choices=("grover", "bwt", "gse"), default="grover")
        p.add_argument("--qubits", type=int, default=6, help="Grover data qubits")
        p.add_argument("--marked", type=int, default=None)
        p.add_argument("--depth", type=int, default=2, help="BWT tree depth")
        p.add_argument("--steps", type=int, default=4, help="BWT walk steps")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--sites", type=int, default=2, help="GSE system sites")
        p.add_argument("--precision", type=int, default=2, help="GSE phase bits")

    simulate = sub.add_parser(
        "simulate", help="simulate one benchmark", parents=[config_parent]
    )
    add_circuit_args(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    batch = sub.add_parser(
        "batch",
        help="run the epsilon sweep as a parallel batch",
        parents=[config_parent],
    )
    add_circuit_args(batch)
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job deadline in seconds"
    )
    batch.add_argument(
        "--retries", type=int, default=0, help="extra rounds for failed jobs"
    )
    batch.add_argument(
        "--backoff", type=float, default=0.5, help="base sleep between retry rounds"
    )
    batch.add_argument(
        "--epsilons",
        default=None,
        help="comma-separated tolerance sweep (default: the paper's)",
    )
    batch.add_argument("--include-gcd", action="store_true")
    batch.add_argument("--report", default=None, help="write the JSON batch report here")
    batch.add_argument(
        "--trace-out",
        default=None,
        help="enable distributed tracing and write the multi-process "
        "Chrome trace_event JSON here",
    )
    batch.set_defaults(func=_cmd_batch)

    sanitize = sub.add_parser(
        "sanitize",
        help="simulate under the DD invariant sanitizer",
        parents=[system_parent],
    )
    add_circuit_args(sanitize)
    sanitize.add_argument(
        "--mode",
        choices=("check-on-root", "check-every-op"),
        default="check-on-root",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    gc = sub.add_parser(
        "gc",
        help="simulate with the garbage collector on and report GC stats",
        parents=[system_parent],
    )
    add_circuit_args(gc)
    gc.add_argument(
        "--threshold", type=int, default=1000, help="resident-node count that triggers a collection"
    )
    gc.add_argument(
        "--min-yield",
        type=float,
        default=0.25,
        help="minimum freed fraction before the threshold grows",
    )
    gc.add_argument("--max-nodes", type=int, default=None, help="hard node budget (fails the run)")
    gc.add_argument("--max-bytes", type=int, default=None, help="hard byte budget (fails the run)")
    gc.add_argument(
        "--audit",
        action="store_true",
        help="run the sanitizer (incl. the refcount audit) on the final state",
    )
    gc.set_defaults(func=_cmd_gc)

    profile = sub.add_parser(
        "profile",
        help="top spans + engine hit rates for one benchmark",
        parents=[system_parent],
    )
    add_circuit_args(profile)
    profile.add_argument("--top", type=int, default=15, help="span rows to print")
    profile.add_argument(
        "--detail",
        action="store_true",
        help="record fine-grained spans (normalisation, table lookups; slow)",
    )
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace", help="export spans as Chrome trace_event JSON", parents=[system_parent]
    )
    add_circuit_args(trace)
    trace.add_argument("--out", default="trace.json", help="Chrome trace output path")
    trace.add_argument("--jsonl", default=None, help="also write a JSONL span dump")
    trace.add_argument("--detail", action="store_true")
    trace.set_defaults(func=_cmd_trace)

    perf = sub.add_parser(
        "perf", help="benchmark observatory: record / compare / report"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_record = perf_sub.add_parser(
        "record", help="run workloads and write BENCH_*.json records"
    )
    perf_record.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: all; see repro.obs.perf)",
    )
    perf_record.add_argument(
        "--repeats", type=int, default=5, help="timed repeats per workload"
    )
    perf_record.add_argument(
        "--system",
        choices=SYSTEMS,
        default=None,
        help="number system (default: each workload's own)",
    )
    perf_record.add_argument(
        "--out-dir",
        default="benchmarks/results",
        help="directory for the BENCH_*.json records",
    )
    perf_record.set_defaults(func=_cmd_perf_record)

    perf_compare = perf_sub.add_parser(
        "compare",
        help="compare current records against the committed baselines",
    )
    perf_compare.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="committed baseline records",
    )
    perf_compare.add_argument(
        "--current-dir",
        default="benchmarks/results",
        help="freshly recorded BENCH_*.json records",
    )
    perf_compare.add_argument(
        "--min-rel",
        type=float,
        default=0.05,
        help="relative floor of the noise band (fraction of baseline median)",
    )
    perf_compare.add_argument(
        "--informational",
        action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    perf_compare.set_defaults(func=_cmd_perf_compare)

    perf_report = perf_sub.add_parser(
        "report", help="print a table of recorded BENCH_*.json files"
    )
    perf_report.add_argument(
        "--dir", default="benchmarks/results", help="record directory"
    )
    perf_report.set_defaults(func=_cmd_perf_report)

    serve = sub.add_parser(
        "serve",
        help="run an embedded simulation-service session (mixed workload)",
    )
    serve.add_argument("--workers", type=int, default=2, help="service worker fleet size")
    serve.add_argument(
        "--mode",
        choices=("inline", "process"),
        default="inline",
        help="worker placement: in-process or child processes",
    )
    serve.add_argument("--qubits", type=int, default=5, help="Grover data qubits")
    serve.add_argument("--eps", type=float, default=1e-10, help="numeric tolerance job")
    serve.add_argument(
        "--queue-size", type=int, default=32, help="per-worker request queue bound"
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, help="result-cache entries (0 = off)"
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="assert every service payload byte-identical to direct run()",
    )
    serve.set_defaults(func=_cmd_serve)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="warm vs cold service latency benchmark (BENCH_serve_*.json)",
    )
    serve_bench.add_argument("--qubits", type=int, default=8, help="Grover data qubits")
    serve_bench.add_argument(
        "--iterations", type=int, default=6, help="Grover iterations"
    )
    serve_bench.add_argument(
        "--repeats", type=int, default=12, help="timed repeat requests per mode"
    )
    serve_bench.add_argument("--workers", type=int, default=1)
    serve_bench.add_argument(
        "--mode", choices=("inline", "process"), default="inline"
    )
    serve_bench.add_argument(
        "--out-dir",
        default="benchmarks/results",
        help="directory for the BENCH_serve_*.json record ('' = skip)",
    )
    serve_bench.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required cold-per-job / warm-median ratio (exit 1 below it)",
    )
    serve_bench.set_defaults(func=_cmd_serve_bench)

    tradeoff = sub.add_parser(
        "tradeoff", help="run the epsilon sweep", parents=[config_parent]
    )
    add_circuit_args(tradeoff)
    tradeoff.add_argument("--include-gcd", action="store_true")
    tradeoff.add_argument("--samples", type=int, default=10)
    tradeoff.set_defaults(func=_cmd_tradeoff)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure", choices=("fig2", "fig3", "fig4", "fig5"))
    figure.add_argument("--scale", choices=("default", "paper"), default="default")
    figure.add_argument("--samples", type=int, default=10)
    figure.set_defaults(func=_cmd_figure)

    ablation = sub.add_parser(
        "ablation", help="normalisation-scheme ablation", parents=[config_parent]
    )
    ablation.add_argument("--qubits", type=int, default=5)
    ablation.add_argument("--skip-gcd", action="store_true")
    ablation.set_defaults(func=_cmd_ablation)

    scaling = sub.add_parser(
        "scaling", help="DD size vs qubit count", parents=[config_parent]
    )
    scaling.add_argument("--min-qubits", type=int, default=4)
    scaling.add_argument("--max-qubits", type=int, default=7)
    scaling.set_defaults(func=_cmd_scaling)

    tuning = sub.add_parser(
        "tuning", help="tolerance fine-tuning cost", parents=[config_parent]
    )
    add_circuit_args(tuning)
    tuning.add_argument("--error-target", type=float, default=1e-8)
    tuning.set_defaults(func=_cmd_tuning)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
