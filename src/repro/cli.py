r"""Command-line interface: ``repro-qmdd``.

Subcommands mirror the evaluation workflow:

``repro-qmdd simulate --algorithm grover --qubits 6 --system algebraic``
    Simulate one benchmark under one representation and print metrics.

``repro-qmdd tradeoff --algorithm grover --qubits 6``
    Run the full epsilon sweep (the paper's Figs. 3-5) and print the
    three series plus the summary and shape checks.

``repro-qmdd figure fig2|fig3|fig4|fig5``
    Regenerate one paper figure with default (laptop) parameters.

``repro-qmdd ablation --qubits 5``
    The normalisation-scheme ablation of Section V-B.

``repro-qmdd sanitize --algorithm grover --qubits 6 --mode check-every-op``
    Simulate under the DD sanitizer and report the invariant-check
    coverage (nodes / edges / memo entries / amplitudes verified).

``repro-qmdd gc --algorithm grover --qubits 8 --threshold 256 --audit``
    Simulate with the mark-and-sweep garbage collector enabled, print
    the collection statistics, and (with ``--audit``) cross-check the
    incremental refcounts against a structural recount.  ``--max-nodes``
    / ``--max-bytes`` turn the run into a budget check that exits 2 on
    :class:`~repro.errors.MemoryBudgetExceeded`.

``repro-qmdd profile --algorithm grover --qubits 6``
    Run one benchmark with tracing on and print the top spans by total
    time plus the engine-table hit-rate table (see
    ``docs/OBSERVABILITY.md``).

``repro-qmdd trace --algorithm grover --qubits 6 --out trace.json``
    Run one benchmark and export the span ring as Chrome
    ``trace_event`` JSON (open in https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.algorithms.bwt import bwt_circuit
from repro.algorithms.grover import grover_circuit
from repro.algorithms.gse import gse_circuit
from repro.circuits.circuit import Circuit
from repro.dd.manager import (
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.evalsuite.ablation import run_normalization_ablation
from repro.evalsuite.experiments import (
    fig2_gse_size,
    fig3_grover,
    fig4_bwt,
    fig5_gse,
    shape_checks,
)
from repro.evalsuite.reporting import (
    format_table,
    render_metrics,
    render_series,
    render_summary,
)
from repro.evalsuite.tradeoff import run_tradeoff
from repro.obs import Telemetry, aggregate_spans, write_chrome_trace, write_jsonl
from repro.sim.simulator import Simulator

__all__ = ["main"]


def _build_circuit(args: argparse.Namespace) -> Circuit:
    if args.algorithm == "grover":
        marked = args.marked if args.marked is not None else (1 << args.qubits) * 2 // 3
        return grover_circuit(args.qubits, marked)
    if args.algorithm == "bwt":
        return bwt_circuit(depth=args.depth, steps=args.steps, seed=args.seed)
    if args.algorithm == "gse":
        return gse_circuit(num_sites=args.sites, precision_bits=args.precision)
    raise SystemExit(f"unknown algorithm {args.algorithm!r}")


def _build_manager(
    system: str, eps: float, num_qubits: int, telemetry: Optional[Telemetry] = None
):
    if system == "algebraic":
        return algebraic_manager(num_qubits, telemetry=telemetry)
    if system == "algebraic-gcd":
        return algebraic_gcd_manager(num_qubits, telemetry=telemetry)
    if system == "numeric":
        return numeric_manager(num_qubits, eps=eps, telemetry=telemetry)
    raise SystemExit(f"unknown number system {system!r}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    manager = _build_manager(args.system, args.eps, circuit.num_qubits)
    result = Simulator(manager).run(circuit)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}")
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print(f"zero collapse: {'yes' if result.is_zero_state else 'no'}")
    return 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.dd.sanitizer import Sanitizer, SanitizerMode
    from repro.errors import SanitizerError

    circuit = _build_circuit(args)
    manager = _build_manager(args.system, args.eps, circuit.num_qubits)
    mode = SanitizerMode.coerce(args.mode)
    if mode is SanitizerMode.OFF:
        raise SystemExit("sanitize: --mode must be check-on-root or check-every-op")
    simulator = Simulator(manager, sanitize=mode)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}   mode: {mode.value}")
    try:
        result = simulator.run(circuit)
    except SanitizerError as error:
        print(f"FAIL {error}")
        return 1
    sanitizer = simulator.sanitizer
    assert sanitizer is not None
    print(sanitizer.total.summary())
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.dd.mem import MemoryBudget, MemoryConfig
    from repro.errors import MemoryBudgetExceeded, SanitizerError

    circuit = _build_circuit(args)
    manager = _build_manager(args.system, args.eps, circuit.num_qubits)
    budget = None
    if args.max_nodes is not None or args.max_bytes is not None:
        budget = MemoryBudget(max_nodes=args.max_nodes, max_bytes=args.max_bytes)
    config = MemoryConfig(
        threshold=args.threshold,
        min_yield=args.min_yield,
        budget=budget,
    )
    sanitize = "check-on-root" if args.audit else None
    simulator = Simulator(manager, sanitize=sanitize, gc=config)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}   threshold: {config.threshold}")
    if budget is not None:
        print(f"budget:  max_nodes={budget.max_nodes} max_bytes={budget.max_bytes}")
    try:
        result = simulator.run(circuit)
    except MemoryBudgetExceeded as error:
        print(f"FAIL {error}")
        return 2
    except SanitizerError as error:
        print(f"FAIL {error}")
        return 1
    stats = manager.memory.statistics()
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in sorted(stats.items())],
        )
    )
    if args.audit:
        sanitizer = simulator.sanitizer
        assert sanitizer is not None
        print(sanitizer.total.summary())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    telemetry = Telemetry.tracing(detail=args.detail)
    manager = _build_manager(args.system, args.eps, circuit.num_qubits, telemetry)
    result = Simulator(manager).run(circuit)
    print(f"circuit: {circuit.name} ({circuit.num_qubits} qubits, {len(circuit)} gates)")
    print(f"system:  {manager.system.name}")
    print(f"final DD size: {result.node_count} nodes")
    print(f"run-time: {result.trace.total_seconds:.3f} s")
    print()
    rows = aggregate_spans(telemetry.tracer.spans())[: args.top]
    print(f"top spans by total time (of {len(telemetry.tracer)} recorded):")
    print(
        format_table(
            ["span", "count", "total_s", "mean_s", "max_s"],
            [
                [name, count, round(total, 6), round(mean, 6), round(peak, 6)]
                for name, count, total, mean, peak in rows
            ],
        )
    )
    if telemetry.tracer.dropped:
        print(f"(ring full: {telemetry.tracer.dropped} older spans dropped)")
    print()
    print("engine table hit rates:")
    print(render_metrics(telemetry.metrics.snapshot()))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    telemetry = Telemetry.tracing(detail=args.detail)
    manager = _build_manager(args.system, args.eps, circuit.num_qubits, telemetry)
    Simulator(manager).run(circuit)
    spans = telemetry.tracer.spans()
    if args.jsonl:
        count = write_jsonl(spans, args.jsonl)
        print(f"wrote {count} spans to {args.jsonl}")
    document = write_chrome_trace(spans, args.out)
    print(
        f"wrote {len(document['traceEvents'])} trace events to {args.out} "
        "(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    if telemetry.tracer.dropped:
        print(f"(ring full: {telemetry.tracer.dropped} older spans dropped)")
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    circuit = _build_circuit(args)
    result = run_tradeoff(circuit, include_gcd=args.include_gcd)
    print(render_summary(result))
    print()
    for metric in ("nodes", "error", "seconds"):
        print(render_series(result, metric, samples=args.samples))
        print()
    checks = shape_checks(result)
    print("shape checks (paper Section V-A):")
    for name, passed in checks.items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    return 0 if all(checks.values()) else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    driver = {
        "fig2": fig2_gse_size,
        "fig3": fig3_grover,
        "fig4": fig4_bwt,
        "fig5": fig5_gse,
    }[args.figure]
    result = driver(scale=args.scale)
    print(render_summary(result))
    print()
    metrics = ["nodes"] if args.figure == "fig2" else ["nodes", "error", "seconds"]
    if args.figure == "fig5":
        metrics.append("bits")
    for metric in metrics:
        print(render_series(result, metric, samples=args.samples))
        print()
    for name, passed in shape_checks(result).items():
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    marked = (1 << args.qubits) * 2 // 3
    circuit = grover_circuit(args.qubits, marked)
    rows = run_normalization_ablation(circuit, include_gcd=not args.skip_gcd)
    print(f"normalisation ablation on {circuit.name}:")
    print(
        format_table(
            ["scheme", "seconds", "final_nodes", "peak_nodes", "trivial_frac", "bits"],
            [
                [
                    row.scheme,
                    round(row.seconds, 4),
                    row.final_nodes,
                    row.peak_nodes,
                    round(row.trivial_weight_fraction, 3),
                    row.max_bit_width,
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.evalsuite.scaling import grover_scaling

    rows = grover_scaling(qubit_range=range(args.min_qubits, args.max_qubits + 1))
    print("Grover peak DD size, exact vs eps=0 floats:")
    print(
        format_table(
            ["qubits", "gates", "algebraic_peak", "eps0_peak", "alg_sec", "eps0_sec"],
            [
                [
                    row.num_qubits,
                    row.num_gates,
                    row.algebraic_peak,
                    row.eps0_peak,
                    round(row.algebraic_seconds, 3),
                    round(row.eps0_seconds, 3),
                ]
                for row in rows
            ],
        )
    )
    return 0


def _cmd_tuning(args: argparse.Namespace) -> int:
    from repro.evalsuite.tuning import tune_epsilon

    circuit = _build_circuit(args)
    report = tune_epsilon(circuit, error_target=args.error_target)
    print(
        f"tolerance tuning on {circuit.name}: {report.num_trials} full "
        f"simulations, {report.total_seconds:.2f} s total"
    )
    print(
        format_table(
            ["eps", "final_error", "peak_nodes", "seconds", "viable"],
            [
                [
                    f"{trial.eps:g}",
                    trial.final_error,
                    trial.peak_nodes,
                    round(trial.seconds, 4),
                    trial.meets_accuracy and trial.meets_compactness,
                ]
                for trial in report.trials
            ],
        )
    )
    if report.succeeded:
        print(f"chosen eps = {report.chosen_eps:g}")
        return 0
    print("no tolerance value satisfies both targets")
    return 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-qmdd",
        description="Algebraic vs numerical QMDDs (DATE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_circuit_args(p):
        p.add_argument("--algorithm", choices=("grover", "bwt", "gse"), default="grover")
        p.add_argument("--qubits", type=int, default=6, help="Grover data qubits")
        p.add_argument("--marked", type=int, default=None)
        p.add_argument("--depth", type=int, default=2, help="BWT tree depth")
        p.add_argument("--steps", type=int, default=4, help="BWT walk steps")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--sites", type=int, default=2, help="GSE system sites")
        p.add_argument("--precision", type=int, default=2, help="GSE phase bits")

    simulate = sub.add_parser("simulate", help="simulate one benchmark")
    add_circuit_args(simulate)
    simulate.add_argument(
        "--system", choices=("numeric", "algebraic", "algebraic-gcd"), default="algebraic"
    )
    simulate.add_argument("--eps", type=float, default=0.0)
    simulate.set_defaults(func=_cmd_simulate)

    sanitize = sub.add_parser(
        "sanitize", help="simulate under the DD invariant sanitizer"
    )
    add_circuit_args(sanitize)
    sanitize.add_argument(
        "--system", choices=("numeric", "algebraic", "algebraic-gcd"), default="algebraic"
    )
    sanitize.add_argument("--eps", type=float, default=0.0)
    sanitize.add_argument(
        "--mode",
        choices=("check-on-root", "check-every-op"),
        default="check-on-root",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    gc = sub.add_parser(
        "gc", help="simulate with the garbage collector on and report GC stats"
    )
    add_circuit_args(gc)
    gc.add_argument(
        "--system", choices=("numeric", "algebraic", "algebraic-gcd"), default="algebraic"
    )
    gc.add_argument("--eps", type=float, default=0.0)
    gc.add_argument(
        "--threshold", type=int, default=1000, help="resident-node count that triggers a collection"
    )
    gc.add_argument(
        "--min-yield",
        type=float,
        default=0.25,
        help="minimum freed fraction before the threshold grows",
    )
    gc.add_argument("--max-nodes", type=int, default=None, help="hard node budget (fails the run)")
    gc.add_argument("--max-bytes", type=int, default=None, help="hard byte budget (fails the run)")
    gc.add_argument(
        "--audit",
        action="store_true",
        help="run the sanitizer (incl. the refcount audit) on the final state",
    )
    gc.set_defaults(func=_cmd_gc)

    profile = sub.add_parser(
        "profile", help="top spans + engine hit rates for one benchmark"
    )
    add_circuit_args(profile)
    profile.add_argument(
        "--system", choices=("numeric", "algebraic", "algebraic-gcd"), default="algebraic"
    )
    profile.add_argument("--eps", type=float, default=0.0)
    profile.add_argument("--top", type=int, default=15, help="span rows to print")
    profile.add_argument(
        "--detail",
        action="store_true",
        help="record fine-grained spans (normalisation, table lookups; slow)",
    )
    profile.set_defaults(func=_cmd_profile)

    trace = sub.add_parser(
        "trace", help="export spans as Chrome trace_event JSON"
    )
    add_circuit_args(trace)
    trace.add_argument(
        "--system", choices=("numeric", "algebraic", "algebraic-gcd"), default="algebraic"
    )
    trace.add_argument("--eps", type=float, default=0.0)
    trace.add_argument("--out", default="trace.json", help="Chrome trace output path")
    trace.add_argument("--jsonl", default=None, help="also write a JSONL span dump")
    trace.add_argument("--detail", action="store_true")
    trace.set_defaults(func=_cmd_trace)

    tradeoff = sub.add_parser("tradeoff", help="run the epsilon sweep")
    add_circuit_args(tradeoff)
    tradeoff.add_argument("--include-gcd", action="store_true")
    tradeoff.add_argument("--samples", type=int, default=10)
    tradeoff.set_defaults(func=_cmd_tradeoff)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure", choices=("fig2", "fig3", "fig4", "fig5"))
    figure.add_argument("--scale", choices=("default", "paper"), default="default")
    figure.add_argument("--samples", type=int, default=10)
    figure.set_defaults(func=_cmd_figure)

    ablation = sub.add_parser("ablation", help="normalisation-scheme ablation")
    ablation.add_argument("--qubits", type=int, default=5)
    ablation.add_argument("--skip-gcd", action="store_true")
    ablation.set_defaults(func=_cmd_ablation)

    scaling = sub.add_parser("scaling", help="DD size vs qubit count")
    scaling.add_argument("--min-qubits", type=int, default=4)
    scaling.add_argument("--max-qubits", type=int, default=7)
    scaling.set_defaults(func=_cmd_scaling)

    tuning = sub.add_parser("tuning", help="tolerance fine-tuning cost")
    add_circuit_args(tuning)
    tuning.add_argument("--error-target", type=float, default=1e-8)
    tuning.set_defaults(func=_cmd_tuning)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
