"""Hash-consing of QMDD nodes (the *unique table*) and bounded
memoisation tables (*compute tables*).

The unique table guarantees that two structurally identical nodes (same
level, same children, same canonical edge-weight keys) are the *same*
Python object.  Together with edge-weight normalisation this makes the
QMDD a canonical representation (paper Section II-B): equality of
(sub-)matrices reduces to pointer equality of nodes.

:class:`ComputeTable` is the shared memoisation primitive behind the
manager's operation caches (add, mat-vec, mat-mat, kron, apply) and the
weight-arithmetic memos of the algebraic number systems: a bounded dict
with hit/miss/insert counters and wholesale eviction once full (the
cheap strategy of the established DD packages, which overwrite entries
rather than grow without bound).

Both tables keep their counters *monotonic*: eviction and ``clear``
drop entries but never reset ``hits``/``misses``/``inserts``, so
``statistics()`` always describes the whole run (the sanitizer and the
benchmarks rely on this when comparing counter snapshots).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.dd.edge import REF_SATURATION, Edge, Node

__all__ = ["UniqueTable", "ComputeTable"]


class ComputeTable:
    """A bounded memo table with hit/miss/insert/eviction counters.

    Counter accounting balances at all times::

        inserts - evicted_entries - discards == len(table)

    ``put`` of an already-present key is counted under ``updates`` (the
    entry count does not change), ``discard`` of a present key under
    ``discards``, and every wholesale drop (capacity eviction,
    ``clear``, ``invalidate``) under ``evicted_entries`` -- so
    observability snapshots reconcile exactly.
    """

    __slots__ = (
        "name",
        "capacity",
        "hits",
        "misses",
        "inserts",
        "updates",
        "discards",
        "evictions",
        "evicted_entries",
        "generation",
        "invalidations",
        "_table",
    )

    def __init__(self, name: str, capacity: int = 1 << 18) -> None:
        if capacity < 1:
            raise ValueError("compute-table capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.updates = 0
        self.discards = 0
        self.evictions = 0
        self.evicted_entries = 0
        self.generation = 0
        self.invalidations = 0
        self._table: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: Any) -> Any:
        value = self._table.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        table = self._table
        if key in table:
            # Overwrite in place: the entry count is unchanged, so this
            # is an update, not an insert (keeps the balance invariant
            # inserts - evicted_entries - discards == len).
            table[key] = value
            self.updates += 1
            return
        if len(table) >= self.capacity:
            # Wholesale eviction: cheap, and the counters are cumulative
            # (``evicted_entries`` accounts for the dropped entries), so
            # ``statistics()`` stays monotonic across the swap.
            self.evicted_entries += len(table)
            table.clear()
            self.evictions += 1
        table[key] = value
        self.inserts += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the run)."""
        self.evicted_entries += len(self._table)
        self._table.clear()

    def invalidate(self) -> int:
        """Drop all entries and advance the generation stamp.

        The garbage collector calls this after sweeping the unique
        tables: any memoised result may reference a swept node, so the
        whole generation is retired at once (entries are not
        generation-tagged individually; the stamp records the epoch for
        observability and lets callers detect cross-GC reuse).  Returns
        the number of entries dropped.
        """
        dropped = len(self._table)
        self.evicted_entries += dropped
        self._table.clear()
        self.generation += 1
        self.invalidations += 1
        return dropped

    # -- sanitizer access ------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over the live ``(key, value)`` entries.

        Deterministic (dict insertion order); used by the sanitizer to
        sample entries for replay.  Do not mutate the table while
        iterating.
        """
        return iter(self._table.items())

    def discard(self, key: Any) -> Any:
        """Remove one entry; returns it or ``None``.

        Sanitizer hook: an entry is taken out, recomputed from scratch
        and compared against the removed value (simply re-getting it
        would answer the question with the memo under test).  A
        successful removal counts under ``discards`` so snapshots keep
        balancing.
        """
        value = self._table.pop(key, None)
        if value is not None:
            self.discards += 1
        return value

    def statistics(self) -> Dict[str, int]:
        # Uniform observability schema: every engine table reports at
        # least size/hits/misses/inserts/evictions (see repro.obs).
        return {
            "size": len(self._table),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "updates": self.updates,
            "discards": self.discards,
            "evictions": self.evictions,
            "evicted_entries": self.evicted_entries,
            "generation": self.generation,
            "invalidations": self.invalidations,
        }


class UniqueTable:
    """Interning table for nodes of one arity (vector or matrix).

    ``uid_source`` is a callable yielding fresh node uids; a manager
    passes the *same* source to its vector and matrix tables so that
    uids are globally unique -- compute-table keys built from uids
    would otherwise collide across arities.
    """

    def __init__(self, uid_source: Optional[Callable[[], int]] = None) -> None:
        self._table: Dict[Tuple[Any, ...], Node] = {}
        if uid_source is None:
            from itertools import count

            uid_source = count(1).__next__  # 0 is the terminal
        self._next_uid = uid_source
        self.hits = 0
        self.misses = 0
        self.evictions = 0  # clear/retain/sweep events that dropped entries
        self.evicted_entries = 0  # cumulative entries dropped
        #: Fired after public pruning (:meth:`retain`/:meth:`clear`)
        #: drops entries, so derived state (compute tables, weight
        #: memos) referencing swept nodes is invalidated in lock-step.
        #: The garbage collector's :meth:`sweep` does *not* fire it --
        #: the collector performs one consolidated invalidation itself.
        self._on_invalidate: Optional[Callable[[], None]] = None

    def set_invalidation_hook(self, hook: Optional[Callable[[], None]]) -> None:
        """Install the callback fired when public pruning drops nodes."""
        self._on_invalidate = hook

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def _key(
        level: int, edges: Tuple[Edge, ...], weight_keys: Tuple[Any, ...]
    ) -> Tuple[Any, ...]:
        if len(edges) == 2:
            return (level, (edges[0].node.uid, edges[1].node.uid), weight_keys)
        return (level, tuple(edge.node.uid for edge in edges), weight_keys)

    def get_or_create(
        self, level: int, edges: Tuple[Edge, ...], weight_keys: Tuple[Any, ...]
    ) -> Node:
        """Return the canonical node for ``(level, children)``.

        ``weight_keys`` must be the canonical hashable keys of the edge
        weights (as provided by the active number system); the children
        node identities are taken from their stable ``uid``.
        """
        key = self._key(level, edges, weight_keys)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = Node(self._next_uid(), level, edges)
        # Refcount maintenance: one count per parent edge slot (a node
        # referenced twice by the same parent counts twice), saturating
        # at REF_SATURATION.  The terminal is born saturated, so this
        # loop skips it for free.
        for edge in edges:
            child = edge.node
            count = child.ref
            if count < REF_SATURATION:
                child.ref = count + 1
        self._table[key] = node
        return node

    def resident(
        self, level: int, edges: Tuple[Edge, ...], weight_keys: Tuple[Any, ...]
    ) -> Optional[Node]:
        """The interned node for this key, or ``None`` -- never creates.

        Sanitizer hook: a reachable node is canonical iff ``resident``
        of its own key returns that very object (anything else is a
        shadow duplicate that escaped hash-consing).
        """
        return self._table.get(self._key(level, edges, weight_keys))

    def nodes(self) -> Iterator[Node]:
        """Iterate over all interned nodes (sanitizer/uid-map hook)."""
        return iter(self._table.values())

    def clear(self) -> None:
        """Drop all interned nodes (invalidates outstanding edges).

        Counters are cumulative and survive, mirroring
        :meth:`ComputeTable.clear`.  Fires the invalidation hook when
        entries were dropped: memoised results and weight memos may
        reference the swept nodes and must not outlive them.
        """
        dropped = len(self._table)
        if dropped:
            self.evictions += 1
            self.evicted_entries += dropped
        self._table.clear()
        if dropped and self._on_invalidate is not None:
            self._on_invalidate()

    def sweep(self, marked_uids: Set[int]) -> int:
        """Drop every node whose uid is *not* in ``marked_uids``.

        The mark-and-sweep primitive: removes unmarked nodes from the
        table and decrements the refcounts of their children (one per
        edge slot, symmetric with :meth:`get_or_create`; saturated and
        already-zero counts are left untouched so the sanitizer audit
        can spot genuine underflow).  Does not fire the invalidation
        hook -- the collector invalidates derived state itself, once,
        after sweeping both tables.  Returns the number dropped.
        """
        table = self._table
        dead = [key for key, node in table.items() if node.uid not in marked_uids]
        for key in dead:
            node = table.pop(key)
            for edge in node.edges:
                child = edge.node
                count = child.ref
                if 0 < count < REF_SATURATION:
                    child.ref = count - 1
        if dead:
            self.evictions += 1
            self.evicted_entries += len(dead)
        return len(dead)

    def retain(self, live_uids: Iterable[int]) -> int:
        """Garbage-collect: keep only nodes whose uid is in ``live_uids``.

        Returns the number of entries dropped.  Outstanding edges to
        dropped nodes stay *valid* (the node objects live on through
        Python references) but will re-intern as fresh nodes if an
        identical structure is built again -- so callers must only
        retain uid sets closed under reachability (the manager's
        ``prune`` computes that closure).  Fires the invalidation hook
        when entries were dropped, so compute tables and weight memos
        never hold results referencing swept nodes.
        """
        dropped = self.sweep(set(live_uids))
        if dropped and self._on_invalidate is not None:
            self._on_invalidate()
        return dropped

    def statistics(self) -> Dict[str, int]:
        # Every miss interns a fresh node, so inserts == misses.  The
        # schema mirrors ComputeTable.statistics (uniform across every
        # engine table; see repro.obs): evictions counts clear/retain
        # events, evicted_entries the entries they dropped.
        return {
            "size": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.misses,
            "evictions": self.evictions,
            "evicted_entries": self.evicted_entries,
        }
