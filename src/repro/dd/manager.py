r"""The QMDD manager: construction, arithmetic and queries.

A :class:`DDManager` owns

* the active :class:`~repro.dd.number_system.NumberSystem` (numerical
  with tolerance ``eps``, or one of the two exact algebraic systems),
* the unique tables that hash-cons vector and matrix nodes, and
* the compute tables that memoise the recursive operations
  (addition, matrix-vector and matrix-matrix multiplication, Kronecker
  products).

Levels and qubits
-----------------
Nodes live at levels ``n .. 1`` (root to bottom); qubit ``q`` (0-based,
qubit 0 most significant as in the paper's figures) corresponds to level
``n - q``.  A state vector over ``n`` qubits is an edge whose node has
level ``n``; amplitude ``alpha_i`` of basis state ``|i>`` is the product
of the edge weights along the path selected by the bits of ``i``
(paper Example 3).

Factory helpers
---------------
Use :func:`numeric_manager`, :func:`algebraic_manager` or
:func:`algebraic_gcd_manager` instead of instantiating number systems by
hand::

    manager = algebraic_manager(num_qubits=3)
    state = manager.basis_state(0)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dd.edge import MATRIX_ARITY, TERMINAL, VECTOR_ARITY, Edge, Node, iter_nodes
from repro.dd.mem import GcStats, MemoryBudget, MemoryConfig, MemoryManager
from repro.dd.number_system import (
    AlgebraicGcdSystem,
    AlgebraicQOmegaSystem,
    NumberSystem,
    NumericSystem,
)
from repro.dd.unique_table import ComputeTable, UniqueTable
from repro.errors import DDError, LevelMismatchError
from repro.obs import Telemetry
from repro.obs.tracing import Tracer

__all__ = [
    "DDManager",
    "numeric_manager",
    "algebraic_manager",
    "algebraic_gcd_manager",
]


class _TracedComputeTable(ComputeTable):
    """A :class:`ComputeTable` whose lookups emit detail spans.

    Only instantiated when the manager's tracer runs in *detail* mode,
    so the normal-mode compute tables stay the plain slotted class with
    zero tracing overhead.
    """

    __slots__ = ("_tracer",)

    def __init__(self, name: str, tracer: Tracer, capacity: int = 1 << 18) -> None:
        super().__init__(name, capacity)
        self._tracer = tracer

    def get(self, key: Any) -> Any:
        with self._tracer.span("dd.ct.lookup", table=self.name):
            return super().get(key)


class DDManager:
    """Decision-diagram manager for ``num_qubits`` qubits.

    All edges handed out by one manager must only be combined with edges
    of the same manager (weights are interned per-manager).

    ``telemetry`` is the manager's observability scope (see
    :mod:`repro.obs`).  When omitted, a fresh metrics-only
    :class:`~repro.obs.Telemetry` is created, so ``statistics()`` and
    ``cache_stats()`` always report live counts; pass
    ``Telemetry.disabled()`` for overhead-sensitive runs or
    ``Telemetry.tracing()`` to record spans.  A telemetry scope must
    not be shared between managers -- instrument names would collide.

    ``memory`` configures the garbage collector (see
    :mod:`repro.dd.mem`): ``None`` keeps automatic collection off (the
    seed behaviour), ``True`` enables the default policy, an ``int``
    sets the node threshold, and a
    :class:`~repro.dd.mem.MemoryBudget` /
    :class:`~repro.dd.mem.MemoryConfig` gives full control.  The
    :class:`~repro.dd.mem.MemoryManager` is always created (as
    ``manager.memory``) so explicit ``collect``/``prune`` and the
    refcount audit work regardless.
    """

    def __init__(
        self,
        system: NumberSystem,
        num_qubits: int,
        telemetry: Optional[Telemetry] = None,
        memory: "MemoryConfig | MemoryBudget | bool | int | None" = None,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        self.system = system
        self.num_qubits = num_qubits
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        tracer = self.telemetry.tracer
        self._trace_detail = tracer.detail
        from itertools import count

        uid_source = count(1).__next__  # shared: uids unique across arities
        self._vector_table = UniqueTable(uid_source)
        self._matrix_table = UniqueTable(uid_source)
        if self._trace_detail:
            def _ct(name: str) -> ComputeTable:
                return _TracedComputeTable(name, tracer)
        else:
            _ct = ComputeTable
        self._add_cache = _ct("add")
        self._mat_vec_cache = _ct("mat_vec")
        self._mat_mat_cache = _ct("mat_mat")
        self._kron_cache = _ct("kron")
        self._apply_cache = _ct("apply")
        self._gate_signatures: Dict[Tuple[Any, ...], int] = {}
        # Apply-kernel routing counters (see repro.dd.apply): the direct
        # kernel handles most gates itself but the numeric system with a
        # control *below* the target delegates to the matrix path to
        # stay bit-identical with the established operation order.
        # These are *push* instruments (warm path: once per gate); the
        # engine tables are surfaced through the pull collector below.
        registry = self.telemetry.metrics
        self._apply_direct = registry.counter("dd.apply.direct")
        self._apply_delegated = registry.counter("dd.apply.delegated")
        registry.register_collector(self._collect_metrics)
        if self._trace_detail:
            self._install_detail_spans()
        # Edges are immutable in practice; sharing one zero edge avoids
        # an allocation on every zero child in the hot path.
        self._zero_edge = Edge(TERMINAL, self.system.zero)
        # Last: the memory manager registers its own collector and
        # installs the unique tables' invalidation hooks.
        self.memory = MemoryManager(self, memory)

    @property
    def apply_direct_ops(self) -> int:
        """Gate applications served by the direct kernel (registry-backed)."""
        return int(self._apply_direct.value)

    @property
    def apply_delegated_ops(self) -> int:
        """Gate applications delegated to the matrix path (registry-backed)."""
        return int(self._apply_delegated.value)

    def _install_detail_spans(self) -> None:
        """Wrap normalisation and unique-table lookups in detail spans.

        Instance-level method shadowing keeps the default construction
        path completely untouched: without detail mode there is not even
        a branch on these call sites.
        """
        tracer = self.telemetry.tracer
        normalize = self.system.normalize_keyed

        def traced_normalize(
            weights: Tuple[Any, ...],
        ) -> Tuple[Any, Tuple[Any, ...], Tuple[Any, ...]]:
            with tracer.span("dd.normalize", arity=len(weights)):
                return normalize(weights)

        self.system.normalize_keyed = traced_normalize  # type: ignore[method-assign]
        for label, table in (
            ("vector", self._vector_table),
            ("matrix", self._matrix_table),
        ):
            lookup = table.get_or_create

            def traced_lookup(
                level: int,
                edges: Tuple[Edge, ...],
                weight_keys: Tuple[Any, ...],
                _lookup: Callable[..., Node] = lookup,
                _label: str = label,
            ) -> Node:
                with tracer.span("dd.ut.lookup", table=_label, level=level):
                    return _lookup(level, edges, weight_keys)

            table.get_or_create = traced_lookup  # type: ignore[method-assign]

    def _collect_metrics(self) -> Dict[str, float]:
        """Pull-side collector: flat dotted view of every engine table.

        Sampled only at :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
        time, so the tables keep their plain integer counters with zero
        per-operation overhead.
        """
        metrics: Dict[str, float] = {
            "dd.nodes.vector": len(self._vector_table),
            "dd.nodes.matrix": len(self._matrix_table),
        }
        for prefix, unique_table in (
            ("dd.ut.vector", self._vector_table),
            ("dd.ut.matrix", self._matrix_table),
        ):
            for key, value in unique_table.statistics().items():
                metrics[f"{prefix}.{key}"] = value
        for table in self._compute_tables():
            stats = table.statistics()
            for key, stat in stats.items():
                metrics[f"dd.ct.{table.name}.{key}"] = stat
            hits, misses = stats["hits"], stats["misses"]
            metrics[f"dd.ct.{table.name}.hit_rate"] = (
                hits / (hits + misses) if hits + misses else 0.0
            )
        for name, counters in self.system.weight_statistics().items():
            for key, value in counters.items():
                metrics[f"weights.{name}.{key}"] = value
        metrics.update(self.system.metric_values())
        return metrics

    # ------------------------------------------------------------------
    # Elementary edges
    # ------------------------------------------------------------------

    def zero_edge(self) -> Edge:
        """The all-zero function (a stub edge in the paper's figures)."""
        return self._zero_edge

    def one_edge(self) -> Edge:
        """The scalar 1 at the terminal."""
        return Edge(TERMINAL, self.system.one)

    def terminal_edge(self, weight: Any) -> Edge:
        return Edge(TERMINAL, weight)

    def is_zero_edge(self, edge: Edge) -> bool:
        if edge is self._zero_edge:
            return True
        return edge.is_terminal and self.system.is_zero(edge.weight)

    def level_of_qubit(self, qubit: int) -> int:
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range for {self.num_qubits} qubits")
        return self.num_qubits - qubit

    # ------------------------------------------------------------------
    # Node construction (normalising, hash-consing)
    # ------------------------------------------------------------------

    def make_node(self, level: int, children: Sequence[Edge]) -> Edge:
        """Create a normalised, interned node; returns the edge to it.

        If all children are zero edges the node collapses to a zero
        edge.  Otherwise the number system's normalisation (Section II-B
        / Algorithms 2-3) factors out ``eta`` and the normalised node is
        interned in the unique table.
        """
        arity = len(children)
        if arity == VECTOR_ARITY:
            # Unrolled hot path: vector nodes dominate simulation.
            c0, c1 = children
            is_zero = self.system.is_zero
            z0 = is_zero(c0.weight)
            z1 = is_zero(c1.weight)
            if z0:
                if z1:
                    return self._zero_edge
                c0 = self._zero_edge
            elif z1:
                c1 = self._zero_edge
            eta, normalized, keys = self.system.normalize_keyed((c0.weight, c1.weight))
            w0, w1 = normalized
            n0 = c0 if (z0 or w0 is c0.weight) else Edge(c0.node, w0)
            n1 = c1 if (z1 or w1 is c1.weight) else Edge(c1.node, w1)
            node = self._vector_table.get_or_create(level, (n0, n1), keys)
            return Edge(node, eta)
        if arity != MATRIX_ARITY:
            raise DDError(f"unsupported node arity {arity}")
        is_zero = self.system.is_zero
        # Single pass: canonicalise zero edges (they always point at the
        # terminal) and collect the weight tuple for normalisation.
        canonical = []
        weights = []
        any_nonzero = False
        for child in children:
            if is_zero(child.weight):
                child = self.zero_edge()
            else:
                any_nonzero = True
            canonical.append(child)
            weights.append(child.weight)
        if not any_nonzero:
            return self.zero_edge()
        eta, normalized, keys = self.system.normalize_keyed(tuple(weights))
        new_children = []
        for child, weight in zip(canonical, normalized):
            # normalisation maps zero to zero, so `child` is already the
            # canonical zero edge exactly when `weight` is zero; reuse
            # the child edge outright when its weight was untouched.
            if weight is child.weight or is_zero(weight):
                new_children.append(child)
            else:
                new_children.append(Edge(child.node, weight))
        table = self._vector_table if arity == VECTOR_ARITY else self._matrix_table
        node = table.get_or_create(level, tuple(new_children), keys)
        return Edge(node, eta)

    def scale(self, edge: Edge, factor: Any) -> Edge:
        """Multiply a whole DD by a scalar weight."""
        if self.system.is_zero(factor) or self.is_zero_edge(edge):
            return self.zero_edge()
        return Edge(edge.node, self.system.mul(edge.weight, factor))

    # ------------------------------------------------------------------
    # Vector construction
    # ------------------------------------------------------------------

    def basis_state(self, index: int) -> Edge:
        """The computational basis state ``|index>`` over all qubits."""
        if not 0 <= index < (1 << self.num_qubits):
            raise ValueError(f"basis index {index} out of range")
        edge = self.one_edge()
        for level in range(1, self.num_qubits + 1):
            # Level L decides bit position L-1 of the basis index (the
            # root / level n carries the most significant bit = qubit 0).
            bit = (index >> (level - 1)) & 1
            children = [self.zero_edge(), self.zero_edge()]
            children[bit] = edge
            edge = self.make_node(level, children)
        return edge

    def zero_state(self) -> Edge:
        """``|0...0>`` -- the usual initial state."""
        return self.basis_state(0)

    def vector_from_weights(self, amplitudes: Sequence[Any]) -> Edge:
        """Build a state DD from ``2^n`` weights of the active system."""
        expected = 1 << self.num_qubits
        if len(amplitudes) != expected:
            raise ValueError(f"need {expected} amplitudes, got {len(amplitudes)}")
        return self._vector_from_slice(list(amplitudes), self.num_qubits)

    def _vector_from_slice(self, amplitudes: List[Any], level: int) -> Edge:
        if level == 0:
            return self.terminal_edge(amplitudes[0])
        half = len(amplitudes) // 2
        upper = self._vector_from_slice(amplitudes[:half], level - 1)
        lower = self._vector_from_slice(amplitudes[half:], level - 1)
        if self.is_zero_edge(upper) and self.is_zero_edge(lower):
            return self.zero_edge()
        return self.make_node(level, [upper, lower])

    # ------------------------------------------------------------------
    # Matrix construction
    # ------------------------------------------------------------------

    def identity(self) -> Edge:
        """The ``2^n x 2^n`` identity matrix."""
        edge = self.one_edge()
        for level in range(1, self.num_qubits + 1):
            edge = self.make_node(level, [edge, self.zero_edge(), self.zero_edge(), edge])
        return edge

    def matrix_from_weights(self, entries: Sequence[Sequence[Any]]) -> Edge:
        """Build a matrix DD from a dense ``2^n x 2^n`` grid of weights."""
        size = 1 << self.num_qubits
        if len(entries) != size or any(len(row) != size for row in entries):
            raise ValueError(f"need a {size}x{size} matrix")
        grid = [list(row) for row in entries]
        return self._matrix_from_block(grid, 0, 0, size, self.num_qubits)

    def _matrix_from_block(
        self, grid: List[List[Any]], row: int, col: int, size: int, level: int
    ) -> Edge:
        if level == 0:
            return self.terminal_edge(grid[row][col])
        half = size // 2
        quadrants = [
            self._matrix_from_block(grid, row, col, half, level - 1),
            self._matrix_from_block(grid, row, col + half, half, level - 1),
            self._matrix_from_block(grid, row + half, col, half, level - 1),
            self._matrix_from_block(grid, row + half, col + half, half, level - 1),
        ]
        if all(self.is_zero_edge(quadrant) for quadrant in quadrants):
            return self.zero_edge()
        return self.make_node(level, quadrants)

    # ------------------------------------------------------------------
    # Addition
    # ------------------------------------------------------------------

    def add(self, left: Edge, right: Edge) -> Edge:
        """Pointwise sum of two DDs of the same kind and size."""
        if self.is_zero_edge(left):
            return right
        if self.is_zero_edge(right):
            return left
        if left.node.level != right.node.level:
            raise LevelMismatchError(
                f"cannot add DDs at levels {left.node.level} and {right.node.level}"
            )
        if left.is_terminal and right.is_terminal:
            return self.terminal_edge(self.system.add(left.weight, right.weight))
        if left.node is right.node and not self.system.supports_arbitrary_complex:
            # Same (canonical) node, so the same function up to the edge
            # weights: w_l * f + w_r * f == (w_l + w_r) * f, an O(1)
            # combine instead of a subtree walk.  Exact systems only --
            # distributivity is not a bitwise identity for floats, and
            # the numeric system's results are pinned to the established
            # per-child operation order (see the instability tests).
            total = self.system.add(left.weight, right.weight)
            if self.system.is_zero(total):
                return self.zero_edge()
            return Edge(left.node, total)
        # Canonicalise the argument order (addition is commutative).
        # Inexact systems order by weight *value* first: the order
        # decides the ratio-factoring division direction below, and a
        # uid-based order would make the last float bits depend on node
        # creation history (i.e. on whether the GC re-interned a node).
        # Exact systems keep the cheap uid comparison; weight keys only
        # break ties between equal nodes.
        left_uid = left.node.uid
        right_uid = right.node.uid
        left_order = self.system.weight_order_key(left.weight)
        if left_order is not None:
            right_order = self.system.weight_order_key(right.weight)
            if (right_order, right_uid) < (left_order, left_uid):
                left, right = right, left
                left_uid, right_uid = right_uid, left_uid
        elif right_uid < left_uid or (
            right_uid == left_uid
            and self.system.key(right.weight) < self.system.key(left.weight)
        ):
            left, right = right, left
            left_uid, right_uid = right_uid, left_uid
        # Factor out the left weight when the system supports division,
        # so cache entries are shared across common scalings.
        ratio = self.system.division_helper(right.weight, left.weight)
        if ratio is not None:
            cache_key = (left.node.uid, right.node.uid, self.system.key(ratio))
            cached = self._add_cache.get(cache_key)
            if cached is None:
                cached = self._add_children(
                    Edge(left.node, self.system.one), Edge(right.node, ratio)
                )
                self._add_cache.put(cache_key, cached)
            return self.scale(cached, left.weight)
        cache_key = (
            left.node.uid,
            self.system.key(left.weight),
            right.node.uid,
            self.system.key(right.weight),
        )
        cached = self._add_cache.get(cache_key)
        if cached is None:
            cached = self._add_children(left, right)
            self._add_cache.put(cache_key, cached)
        return cached

    def _add_children(self, left: Edge, right: Edge) -> Edge:
        children = []
        for left_child, right_child in zip(left.node.edges, right.node.edges):
            scaled_left = self.scale(left_child, left.weight)
            scaled_right = self.scale(right_child, right.weight)
            children.append(self.add(scaled_left, scaled_right))
        return self.make_node(left.node.level, children)

    # ------------------------------------------------------------------
    # Matrix-vector multiplication
    # ------------------------------------------------------------------

    def mat_vec(self, matrix: Edge, vector: Edge) -> Edge:
        """Apply a matrix DD to a vector DD (one simulation step)."""
        # Warm path (once per gate): a disabled tracer hands out the
        # shared null span, so this costs two no-op calls.
        with self.telemetry.tracer.span("dd.mat_vec"):
            if self.is_zero_edge(matrix) or self.is_zero_edge(vector):
                return self.zero_edge()
            weight = self.system.mul(matrix.weight, vector.weight)
            result = self._mat_vec_nodes(matrix.node, vector.node)
            return self.scale(result, weight)

    def _mat_vec_nodes(self, matrix: Node, vector: Node) -> Edge:
        if matrix.is_terminal and vector.is_terminal:
            return self.one_edge()
        if matrix.level != vector.level:
            raise LevelMismatchError(
                f"matrix level {matrix.level} != vector level {vector.level}"
            )
        cache_key = (matrix.uid, vector.uid)
        cached = self._mat_vec_cache.get(cache_key)
        if cached is not None:
            return cached
        level = matrix.level
        m = matrix.edges  # (m00, m01, m10, m11)
        v = vector.edges  # (v0, v1)
        result_children = []
        for row in (0, 1):
            total = self.zero_edge()
            for column in (0, 1):
                m_edge = m[2 * row + column]
                v_edge = v[column]
                if self.is_zero_edge(m_edge) or self.is_zero_edge(v_edge):
                    continue
                partial = self._mat_vec_nodes(m_edge.node, v_edge.node)
                partial = self.scale(
                    partial, self.system.mul(m_edge.weight, v_edge.weight)
                )
                total = self.add(total, partial)
            result_children.append(total)
        if all(self.is_zero_edge(child) for child in result_children):
            result = self.zero_edge()
        else:
            result = self.make_node(level, result_children)
        self._mat_vec_cache.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Matrix-matrix multiplication
    # ------------------------------------------------------------------

    def mat_mat(self, left: Edge, right: Edge) -> Edge:
        """Matrix product ``left @ right`` of two matrix DDs."""
        with self.telemetry.tracer.span("dd.mat_mat"):
            if self.is_zero_edge(left) or self.is_zero_edge(right):
                return self.zero_edge()
            weight = self.system.mul(left.weight, right.weight)
            result = self._mat_mat_nodes(left.node, right.node)
            return self.scale(result, weight)

    def _mat_mat_nodes(self, left: Node, right: Node) -> Edge:
        if left.is_terminal and right.is_terminal:
            return self.one_edge()
        if left.level != right.level:
            raise LevelMismatchError(
                f"matrix levels differ: {left.level} != {right.level}"
            )
        cache_key = (left.uid, right.uid)
        cached = self._mat_mat_cache.get(cache_key)
        if cached is not None:
            return cached
        children = []
        for row in (0, 1):
            for column in (0, 1):
                total = self.zero_edge()
                for inner in (0, 1):
                    l_edge = left.edges[2 * row + inner]
                    r_edge = right.edges[2 * inner + column]
                    if self.is_zero_edge(l_edge) or self.is_zero_edge(r_edge):
                        continue
                    partial = self._mat_mat_nodes(l_edge.node, r_edge.node)
                    partial = self.scale(
                        partial, self.system.mul(l_edge.weight, r_edge.weight)
                    )
                    total = self.add(total, partial)
                children.append(total)
        if all(self.is_zero_edge(child) for child in children):
            result = self.zero_edge()
        else:
            result = self.make_node(left.level, children)
        self._mat_mat_cache.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Kronecker product
    # ------------------------------------------------------------------

    def kron(self, top: Edge, bottom: Edge, bottom_levels: int) -> Edge:
        """Kronecker product ``top (x) bottom``.

        ``bottom`` occupies levels ``1 .. bottom_levels``; every terminal
        reached from ``top`` is replaced by ``bottom`` and the levels of
        ``top`` are shifted up by ``bottom_levels``.
        """
        with self.telemetry.tracer.span("dd.kron"):
            if self.is_zero_edge(top) or self.is_zero_edge(bottom):
                return self.zero_edge()
            shifted = self._kron_nodes(top.node, bottom, bottom_levels)
            return self.scale(shifted, self.system.mul(top.weight, bottom.weight))

    def _kron_nodes(self, top: Node, bottom: Edge, shift: int) -> Edge:
        if top.is_terminal:
            return Edge(bottom.node, self.system.one)
        cache_key = (top.uid, bottom.node.uid, self.system.key(bottom.weight), shift)
        cached = self._kron_cache.get(cache_key)
        if cached is not None:
            return cached
        children = []
        for child in top.edges:
            if self.is_zero_edge(child):
                children.append(self.zero_edge())
            else:
                sub = self._kron_nodes(child.node, bottom, shift)
                children.append(self.scale(sub, child.weight))
        result = self.make_node(top.level + shift, children)
        self._kron_cache.put(cache_key, result)
        return result

    # ------------------------------------------------------------------
    # Queries and extraction
    # ------------------------------------------------------------------

    def amplitude(self, state: Edge, index: int) -> Any:
        """The exact weight of basis state ``|index>``."""
        weight = state.weight
        node = state.node
        while not node.is_terminal:
            bit = (index >> (node.level - 1)) & 1
            edge = node.edges[bit]
            weight = self.system.mul(weight, edge.weight)
            node = edge.node
            if self.system.is_zero(weight):
                return self.system.zero
        return weight

    def to_statevector(self, state: Edge) -> np.ndarray:
        """Dense complex statevector (exponential; for tests/metrics)."""
        memo: Dict[int, np.ndarray] = {}

        def recurse(edge: Edge, level: int) -> np.ndarray:
            if self.is_zero_edge(edge):
                return np.zeros(1 << level, dtype=complex)
            if edge.is_terminal:
                return np.array([self.system.to_complex(edge.weight)], dtype=complex)
            sub = memo.get(edge.node.uid)
            if sub is None:
                halves = [recurse(child, level - 1) for child in edge.node.edges]
                sub = np.concatenate(halves)
                memo[edge.node.uid] = sub
            return self.system.to_complex(edge.weight) * sub

        if state.is_terminal and not self.system.is_zero(state.weight):
            # scalar DD: broadcast over a single amplitude space
            return np.full(1, self.system.to_complex(state.weight), dtype=complex)
        return recurse(state, self.num_qubits)

    def to_matrix(self, matrix: Edge) -> np.ndarray:
        """Dense complex matrix (exponential; for tests/metrics)."""
        memo: Dict[int, np.ndarray] = {}

        def recurse(edge: Edge, level: int) -> np.ndarray:
            size = 1 << level
            if self.is_zero_edge(edge):
                return np.zeros((size, size), dtype=complex)
            if edge.is_terminal:
                return np.array([[self.system.to_complex(edge.weight)]], dtype=complex)
            sub = memo.get(edge.node.uid)
            if sub is None:
                blocks = [recurse(child, level - 1) for child in edge.node.edges]
                sub = np.block([[blocks[0], blocks[1]], [blocks[2], blocks[3]]])
                memo[edge.node.uid] = sub
            return self.system.to_complex(edge.weight) * sub

        return recurse(matrix, self.num_qubits)

    def to_exact_amplitudes(self, state: Edge) -> List[Any]:
        """All ``2^n`` amplitudes as *weights* of the number system.

        Unlike :meth:`to_statevector` this loses nothing: with an
        algebraic system the returned list contains exact ring elements
        (mind the exponential size).
        """
        results: List[Any] = []

        def recurse(edge: Edge, level: int, prefix_weight: Any) -> None:
            if self.is_zero_edge(edge):
                results.extend([self.system.zero] * (1 << level))
                return
            weight = self.system.mul(prefix_weight, edge.weight)
            if edge.is_terminal:
                results.append(weight)
                return
            for child in edge.node.edges:
                recurse(child, level - 1, weight)

        recurse(state, self.num_qubits, self.system.one)
        return results

    def to_exact_matrix(self, matrix: Edge) -> List[List[Any]]:
        """All ``2^n x 2^n`` entries as weights (exact; exponential)."""
        size = 1 << self.num_qubits
        grid: List[List[Any]] = [[self.system.zero] * size for _ in range(size)]

        def recurse(edge: Edge, level: int, row: int, col: int, prefix: Any) -> None:
            if self.is_zero_edge(edge):
                return
            weight = self.system.mul(prefix, edge.weight)
            if edge.is_terminal:
                grid[row][col] = weight
                return
            half = 1 << (level - 1)
            for position, child in enumerate(edge.node.edges):
                recurse(
                    child,
                    level - 1,
                    row + (position >> 1) * half,
                    col + (position & 1) * half,
                    weight,
                )

        recurse(matrix, self.num_qubits, 0, 0, self.system.one)
        return grid

    def node_count(self, edge: Edge) -> int:
        """Number of distinct non-terminal nodes (the paper's size metric)."""
        return sum(1 for _ in iter_nodes(edge))

    def max_bit_width(self, edge: Edge) -> int:
        """Largest integer bit-width over all edge weights (0 for numeric).

        Reproduces the paper's Section V-B explanation of the GSE
        overhead: the bit-widths of the algebraic coefficients grow.
        """
        widest = self.system.bit_width(edge.weight)
        for node in iter_nodes(edge):
            for child in node.edges:
                width = self.system.bit_width(child.weight)
                if width > widest:
                    widest = width
        return widest

    def edges_equal(self, left: Edge, right: Edge) -> bool:
        """O(1) equivalence of two DDs (paper Section V-B)."""
        return left.node is right.node and self.system.key(left.weight) == self.system.key(
            right.weight
        )

    def norm_squared(self, state: Edge) -> Any:
        """``<psi|psi>`` as a weight of the active number system."""
        memo: Dict[int, Any] = {}

        def recurse(edge: Edge) -> Any:
            if self.is_zero_edge(edge):
                return self.system.zero
            own = _abs_squared(self.system, edge.weight)
            if edge.is_terminal:
                return own
            total = memo.get(edge.node.uid)
            if total is None:
                total = self.system.zero
                for child in edge.node.edges:
                    total = self.system.add(total, recurse(child))
                memo[edge.node.uid] = total
            return self.system.mul(own, total)

        return recurse(state)

    def adjoint(self, matrix: Edge) -> Edge:
        """The conjugate transpose ``U^dagger`` of a matrix DD.

        Built structurally: transpose the quadrant order (swap top-right
        and bottom-left) and conjugate every weight.  Used by the
        miter-style equivalence check ``U_a U_b^dagger == I``
        (paper Section V-B's verification use case).
        """
        cache: Dict[int, Edge] = {}

        def recurse(node: Node) -> Edge:
            if node.is_terminal:
                return self.one_edge()
            cached = cache.get(node.uid)
            if cached is not None:
                return cached
            children = []
            for position in (0, 2, 1, 3):  # transpose the 2x2 block order
                child = node.edges[position]
                if self.is_zero_edge(child):
                    children.append(self.zero_edge())
                else:
                    sub = recurse(child.node)
                    children.append(self.scale(sub, self.system.conj(child.weight)))
            result = self.make_node(node.level, children)
            cache[node.uid] = result
            return result

        if self.is_zero_edge(matrix):
            return self.zero_edge()
        body = recurse(matrix.node)
        return self.scale(body, self.system.conj(matrix.weight))

    def inner_product(self, left: Edge, right: Edge) -> Any:
        """``<left|right>`` as a weight of the active number system.

        Exact for the algebraic systems; the numeric system returns an
        interned complex value.
        """
        cache: Dict[Tuple[int, int], Any] = {}

        def recurse(a: Edge, b: Edge) -> Any:
            if self.is_zero_edge(a) or self.is_zero_edge(b):
                return self.system.zero
            factor = self.system.mul(self.system.conj(a.weight), b.weight)
            if a.is_terminal and b.is_terminal:
                return factor
            if a.node.level != b.node.level:
                raise LevelMismatchError(
                    f"inner product across levels {a.node.level} != {b.node.level}"
                )
            key = (a.node.uid, b.node.uid)
            partial = cache.get(key)
            if partial is None:
                partial = self.system.zero
                for a_child, b_child in zip(a.node.edges, b.node.edges):
                    partial = self.system.add(partial, recurse(a_child, b_child))
                cache[key] = partial
            return self.system.mul(factor, partial)

        return recurse(left, right)

    def fidelity(self, left: Edge, right: Edge) -> float:
        """``|<left|right>|^2`` as a float (for reporting)."""
        overlap = self.system.to_complex(self.inner_product(left, right))
        return abs(overlap) ** 2

    # ------------------------------------------------------------------
    # Gate signatures (for the direct apply kernel's compute table)
    # ------------------------------------------------------------------

    def gate_signature(
        self,
        entries: Sequence[Any],
        target: int,
        controls: Tuple[int, ...] = (),
        negative_controls: Tuple[int, ...] = (),
    ) -> int:
        """A small interned id describing one gate application.

        The direct apply kernel (:mod:`repro.dd.apply`) memoises results
        per ``(gate_signature, node_uid)``; interning the full
        description (entry keys + qubit layout) into an int keeps those
        compute-table keys cheap to hash.
        """
        key = (
            tuple(self.system.key(entry) for entry in entries),
            target,
            tuple(sorted(controls)),
            tuple(sorted(negative_controls)),
        )
        signature = self._gate_signatures.get(key)
        if signature is None:
            signature = len(self._gate_signatures) + 1
            self._gate_signatures[key] = signature
        return signature

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _compute_tables(self) -> Tuple[ComputeTable, ...]:
        return (
            self._add_cache,
            self._mat_vec_cache,
            self._mat_mat_cache,
            self._kron_cache,
            self._apply_cache,
        )

    def clear_caches(self) -> None:
        """Drop all memoised operation results (keeps interned nodes)."""
        for table in self._compute_tables():
            table.clear()

    def prune(self, roots: Sequence[Edge]) -> Dict[str, int]:
        """Garbage-collect dead nodes, keeping everything reachable from
        ``roots``.

        Long simulations intern every intermediate state; pruning
        between phases keeps the unique tables proportional to the live
        DDs.  Routed through :meth:`repro.dd.mem.MemoryManager.collect`,
        so registered roots and pins survive alongside ``roots`` and
        every compute table, weight memo and weight table is swept or
        invalidated in the correct order.  Returns
        ``{"vector_dropped": ..., "matrix_dropped": ...}``.
        """
        stats = self.memory.collect(extra_roots=roots, trigger="prune")
        return {
            "vector_dropped": stats.swept_vector,
            "matrix_dropped": stats.swept_matrix,
        }

    def collect_garbage(self, roots: Sequence[Edge] = ()) -> "GcStats":
        """Explicit full GC pass (see :meth:`repro.dd.mem.MemoryManager.collect`)."""
        return self.memory.collect(extra_roots=roots, trigger="explicit")

    def sanitize(
        self, edge: Edge, *, raise_on_violation: bool = True, **options: Any
    ) -> Any:
        """Run a full sanitizer pass over ``edge`` (see
        :func:`repro.dd.sanitizer.sanitize_dd`)."""
        from repro.dd.sanitizer import sanitize_dd

        return sanitize_dd(
            self, edge, raise_on_violation=raise_on_violation, **options
        )

    def statistics(self) -> Dict[str, Any]:
        """The legacy nested statistics view, served by the obs registry.

        The report is a reshape of one
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`: every engine
        table reports the uniform ``size``/``hits``/``misses``/
        ``inserts``/``evictions`` schema (plus table-specific extras)
        under ``unique_tables``/``compute_tables``/``weights``, and the
        scalar top-level keys are kept for existing consumers.
        """
        snap = self.telemetry.metrics.snapshot()
        unique: Dict[str, Dict[str, Any]] = {}
        compute: Dict[str, Dict[str, Any]] = {}
        weights: Dict[str, Dict[str, Any]] = {}
        for name, value in snap.items():
            if name.startswith("dd.ut."):
                _, _, table_name, key = name.split(".", 3)
                unique.setdefault(table_name, {})[key] = value
            elif name.startswith("dd.ct."):
                _, _, table_name, key = name.split(".", 3)
                compute.setdefault(table_name, {})[key] = value
            elif name.startswith("weights."):
                _, table_name, key = name.split(".", 2)
                weights.setdefault(table_name, {})[key] = value
        return {
            "system": self.system.name,
            "vector_nodes": snap["dd.nodes.vector"],
            "matrix_nodes": snap["dd.nodes.matrix"],
            "apply_direct_ops": snap["dd.apply.direct"],
            "apply_delegated_ops": snap["dd.apply.delegated"],
            "add_cache": compute["add"]["size"],
            "mat_vec_cache": compute["mat_vec"]["size"],
            "mat_mat_cache": compute["mat_mat"]["size"],
            "kron_cache": compute["kron"]["size"],
            "apply_cache": compute["apply"]["size"],
            "unique_tables": unique,
            "compute_tables": compute,
            "weights": weights,
            "gc": self.memory.statistics(),
        }

    def cache_stats(self) -> Dict[str, Dict[str, Any]]:
        """Flat snapshot of every compute table and weight-op memo.

        Each entry maps a table name to its counter dict (size, hits,
        misses, inserts, evictions); the benchmarks print this to report
        hit rates alongside wall-clock numbers.  Like
        :meth:`statistics` this is a reshape of the obs registry
        snapshot.
        """
        stats = self.statistics()
        snapshot: Dict[str, Dict[str, Any]] = dict(stats["compute_tables"])
        snapshot.update(
            (name, counters)
            for name, counters in stats["weights"].items()
            if "hits" in counters
        )
        return snapshot


def _abs_squared(system: NumberSystem, weight: Any) -> Any:
    """``|w|^2`` inside the weight domain (exact for algebraic systems)."""
    return system.mul(weight, system.conj(weight))


# ---------------------------------------------------------------------------
# Factory helpers
# ---------------------------------------------------------------------------


def numeric_manager(
    num_qubits: int,
    eps: float = 0.0,
    normalization: str = "leftmost",
    precision: str = "double",
    telemetry: Optional[Telemetry] = None,
    memory: "MemoryConfig | MemoryBudget | bool | int | None" = None,
) -> DDManager:
    """A manager using the state-of-the-art numerical representation.

    ``precision="single"`` rounds every value through IEEE-754 binary32,
    modelling a lower machine precision (see Section V-A's remark on
    scaling the float bit-width).
    """
    return DDManager(
        NumericSystem(eps=eps, normalization=normalization, precision=precision),
        num_qubits,
        telemetry=telemetry,
        memory=memory,
    )


def algebraic_manager(
    num_qubits: int,
    telemetry: Optional[Telemetry] = None,
    memory: "MemoryConfig | MemoryBudget | bool | int | None" = None,
) -> DDManager:
    """A manager using the paper's Q[omega] scheme (Algorithm 2)."""
    return DDManager(
        AlgebraicQOmegaSystem(), num_qubits, telemetry=telemetry, memory=memory
    )


def algebraic_gcd_manager(
    num_qubits: int,
    telemetry: Optional[Telemetry] = None,
    memory: "MemoryConfig | MemoryBudget | bool | int | None" = None,
) -> DDManager:
    """A manager using the paper's D[omega] GCD scheme (Algorithm 3)."""
    return DDManager(
        AlgebraicGcdSystem(), num_qubits, telemetry=telemetry, memory=memory
    )
