"""Structural metrics of decision diagrams used by the evaluation.

The paper's evaluation plots three quantities per simulation step
(Figs. 3-5): the DD *size* (node count), the numerical *error* and the
cumulative *run-time*.  This module provides the structural half of
those metrics plus the bit-width statistics explaining the algebraic
overhead of Section V-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dd.edge import Edge, iter_nodes
from repro.dd.manager import DDManager

__all__ = ["DDMetrics", "collect_metrics", "count_trivial_weights"]


@dataclass(frozen=True)
class DDMetrics:
    """A snapshot of the structural state of one decision diagram."""

    node_count: int
    edge_count: int
    distinct_weights: int
    trivial_weights: int
    max_bit_width: int

    @property
    def trivial_weight_fraction(self) -> float:
        """Fraction of non-zero edge weights equal to one.

        The paper observes that the Q[omega] normalisation keeps at
        least half of the occurring edge weights trivial, which is why
        it outperforms the GCD scheme (Section V-B).
        """
        if self.edge_count == 0:
            return 0.0
        return self.trivial_weights / self.edge_count


def collect_metrics(manager: DDManager, edge: Edge) -> DDMetrics:
    """Compute all structural metrics of ``edge`` in one traversal."""
    system = manager.system
    node_count = 0
    edge_count = 0
    trivial = 0
    weights = set()
    widest = system.bit_width(edge.weight)
    weights.add(system.key(edge.weight))
    if system.is_one(edge.weight):
        trivial += 1
    edge_count += 1
    for node in iter_nodes(edge):
        node_count += 1
        for child in node.edges:
            if system.is_zero(child.weight):
                continue
            edge_count += 1
            weights.add(system.key(child.weight))
            if system.is_one(child.weight):
                trivial += 1
            width = system.bit_width(child.weight)
            if width > widest:
                widest = width
    return DDMetrics(
        node_count=node_count,
        edge_count=edge_count,
        distinct_weights=len(weights),
        trivial_weights=trivial,
        max_bit_width=widest,
    )


def count_trivial_weights(manager: DDManager, edge: Edge) -> Tuple[int, int]:
    """Return ``(trivial, total)`` non-zero edge-weight counts."""
    metrics = collect_metrics(manager, edge)
    return (metrics.trivial_weights, metrics.edge_count)
