r"""Direct gate application on vector DDs (the simulation hot path).

The generic simulation step builds an ``n``-level *matrix* DD for every
gate (:mod:`repro.dd.gatebuild`) and multiplies it against the state
with :meth:`~repro.dd.manager.DDManager.mat_vec` -- a recursion that
visits every level, including all the qubits the gate does not touch.
For the paper's workload of "hundreds or even thousands of
matrix-vector multiplications" most of that work is identity
bookkeeping.

:func:`apply_gate` instead recurses the *vector* DD directly:

* levels **above** the highest involved qubit and *uninvolved levels
  in between* recurse plainly into both children (no 2x2 block
  expansion, no matrix nodes);
* an **unsatisfied control** branch returns the child edge unchanged --
  the whole gate is the identity on that subspace, an ``O(1)``
  short-circuit where ``mat_vec`` walks an identity matrix DD through
  the entire subtree;
* at the **target** level the two children are combined as
  ``(u00 v0 + u01 v1, u10 v0 + u11 v1)``; levels *below* the target are
  never visited at all unless a control lives there, in which case the
  satisfied/unsatisfied projections are built by two small memoised
  recursions (they partition the paths, so no subtraction is needed);
* results are memoised in the manager's ``apply`` compute table keyed
  on ``(gate_signature, node_uid)`` -- the signature interning lives in
  :meth:`~repro.dd.manager.DDManager.gate_signature`.

Because the QMDD is canonical, the result is the *same* edge (pointer
equality of nodes, equal weight keys) as the ``build_gate_dd`` +
``mat_vec`` path; the property tests in
``tests/dd/test_apply_kernel.py`` pin that equivalence.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

from repro.dd.edge import Edge, Node, TERMINAL
from repro.dd.gatebuild import build_gate_dd
from repro.dd.manager import DDManager
from repro.errors import CircuitError, LevelMismatchError

__all__ = ["apply_gate", "prepare_gate"]

#: Per-level roles precomputed by the kernel.
_FREE, _CONTROL_POS, _CONTROL_NEG = 0, 1, 2

#: Compute-table tags distinguishing the four recursions sharing the
#: manager's apply table.
_TAG_APPLY, _TAG_SAT, _TAG_UNSAT, _TAG_PAIR = 0, 1, 2, 3


def apply_gate(
    manager: DDManager,
    state: Edge,
    entries: Sequence[Any],
    target: int,
    controls: Iterable[int] = (),
    negative_controls: Iterable[int] = (),
) -> Edge:
    """Apply a (multi-)controlled single-qubit gate directly to a state.

    Parameters
    ----------
    manager:
        The owning :class:`~repro.dd.manager.DDManager`.
    state:
        A full-width vector DD of the manager.
    entries:
        The 2x2 base matrix as four weights of the manager's number
        system, row-major ``(u00, u01, u10, u11)``.
    target:
        Target qubit (0-based, qubit 0 = most significant / top level).
    controls, negative_controls:
        Qubits that must be in state 1 (resp. 0) for the gate to act.

    Returns the same canonical edge as ``mat_vec(build_gate_dd(...),
    state)``, typically much faster.
    """
    return prepare_gate(manager, entries, target, controls, negative_controls).apply(state)


def prepare_gate(
    manager: DDManager,
    entries: Sequence[Any],
    target: int,
    controls: Iterable[int] = (),
    negative_controls: Iterable[int] = (),
) -> "_ApplyKernel":
    """Validate a gate once and return a reusable apply kernel.

    The returned kernel's :meth:`~_ApplyKernel.apply` can be called with
    many states; callers applying the same gate repeatedly (e.g. the
    simulator) should cache the kernel to skip re-validation and
    signature interning.
    """
    entries = tuple(entries)
    if len(entries) != 4:
        raise CircuitError("gate entries must be a 2x2 matrix (4 weights)")
    controls = frozenset(controls)
    negative_controls = frozenset(negative_controls)
    if controls & negative_controls:
        raise CircuitError("a qubit cannot be both a positive and a negative control")
    if target in controls or target in negative_controls:
        raise CircuitError(f"target qubit {target} cannot also be a control")
    n = manager.num_qubits
    for qubit in controls | negative_controls | {target}:
        if not 0 <= qubit < n:
            raise CircuitError(f"qubit {qubit} out of range for {n} qubits")
    return _ApplyKernel(manager, entries, target, controls, negative_controls)


class _ApplyKernel:
    """One gate application: precomputed level roles + memoised recursion."""

    __slots__ = (
        "manager",
        "system",
        "entries",
        "eta",
        "roles",
        "target_level",
        "lowest_lower_control",
        "signature",
        "_cache",
        "_one",
        "_zero_edge",
        "_diagonal",
        "_antidiagonal",
        "_fused",
        "_matrix_spec",
        "_matrix_gate",
        "_key_apply",
        "_key_sat",
        "_key_unsat",
        "_key_pair",
    )

    def __init__(
        self,
        manager: DDManager,
        entries: Sequence[Any],
        target: int,
        controls: frozenset,
        negative_controls: frozenset,
    ) -> None:
        self.manager = manager
        system = manager.system
        if all(system.is_zero(entry) for entry in entries):
            raise CircuitError("gate matrix must have a non-zero entry")
        # Normalise the 2x2 block exactly like ``build_gate_dd`` would
        # (eta factored out, entries canonical).  The recursion then
        # works with the same canonical weights as the matrix-DD path --
        # for the numeric system this makes the two paths bit-identical
        # -- and the memoised results are shared between gates that
        # differ only by the scalar eta.
        self.eta, self.entries = system.normalize(tuple(entries))
        n = manager.num_qubits
        self.target_level = manager.level_of_qubit(target)
        roles: List[int] = [_FREE] * (n + 1)
        for qubit in controls:
            roles[n - qubit] = _CONTROL_POS
        for qubit in negative_controls:
            roles[n - qubit] = _CONTROL_NEG
        self.roles = roles
        control_levels_below = [
            level
            for level in range(1, self.target_level)
            if roles[level] != _FREE
        ]
        self.lowest_lower_control = min(control_levels_below) if control_levels_below else 0
        self.signature = manager.gate_signature(
            self.entries,
            target,
            tuple(sorted(controls)),
            tuple(sorted(negative_controls)),
        )
        self._cache = manager._apply_cache
        self.system = system
        self._one = system.one
        self._zero_edge = manager.zero_edge()
        u00, u01, u10, u11 = self.entries
        # Structure flags for the target-level combine: diagonal gates
        # (Z, S, T, phase) touch no amplitudes across branches and
        # antidiagonal gates (X, Y) only swap them, so both skip the
        # additions entirely.
        self._diagonal = system.is_zero(u01) and system.is_zero(u10)
        self._antidiagonal = system.is_zero(u00) and system.is_zero(u11)
        # Exact systems compute both rows of the 2x2 block in one fused
        # pair-walk (:meth:`_combine_pair`).  Ring arithmetic is exact,
        # so the re-association cannot change the canonical result; the
        # numeric system keeps the two-add path, which reproduces the
        # matrix-DD float operation order bit for bit.
        self._fused = not system.supports_arbitrary_complex
        # Byte-identity escape hatch: with a control *below* the target
        # the kernel combines satisfied/unsatisfied projections, which
        # re-associates the additions relative to the matrix path.  Exact
        # rings are indifferent (the canonical result cannot change) but
        # float addition is not associative, so the numeric system
        # delegates these rare gates to ``build_gate_dd`` + ``mat_vec``
        # wholesale -- the same code path, hence bit-identical results.
        if self.lowest_lower_control and not self._fused:
            self._matrix_spec = (
                tuple(entries),
                target,
                tuple(sorted(controls)),
                tuple(sorted(negative_controls)),
            )
        else:
            self._matrix_spec = None
        self._matrix_gate = None
        # The three recursions share the manager's apply table; pack the
        # (signature, tag) pair into one int so cache keys are 2-tuples.
        self._key_apply = self.signature << 2 | _TAG_APPLY
        self._key_sat = self.signature << 2 | _TAG_SAT
        self._key_unsat = self.signature << 2 | _TAG_UNSAT
        self._key_pair = self.signature << 2 | _TAG_PAIR

    # ------------------------------------------------------------------

    def apply(self, state: Edge) -> Edge:
        manager = self.manager
        if manager.is_zero_edge(state):
            return state
        if state.is_terminal or state.node.level != manager.num_qubits:
            raise LevelMismatchError(
                f"state must be a full {manager.num_qubits}-level vector DD, "
                f"got level {0 if state.is_terminal else state.node.level}"
            )
        if self._matrix_spec is not None:
            gate = self._matrix_gate
            if gate is None:
                entries, target, controls, negatives = self._matrix_spec
                gate = build_gate_dd(manager, entries, target, controls, negatives)
                # The kernel caches this gate DD across gate
                # applications; pin it so a GC pass between two uses
                # cannot sweep its nodes out of the unique table (the
                # cached edge would then resurrect as shadow nodes).
                manager.memory.pin(gate)
                self._matrix_gate = gate
            manager._apply_delegated.inc()
            return manager.mat_vec(gate, state)
        manager._apply_direct.inc()
        # Warm-path span (no-op when tracing is off), the direct-kernel
        # counterpart of the ``dd.mat_vec`` span on the delegated path.
        with manager.telemetry.tracer.span("dd.apply.direct"):
            weight = manager.system.mul(self.eta, state.weight)
            return self._scaled(self._apply_node(state.node), weight)

    # ------------------------------------------------------------------
    # Main recursion: levels from the root down to the target
    # ------------------------------------------------------------------

    def _apply_edge(self, edge: Edge, level: int) -> Edge:
        node = edge.node
        if node is TERMINAL:
            if self.manager.is_zero_edge(edge):
                return edge
            raise LevelMismatchError(
                f"expected vector node at level {level}, got a terminal edge"
            )
        if node.level != level:
            raise LevelMismatchError(
                f"expected vector node at level {level}, got {node.level}"
            )
        result = self._apply_node(node)
        if result.node is TERMINAL:
            return result  # zero stays zero under any scaling
        weight = edge.weight
        if weight is self._one:
            return result
        return Edge(result.node, self.system.mul(result.weight, weight))

    def _apply_node(self, node: Node) -> Edge:
        cache_key = (self._key_apply, node.uid)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        manager = self.manager
        level = node.level
        v0, v1 = node.edges
        if level == self.target_level:
            result = self._apply_target(node, v0, v1, level)
        else:
            role = self.roles[level]
            if role == _CONTROL_POS:
                # Control unsatisfied on the 0-branch: the gate is the
                # identity there, so the child passes through untouched.
                c0, c1 = v0, self._apply_edge(v1, level - 1)
            elif role == _CONTROL_NEG:
                c0, c1 = self._apply_edge(v0, level - 1), v1
            else:
                c0 = self._apply_edge(v0, level - 1)
                c1 = self._apply_edge(v1, level - 1)
            # Unchanged-children shortcut: the node's own weight tuple is
            # already canonical, so rebuilding it would hand back the same
            # node with a unit eta -- skip the normalise + unique-table
            # round-trip.  Weights are interned, so identity comparison
            # suffices (a false negative merely falls through).
            if (
                c0.node is v0.node
                and c0.weight is v0.weight
                and c1.node is v1.node
                and c1.weight is v1.weight
            ):
                result = Edge(node, self._one)
            else:
                result = manager.make_node(level, [c0, c1])
        self._cache.put(cache_key, result)
        return result

    def _scaled(self, edge: Edge, factor: Any) -> Edge:
        """``manager.scale`` minus the redundant zero checks: ``edge`` is
        a canonical child edge (zero only as the shared zero-edge
        singleton, including nonzero *terminal* edges at level 1) and
        ``factor`` is a normalised non-zero gate entry."""
        if factor is self._one or edge is self._zero_edge:
            return edge
        return Edge(edge.node, self.system.mul(edge.weight, factor))

    def _apply_target(self, node: Any, v0: Edge, v1: Edge, level: int) -> Edge:
        manager = self.manager
        u00, u01, u10, u11 = self.entries
        if self.lowest_lower_control:
            below = level - 1
            s0 = self._sat_edge(v0, below)
            s1 = self._sat_edge(v1, below)
            r0 = manager.add(
                manager.add(manager.scale(s0, u00), manager.scale(s1, u01)),
                self._unsat_edge(v0, below),
            )
            r1 = manager.add(
                manager.add(manager.scale(s0, u10), manager.scale(s1, u11)),
                self._unsat_edge(v1, below),
            )
        elif self._diagonal:
            # Diagonal gate: each branch is only rescaled, no additions.
            r0 = self._scaled(v0, u00)
            r1 = self._scaled(v1, u11)
        elif self._antidiagonal:
            # Antidiagonal gate (X, Y): branches swap, no additions.
            r0 = self._scaled(v1, u01)
            r1 = self._scaled(v0, u10)
        elif self._fused:
            r0, r1 = self._combine_pair(v0, v1)
        else:
            # No controls below the target: everything underneath is the
            # identity and is never visited (the decisive short-circuit).
            r0 = manager.add(manager.scale(v0, u00), manager.scale(v1, u01))
            r1 = manager.add(manager.scale(v0, u10), manager.scale(v1, u11))
        if (
            r0.node is v0.node
            and r0.weight is v0.weight
            and r1.node is v1.node
            and r1.weight is v1.weight
        ):
            # The gate fixed this subtree (e.g. X on a symmetric node);
            # see the unchanged-children shortcut in ``_apply_node``.
            return Edge(node, self._one)
        return manager.make_node(level, [r0, r1])

    def _combine_pair(self, e0: Edge, e1: Edge) -> "tuple[Edge, Edge]":
        """Both rows ``(u00 e0 + u01 e1, u10 e0 + u11 e1)`` in one walk.

        The two additions of the unfused path traverse the same
        ``(node0, node1)`` pair lattice twice; this recursion visits each
        pair once, memoised under the weight-relative key
        ``(signature|PAIR, uid0, uid1, key(w1/w0))``.  Nodes that are
        *shared* between the branches (``node0 is node1``) collapse to
        four weight products with no traversal at all.  Only used for
        exact systems, where re-association cannot change the canonical
        result.
        """
        manager = self.manager
        u00, u01, u10, u11 = self.entries
        if manager.is_zero_edge(e0):
            return (manager.scale(e1, u01), manager.scale(e1, u11))
        if manager.is_zero_edge(e1):
            return (manager.scale(e0, u00), manager.scale(e0, u10))
        system = self.system
        node0 = e0.node
        node1 = e1.node
        w0 = e0.weight
        w1 = e1.weight
        if node0 is node1:
            row0 = system.add(system.mul(w0, u00), system.mul(w1, u01))
            row1 = system.add(system.mul(w0, u10), system.mul(w1, u11))
            return (
                self._zero_edge if system.is_zero(row0) else Edge(node0, row0),
                self._zero_edge if system.is_zero(row1) else Edge(node0, row1),
            )
        ratio = system.division_helper(w1, w0)
        if ratio is None:
            # No exact weight ratio (e.g. it leaves D[omega]): fuse on
            # the absolute weights instead.  The 5-element key cannot
            # collide with the 4-element ratio form below.
            cache_key = (
                self._key_pair,
                node0.uid,
                node1.uid,
                system.key(w0),
                system.key(w1),
            )
            cached = self._cache.get(cache_key)
            if cached is None:
                level = node0.level
                a0, a1 = node0.edges
                b0, b1 = node1.edges
                q0 = self._combine_pair(self._scaled(a0, w0), self._scaled(b0, w1))
                q1 = self._combine_pair(self._scaled(a1, w0), self._scaled(b1, w1))
                cached = (
                    manager.make_node(level, [q0[0], q1[0]]),
                    manager.make_node(level, [q0[1], q1[1]]),
                )
                self._cache.put(cache_key, cached)
            return cached
        cache_key = (self._key_pair, node0.uid, node1.uid, system.key(ratio))
        cached = self._cache.get(cache_key)
        if cached is None:
            level = node0.level
            a0, a1 = node0.edges
            b0, b1 = node1.edges
            q0 = self._combine_pair(a0, self._scaled(b0, ratio))
            q1 = self._combine_pair(a1, self._scaled(b1, ratio))
            cached = (
                manager.make_node(level, [q0[0], q1[0]]),
                manager.make_node(level, [q0[1], q1[1]]),
            )
            self._cache.put(cache_key, cached)
        return (self._scaled(cached[0], w0), self._scaled(cached[1], w0))

    # ------------------------------------------------------------------
    # Below-target control projections (rarely needed; memoised)
    # ------------------------------------------------------------------

    def _sat_edge(self, edge: Edge, level: int) -> Edge:
        """Project onto paths satisfying every control at levels <= level."""
        manager = self.manager
        if manager.is_zero_edge(edge):
            return edge
        if level < self.lowest_lower_control:
            return edge
        node = edge.node
        if node.level != level:
            raise LevelMismatchError(
                f"expected vector node at level {level}, got {node.level}"
            )
        cache_key = (self._key_sat, node.uid)
        cached = self._cache.get(cache_key)
        if cached is None:
            v0, v1 = node.edges
            role = self.roles[level]
            if role == _CONTROL_POS:
                children = [manager.zero_edge(), self._sat_edge(v1, level - 1)]
            elif role == _CONTROL_NEG:
                children = [self._sat_edge(v0, level - 1), manager.zero_edge()]
            else:
                children = [
                    self._sat_edge(v0, level - 1),
                    self._sat_edge(v1, level - 1),
                ]
            cached = manager.make_node(level, children)
            self._cache.put(cache_key, cached)
        return manager.scale(cached, edge.weight)

    def _unsat_edge(self, edge: Edge, level: int) -> Edge:
        """Project onto paths violating some control at levels <= level.

        Together with :meth:`_sat_edge` this partitions the paths, so
        ``sat + unsat == edge`` exactly and no subtraction is needed.
        """
        manager = self.manager
        if manager.is_zero_edge(edge):
            return edge
        if level < self.lowest_lower_control:
            return manager.zero_edge()
        node = edge.node
        if node.level != level:
            raise LevelMismatchError(
                f"expected vector node at level {level}, got {node.level}"
            )
        cache_key = (self._key_unsat, node.uid)
        cached = self._cache.get(cache_key)
        if cached is None:
            v0, v1 = node.edges
            role = self.roles[level]
            if role == _CONTROL_POS:
                children = [v0, self._unsat_edge(v1, level - 1)]
            elif role == _CONTROL_NEG:
                children = [self._unsat_edge(v0, level - 1), v1]
            else:
                children = [
                    self._unsat_edge(v0, level - 1),
                    self._unsat_edge(v1, level - 1),
                ]
            cached = manager.make_node(level, children)
            self._cache.put(cache_key, cached)
        return manager.scale(cached, edge.weight)
