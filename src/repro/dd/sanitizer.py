r"""Runtime invariant checking for canonical QMDDs (the *sanitizer*).

The paper's central guarantee -- a QMDD with exact algebraic weights is
*canonical*, so equality of (sub-)states is pointer equality -- only
holds while a set of invariants is maintained by every operation:

1. **Weight normal form.**  Every edge weight is a canonical value of
   the active number system: Algorithm 1 minimal-denominator form for
   ``D[omega]`` (and the extended reduction for ``Q[omega]``), the
   eps-snap residue property for the numeric tolerance table; and the
   *registered* interned instance, so weight keys round-trip.
2. **Node normalisation.**  The outgoing weight tuple of every node is
   a fixed point of the system's normalisation rule (Algorithm 2/3 or
   the numeric pivot rule): re-normalising yields ``eta == 1`` and the
   identical keys.  This is the "leading edge" convention of
   Section II-B.
3. **Hash-consing.**  Every reachable node is the unique-table resident
   for its own structural key -- no shadow duplicates that would break
   pointer-equality canonicity.
4. **Memo coherence.**  Compute-table entries replay to their cached
   result (checked on a bounded sample; a stale entry silently
   replayed is the classic wrong-but-plausible DD failure mode).
5. **Semantics.**  Reconstructed amplitudes of a sampled set of basis
   states agree with an independent dense evaluation of the DD.

:class:`Sanitizer` walks a DD and verifies all of the above, reporting
violations as structured :class:`~repro.errors.SanitizerError`\ s that
carry a stable ``code`` plus the root-to-node path.  The three
:class:`SanitizerMode` settings wire it into the simulator:

``off``
    No checking (the default; zero overhead).
``check-on-root``
    One full check of the final state after a simulation run.
``check-every-op``
    A full check after every gate application (slow; for tests and
    debugging sessions).

``Simulator(manager, sanitize="check-on-root")`` and the
``repro-qmdd sanitize`` CLI subcommand are the entry points; the static
counterpart of this runtime net is ``tools/repro_lint``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from itertools import islice
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.dd.edge import MATRIX_ARITY, VECTOR_ARITY, Edge, Node
from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.dd.manager import DDManager

__all__ = [
    "SanitizerMode",
    "SanitizerReport",
    "SanitizerViolation",
    "Sanitizer",
    "sanitize_dd",
]


class SanitizerMode(Enum):
    """How much invariant checking the simulator performs."""

    OFF = "off"
    CHECK_ON_ROOT = "check-on-root"
    CHECK_EVERY_OP = "check-every-op"

    @classmethod
    def coerce(cls, value: "SanitizerMode | str | bool | None") -> "SanitizerMode":
        """Accept enum members, their string values, common aliases and
        booleans (``True`` means ``check-on-root``)."""
        if isinstance(value, SanitizerMode):
            return value
        if value is None or value is False:
            return cls.OFF
        if value is True:
            return cls.CHECK_ON_ROOT
        aliases = {
            "root": cls.CHECK_ON_ROOT,
            "every-op": cls.CHECK_EVERY_OP,
            "all": cls.CHECK_EVERY_OP,
        }
        name = str(value).strip().lower()
        if name in aliases:
            return aliases[name]
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(
            f"unknown sanitizer mode {value!r}; expected one of "
            f"{[member.value for member in cls]} (or 'root'/'every-op')"
        )


@dataclass
class SanitizerViolation:
    """One invariant violation (pre-exception form, for reports)."""

    code: str
    message: str
    path: Optional[Tuple[int, ...]] = None
    node_uid: Optional[int] = None

    def to_error(self) -> SanitizerError:
        return SanitizerError(self.code, self.message, self.path, self.node_uid)

    def __str__(self) -> str:
        return str(self.to_error())


@dataclass
class SanitizerReport:
    """Outcome of one sanitizer pass: violations plus coverage counters."""

    violations: List[SanitizerViolation] = field(default_factory=list)
    nodes_checked: int = 0
    edges_checked: int = 0
    memo_entries_checked: int = 0
    amplitudes_checked: int = 0
    refcounts_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "SanitizerReport") -> "SanitizerReport":
        self.violations.extend(other.violations)
        self.nodes_checked += other.nodes_checked
        self.edges_checked += other.edges_checked
        self.memo_entries_checked += other.memo_entries_checked
        self.amplitudes_checked += other.amplitudes_checked
        self.refcounts_checked += other.refcounts_checked
        return self

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"sanitizer: {status} "
            f"({self.nodes_checked} nodes, {self.edges_checked} edges, "
            f"{self.memo_entries_checked} memo entries, "
            f"{self.amplitudes_checked} amplitudes, "
            f"{self.refcounts_checked} refcounts checked)"
        )


class Sanitizer:
    """Invariant checker for the DDs of one manager.

    Parameters
    ----------
    manager:
        The owning :class:`~repro.dd.manager.DDManager`.
    mode:
        Governs how the simulator drives this sanitizer; the direct
        :meth:`check_state` / :meth:`check_dd` calls always run a full
        check regardless.
    amplitude_samples:
        Number of basis states sampled for the semantic cross-check
        (plus the two extremal indices).
    memo_samples:
        Per compute table, how many entries are replayed.
    max_statevector_qubits:
        Up to this width the amplitude cross-check compares against a
        fresh dense statevector evaluation; above it, against an
        independent per-path complex product (O(n) per sample).
    """

    def __init__(
        self,
        manager: "DDManager",
        mode: "SanitizerMode | str" = SanitizerMode.CHECK_ON_ROOT,
        *,
        amplitude_samples: int = 8,
        memo_samples: int = 32,
        max_statevector_qubits: int = 12,
        seed: int = 0,
    ) -> None:
        self.manager = manager
        self.mode = SanitizerMode.coerce(mode)
        self.amplitude_samples = amplitude_samples
        self.memo_samples = memo_samples
        self.max_statevector_qubits = max_statevector_qubits
        self.seed = seed
        #: Cumulative counters over all checks run through this instance.
        self.total = SanitizerReport()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def check_state(self, state: Edge, raise_on_violation: bool = True) -> SanitizerReport:
        """Full invariant check of a state-vector DD.

        Runs the structural walk, the compute-table replay sample and
        the amplitude cross-check.  With ``raise_on_violation`` (the
        default) the first violation is raised as a structured
        :class:`~repro.errors.SanitizerError`; otherwise the complete
        report is returned for inspection.
        """
        tracer = self.manager.telemetry.tracer
        with tracer.span("dd.sanitize.walk"):
            report = self._walk(state)
        with tracer.span("dd.sanitize.memo_replay"):
            report.merge(self._check_memo_tables())
        if not state.is_terminal and state.node.level == self.manager.num_qubits:
            with tracer.span("dd.sanitize.amplitudes"):
                report.merge(self._check_amplitudes(state))
        with tracer.span("dd.sanitize.refcounts"):
            report.merge(self._check_refcounts())
        self.total.merge(report)
        if raise_on_violation and not report.ok:
            raise report.violations[0].to_error()
        return report

    def check_dd(self, edge: Edge, raise_on_violation: bool = True) -> SanitizerReport:
        """Structural-only check of any DD (vector or matrix)."""
        with self.manager.telemetry.tracer.span("dd.sanitize.walk"):
            report = self._walk(edge)
        self.total.merge(report)
        if raise_on_violation and not report.ok:
            raise report.violations[0].to_error()
        return report

    # ------------------------------------------------------------------
    # Invariants 1-3: the structural walk
    # ------------------------------------------------------------------

    def _walk(self, root: Edge) -> SanitizerReport:
        manager = self.manager
        system = manager.system
        report = SanitizerReport()
        self._check_edge_weight(root, (), report, is_root=True)
        if root.is_terminal:
            return report
        seen: set = set()
        stack: List[Tuple[Node, Tuple[int, ...]]] = [(root.node, ())]
        while stack:
            node, path = stack.pop()
            if node.uid in seen:
                continue
            seen.add(node.uid)
            report.nodes_checked += 1
            if node.arity not in (VECTOR_ARITY, MATRIX_ARITY):
                report.violations.append(
                    SanitizerViolation(
                        "level-structure",
                        f"node has arity {node.arity} (expected 2 or 4)",
                        path,
                        node.uid,
                    )
                )
                continue
            if not 1 <= node.level <= manager.num_qubits:
                report.violations.append(
                    SanitizerViolation(
                        "level-structure",
                        f"node level {node.level} outside 1..{manager.num_qubits}",
                        path,
                        node.uid,
                    )
                )
            any_nonzero = False
            for position, child in enumerate(node.edges):
                child_path = path + (position,)
                self._check_edge_weight(child, child_path, report)
                weight_zero = self._safe_is_zero(child.weight)
                if weight_zero:
                    if not child.node.is_terminal:
                        report.violations.append(
                            SanitizerViolation(
                                "zero-edge-form",
                                "zero-weight edge points at a live node "
                                "(must be the canonical terminal zero edge)",
                                child_path,
                                child.node.uid,
                            )
                        )
                else:
                    any_nonzero = True
                    if child.node.is_terminal:
                        if node.level != 1:
                            report.violations.append(
                                SanitizerViolation(
                                    "level-structure",
                                    f"non-zero terminal child below level {node.level} "
                                    "(levels may not be skipped)",
                                    child_path,
                                    node.uid,
                                )
                            )
                    elif child.node.level != node.level - 1:
                        report.violations.append(
                            SanitizerViolation(
                                "level-structure",
                                f"child at level {child.node.level} under a level-"
                                f"{node.level} node (expected {node.level - 1})",
                                child_path,
                                child.node.uid,
                            )
                        )
                    else:
                        stack.append((child.node, child_path))
            if not any_nonzero:
                report.violations.append(
                    SanitizerViolation(
                        "zero-edge-form",
                        "all children are zero (node should have collapsed "
                        "to the zero edge)",
                        path,
                        node.uid,
                    )
                )
                continue
            self._check_node_normalization(node, path, report)
            self._check_residency(node, path, report)
        return report

    def _safe_is_zero(self, weight: Any) -> bool:
        try:
            return bool(self.manager.system.is_zero(weight))
        except Exception:
            return False

    def _check_edge_weight(
        self, edge: Edge, path: Tuple[int, ...], report: SanitizerReport, is_root: bool = False
    ) -> None:
        report.edges_checked += 1
        problem = self.manager.system.check_canonical(edge.weight)
        if problem is not None:
            report.violations.append(
                SanitizerViolation(
                    "weight-form",
                    ("root edge: " if is_root else "") + problem,
                    path,
                    None if edge.node.is_terminal else edge.node.uid,
                )
            )

    def _check_node_normalization(
        self, node: Node, path: Tuple[int, ...], report: SanitizerReport
    ) -> None:
        system = self.manager.system
        weights = tuple(child.weight for child in node.edges)
        try:
            current_keys = tuple(system.key(weight) for weight in weights)
            eta, _normalized, keys = system.normalize_keyed(weights)
        except Exception as error:
            report.violations.append(
                SanitizerViolation(
                    "normalization",
                    f"weight tuple cannot be re-normalised: {error}",
                    path,
                    node.uid,
                )
            )
            return
        if not system.is_one(eta) or keys != current_keys:
            report.violations.append(
                SanitizerViolation(
                    "normalization",
                    "outgoing weights are not a normalisation fixed point "
                    f"(eta={eta!r}; the leading-edge convention of "
                    "Algorithm 2/3 is violated)",
                    path,
                    node.uid,
                )
            )

    def _check_residency(
        self, node: Node, path: Tuple[int, ...], report: SanitizerReport
    ) -> None:
        manager = self.manager
        system = manager.system
        table = manager._vector_table if node.arity == VECTOR_ARITY else manager._matrix_table
        try:
            keys = tuple(system.key(child.weight) for child in node.edges)
        except Exception as error:
            report.violations.append(
                SanitizerViolation(
                    "shadow-node", f"cannot key node weights: {error}", path, node.uid
                )
            )
            return
        resident = table.resident(node.level, node.edges, keys)
        if resident is None:
            report.violations.append(
                SanitizerViolation(
                    "shadow-node",
                    "reachable node is not interned in the unique table "
                    "(constructed outside DDManager.make_node, or pruned "
                    "while still live)",
                    path,
                    node.uid,
                )
            )
        elif resident is not node:
            report.violations.append(
                SanitizerViolation(
                    "shadow-node",
                    f"reachable node duplicates unique-table resident uid "
                    f"{resident.uid} (pointer-equality canonicity is broken)",
                    path,
                    node.uid,
                )
            )

    # ------------------------------------------------------------------
    # Invariant 4: compute-table replay (sampled)
    # ------------------------------------------------------------------

    def _uid_map(self) -> Dict[int, Node]:
        manager = self.manager
        mapping: Dict[int, Node] = {}
        for table in (manager._vector_table, manager._matrix_table):
            for node in table.nodes():
                mapping[node.uid] = node
        return mapping

    def _check_memo_tables(self) -> SanitizerReport:
        report = SanitizerReport()
        if self.memo_samples <= 0:
            return report
        uid_map = self._uid_map()
        self._replay_add_cache(uid_map, report)
        self._replay_mat_vec_cache(uid_map, report)
        return report

    # ------------------------------------------------------------------
    # Refcount audit (delegated to the memory manager)
    # ------------------------------------------------------------------

    def _check_refcounts(self) -> SanitizerReport:
        """Cross-check stored refcounts against a structural recount.

        Delegates to :meth:`repro.dd.mem.MemoryManager.audit`, which
        recomputes every resident node's expected in-degree (child-edge
        slots plus registered roots) and compares it with the ``ref``
        slot maintained incrementally by the unique tables.  A mismatch
        is the GC analogue of a stale memo: the counters are advisory
        for mark-and-sweep, but a drifting counter means create/sweep
        bookkeeping has diverged from the actual DAG shape.
        """
        report = SanitizerReport()
        memory = getattr(self.manager, "memory", None)
        if memory is None:
            return report
        report.refcounts_checked = memory.node_count
        report.violations.extend(memory.audit())
        return report

    def _replay_add_cache(self, uid_map: Dict[int, Node], report: SanitizerReport) -> None:
        manager = self.manager
        system = manager.system
        for key, cached in list(islice(manager._add_cache.items(), self.memo_samples)):
            try:
                if len(key) == 3:  # ratio form: (left_uid, right_uid, ratio_key)
                    left_node = uid_map.get(key[0])
                    right_node = uid_map.get(key[1])
                    if left_node is None or right_node is None:
                        continue  # entry refers to pruned nodes; unreachable
                    left = Edge(left_node, system.one)
                    right = Edge(right_node, system.value_for_key(key[2]))
                else:  # absolute form: (left_uid, left_key, right_uid, right_key)
                    left_node = uid_map.get(key[0])
                    right_node = uid_map.get(key[2])
                    if left_node is None or right_node is None:
                        continue
                    left = Edge(left_node, system.value_for_key(key[1]))
                    right = Edge(right_node, system.value_for_key(key[3]))
                # _add_children never consults the entry under test (the
                # top-level key is only written after the recursion), so
                # this is a genuine recomputation of the cached claim.
                recomputed = manager._add_children(left, right)
                report.memo_entries_checked += 1
                if not manager.edges_equal(recomputed, cached):
                    report.violations.append(
                        SanitizerViolation(
                            "stale-memo",
                            f"add-cache entry {key!r} does not replay: cached "
                            f"{cached!r}, recomputed {recomputed!r}",
                        )
                    )
            except Exception as error:
                report.violations.append(
                    SanitizerViolation(
                        "stale-memo",
                        f"add-cache entry {key!r} cannot be replayed: {error}",
                    )
                )

    def _replay_mat_vec_cache(self, uid_map: Dict[int, Node], report: SanitizerReport) -> None:
        manager = self.manager
        for key, cached in list(islice(manager._mat_vec_cache.items(), self.memo_samples)):
            try:
                matrix_node = uid_map.get(key[0])
                vector_node = uid_map.get(key[1])
                if matrix_node is None or vector_node is None:
                    continue
                # The recursion starts by probing its own key, so the
                # entry under test is taken out first and the (correct)
                # recomputation re-inserts itself.
                removed = manager._mat_vec_cache.discard(key)
                if removed is None:
                    continue
                recomputed = manager._mat_vec_nodes(matrix_node, vector_node)
                report.memo_entries_checked += 1
                if not manager.edges_equal(recomputed, removed):
                    report.violations.append(
                        SanitizerViolation(
                            "stale-memo",
                            f"mat-vec cache entry {key!r} does not replay: cached "
                            f"{removed!r}, recomputed {recomputed!r}",
                        )
                    )
            except Exception as error:
                report.violations.append(
                    SanitizerViolation(
                        "stale-memo",
                        f"mat-vec cache entry {key!r} cannot be replayed: {error}",
                    )
                )

    # ------------------------------------------------------------------
    # Invariant 5: amplitude cross-check (sampled)
    # ------------------------------------------------------------------

    def _sample_indices(self, num_qubits: int) -> List[int]:
        size = 1 << num_qubits
        indices = {0, size - 1}
        rng = random.Random(self.seed)
        wanted = min(self.amplitude_samples, size)
        while len(indices) < min(size, wanted + 2):
            indices.add(rng.randrange(size))
        return sorted(indices)

    def _raw_amplitude(self, state: Edge, index: int) -> complex:
        """Independent per-path product in plain ``complex`` arithmetic
        (never touches the number system's ``mul`` or its memos)."""
        system = self.manager.system
        value = complex(system.to_complex(state.weight))
        node = state.node
        while not node.is_terminal:
            bit = (index >> (node.level - 1)) & 1
            child = node.edges[bit]
            value *= complex(system.to_complex(child.weight))
            node = child.node
        return value

    def _check_amplitudes(self, state: Edge) -> SanitizerReport:
        manager = self.manager
        system = manager.system
        report = SanitizerReport()
        num_qubits = manager.num_qubits
        indices = self._sample_indices(num_qubits)
        dense = None
        if num_qubits <= self.max_statevector_qubits:
            try:
                dense = manager.to_statevector(state)
            except Exception as error:
                report.violations.append(
                    SanitizerViolation(
                        "amplitude-mismatch",
                        f"fresh statevector evaluation failed: {error}",
                    )
                )
                return report
        eps = float(getattr(system, "eps", 0.0))
        # eps-interning snaps every intermediate product by up to eps per
        # component; the two evaluation orders may therefore drift by a
        # multiple of eps per level.  Exact systems only see the final
        # float rounding of to_complex.
        atol = 1e-9 + 64.0 * num_qubits * eps
        for index in indices:
            try:
                got = complex(system.to_complex(manager.amplitude(state, index)))
            except Exception as error:
                report.violations.append(
                    SanitizerViolation(
                        "amplitude-mismatch",
                        f"amplitude({index}) raised: {error}",
                    )
                )
                continue
            reference = (
                complex(dense[index]) if dense is not None else self._raw_amplitude(state, index)
            )
            report.amplitudes_checked += 1
            if abs(got - reference) > atol + 1e-9 * abs(reference):
                report.violations.append(
                    SanitizerViolation(
                        "amplitude-mismatch",
                        f"basis state |{index}>: DD amplitude {got!r} vs fresh "
                        f"evaluation {reference!r} (atol {atol:g})",
                    )
                )
        return report


def sanitize_dd(
    manager: "DDManager",
    edge: Edge,
    *,
    raise_on_violation: bool = True,
    **options: Any,
) -> SanitizerReport:
    """One-shot full check of a DD (convenience wrapper).

    ``options`` are forwarded to :class:`Sanitizer` (e.g.
    ``amplitude_samples``, ``memo_samples``, ``seed``).
    """
    sanitizer = Sanitizer(manager, SanitizerMode.CHECK_ON_ROOT, **options)
    if not edge.is_terminal and edge.node.arity == VECTOR_ARITY and edge.node.level == manager.num_qubits:
        return sanitizer.check_state(edge, raise_on_violation=raise_on_violation)
    report = sanitizer.check_dd(edge, raise_on_violation=raise_on_violation)
    report.merge(sanitizer._check_memo_tables())
    if raise_on_violation and not report.ok:
        raise report.violations[0].to_error()
    return report
