"""Graphviz DOT export of decision diagrams.

Renders a QMDD in the style of the paper's Fig. 1c: one box per node
labelled with its level's qubit, edge weights annotated (weight-1 edges
unlabelled, zero edges drawn as stubs).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.dd.edge import Edge, iter_nodes
from repro.dd.manager import DDManager

__all__ = ["to_dot"]


def _format_weight(manager: DDManager, weight: Any) -> str:
    value = manager.system.to_complex(weight)
    if abs(value.imag) < 1e-12:
        return f"{value.real:.4g}"
    if abs(value.real) < 1e-12:
        return f"{value.imag:.4g}i"
    return f"{value.real:.4g}{value.imag:+.4g}i"


def to_dot(manager: DDManager, edge: Edge, name: str = "qmdd") -> str:
    """Serialise ``edge`` as a Graphviz digraph string."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=circle];"]
    lines.append('  terminal [shape=box, label="1"];')
    lines.append('  root [shape=point];')
    root_label = "" if manager.system.is_one(edge.weight) else _format_weight(manager, edge.weight)
    target = "terminal" if edge.is_terminal else f"n{edge.node.uid}"
    lines.append(f'  root -> {target} [label="{root_label}"];')
    emitted: Dict[int, bool] = {}
    for node in iter_nodes(edge):
        if node.uid in emitted:
            continue
        emitted[node.uid] = True
        qubit = manager.num_qubits - node.level
        lines.append(f'  n{node.uid} [label="q{qubit}"];')
        for position, child in enumerate(node.edges):
            if manager.system.is_zero(child.weight):
                stub = f"z{node.uid}_{position}"
                lines.append(f'  {stub} [shape=point, width=0.05];')
                lines.append(f'  n{node.uid} -> {stub} [style=dashed, label="{position}"];')
                continue
            child_name = "terminal" if child.is_terminal else f"n{child.node.uid}"
            label = str(position)
            if not manager.system.is_one(child.weight):
                label += f": {_format_weight(manager, child.weight)}"
            lines.append(f'  n{node.uid} -> {child_name} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
