r"""Nodes and weighted edges of a QMDD.

A QMDD (paper Section II-B) represents a :math:`2^n \times 2^n` matrix
(or a :math:`2^n` state vector) as a directed acyclic graph:

* every non-terminal :class:`Node` sits at a *level* ``1..n`` (level
  ``n`` is the root / most significant qubit, level ``0`` the terminal)
  and has 4 outgoing edges for matrices (the four quadrants, in the
  order top-left, top-right, bottom-left, bottom-right) or 2 for vectors
  (upper and lower half);
* every :class:`Edge` carries a multiplicative *weight*; the value of a
  matrix entry / amplitude is the product of the edge weights along the
  corresponding root-to-terminal path (paper Example 3);
* the single :data:`TERMINAL` node represents the number one.

Weights are opaque objects owned by a
:class:`~repro.dd.number_system.NumberSystem`: interned ``complex``
entries for the numerical representation, exact
:class:`~repro.rings.qomega.QOmega` / :class:`~repro.rings.domega.DOmega`
values for the algebraic ones.

Nodes are *hash-consed* by :class:`~repro.dd.unique_table.UniqueTable`
and must never be constructed directly by client code -- only through
``DDManager.make_node`` which also applies edge-weight normalisation so
that structurally equal sub-matrices share one node (canonicity).
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

__all__ = [
    "Edge",
    "Node",
    "REF_SATURATION",
    "TERMINAL",
    "VECTOR_ARITY",
    "MATRIX_ARITY",
]

VECTOR_ARITY = 2
MATRIX_ARITY = 4

#: Reference counts saturate at this value and are never decremented
#: past it again: a node shared this widely (the terminal, and the
#: terminal-adjacent "unit" nodes of deep circuits) is effectively
#: immortal, and pinning it is cheaper and safer than tracking exact
#: in-degrees that would overflow a small counter.  Saturated nodes can
#: still be reclaimed by the mark-and-sweep collector, which derives
#: liveness from root reachability rather than from the counts.
REF_SATURATION = 0xFFFF


class Node:
    """A hash-consed QMDD node.

    Attributes
    ----------
    uid:
        Stable integer identity assigned by the unique table; used in
        compute-table keys (deterministic, unlike ``id()``).
    level:
        ``1..n`` for inner nodes; the terminal has level ``0``.
    edges:
        Outgoing :class:`Edge` tuple of length 2 (vector) or 4 (matrix).
    ref:
        Structural in-degree maintained by the unique table (one count
        per parent edge slot) plus one count per externally registered
        root (see :class:`repro.dd.mem.MemoryManager`).  Saturates at
        :data:`REF_SATURATION`.
    """

    __slots__ = ("uid", "level", "edges", "ref")

    def __init__(self, uid: int, level: int, edges: Tuple["Edge", ...]) -> None:
        self.uid = uid
        self.level = level
        self.edges = edges
        self.ref = 0

    @property
    def is_terminal(self) -> bool:
        return self.level == 0

    @property
    def arity(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        if self.is_terminal:
            return "Node(<terminal>)"
        return f"Node(uid={self.uid}, level={self.level}, arity={self.arity})"


#: The unique terminal node (represents the scalar 1; weights on the
#: incoming edges supply the actual values).  Its refcount is born
#: saturated: the terminal is shared by every DD and never reclaimed.
TERMINAL = Node(uid=0, level=0, edges=())
TERMINAL.ref = REF_SATURATION


class Edge:
    """A weighted edge: target node plus multiplicative weight.

    The pair ``(node, weight)`` fully determines a (sub-)matrix or
    (sub-)vector.  Because nodes are hash-consed and weights canonical
    within their number system, two edges represent the same object iff
    their ``node`` is identical and their weight keys are equal -- the
    O(1) equivalence check highlighted in Section V-B of the paper.
    """

    __slots__ = ("node", "weight")

    def __init__(self, node: Node, weight: Any) -> None:
        self.node = node
        self.weight = weight

    @property
    def is_terminal(self) -> bool:
        return self.node.is_terminal

    def __repr__(self) -> str:
        return f"Edge({self.node!r}, weight={self.weight!r})"


def iter_nodes(edge: Edge) -> Iterator[Node]:
    """Yield every distinct non-terminal node reachable from ``edge``."""
    seen = set()
    stack = [edge.node]
    while stack:
        node = stack.pop()
        if node.is_terminal or node.uid in seen:
            continue
        seen.add(node.uid)
        yield node
        for child in node.edges:
            stack.append(child.node)
