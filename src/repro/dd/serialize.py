r"""Lossless serialisation of decision diagrams.

Because the algebraic edge weights are tuples of integers, a QMDD
serialises *exactly* -- a saved state deserialises to the bit-identical
canonical diagram, across processes and platforms.  (This is another
practical payoff of the paper's representation: a float-weighted DD can
only be saved approximately.)

Format: a small JSON document listing nodes bottom-up with their level,
child node references and child weight payloads, plus the root edge.
Weight payloads depend on the number system:

* algebraic Q[omega]: ``[a, b, c, d, k, e]``;
* algebraic D[omega] (GCD scheme): ``[a, b, c, d, k]``;
* numeric: ``[re, im]`` doubles (lossy only in the sense that the
  tolerance-table identity structure is rebuilt on load).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.dd.edge import Edge, Node
from repro.dd.manager import DDManager
from repro.dd.number_system import (
    AlgebraicGcdSystem,
    AlgebraicQOmegaSystem,
    NumericSystem,
)
from repro.errors import DDError
from repro.rings.domega import DOmega
from repro.rings.qomega import QOmega
from repro.rings.zomega import ZOmega

__all__ = ["dumps", "loads", "dump", "load"]

_FORMAT_VERSION = 1


def _weight_payload(manager: DDManager, weight: Any) -> List:
    system = manager.system
    if isinstance(system, AlgebraicQOmegaSystem):
        return list(weight.key())
    if isinstance(system, AlgebraicGcdSystem):
        return list(weight.key())
    if isinstance(system, NumericSystem):
        value = system.to_complex(weight)
        return [value.real, value.imag]
    raise DDError(f"cannot serialise weights of system {system.name!r}")


def _weight_from_payload(manager: DDManager, payload: List) -> Any:
    system = manager.system
    if isinstance(system, AlgebraicQOmegaSystem):
        a, b, c, d, k, e = payload
        return QOmega(ZOmega(a, b, c, d), k, e)
    if isinstance(system, AlgebraicGcdSystem):
        a, b, c, d, k = payload
        return DOmega(ZOmega(a, b, c, d), k)
    if isinstance(system, NumericSystem):
        return system.from_complex(complex(payload[0], payload[1]))
    raise DDError(f"cannot deserialise weights of system {system.name!r}")


def _system_tag(manager: DDManager) -> str:
    system = manager.system
    if isinstance(system, AlgebraicQOmegaSystem):
        return "algebraic-q"
    if isinstance(system, AlgebraicGcdSystem):
        return "algebraic-gcd"
    if isinstance(system, NumericSystem):
        return "numeric"
    raise DDError(f"unknown number system {system.name!r}")


def dumps(manager: DDManager, edge: Edge) -> str:
    """Serialise ``edge`` (vector or matrix DD) to a JSON string."""
    order: List = []
    index_of: Dict[int, int] = {}

    def visit(node: Node) -> int:
        if node.is_terminal:
            return -1
        existing = index_of.get(node.uid)
        if existing is not None:
            return existing
        children = []
        for child in node.edges:
            children.append(
                {
                    "node": visit(child.node),
                    "weight": _weight_payload(manager, child.weight),
                }
            )
        index = len(order)
        index_of[node.uid] = index
        order.append({"level": node.level, "children": children})
        return index

    root_index = visit(edge.node)
    document = {
        "format": _FORMAT_VERSION,
        "system": _system_tag(manager),
        "num_qubits": manager.num_qubits,
        "arity": edge.node.arity if not edge.node.is_terminal else 0,
        "nodes": order,
        "root": {
            "node": root_index,
            "weight": _weight_payload(manager, edge.weight),
        },
    }
    return json.dumps(document)


def loads(manager: DDManager, text: str) -> Edge:
    """Rebuild a DD inside ``manager`` (widths and systems must match).

    The nodes are re-interned through the manager's unique table and
    every weight payload is re-interned through the manager's own
    weight/complex table, so the result is canonical -- structurally
    identical saves produce the identical node, and an exact save
    round-trips bit for bit.  Nothing in the format references
    weight-table ids, so a document produced by a *different process*
    (or a manager with a different interning history) loads into a
    fresh :class:`DDManager` unchanged; this is the transport format of
    the batch-execution engine (:mod:`repro.exec`).
    """
    document = json.loads(text)
    if document.get("format") != _FORMAT_VERSION:
        raise DDError(f"unsupported serialisation format {document.get('format')!r}")
    if document["system"] != _system_tag(manager):
        raise DDError(
            f"document was saved with system {document['system']!r}, "
            f"manager uses {_system_tag(manager)!r}"
        )
    if document["num_qubits"] != manager.num_qubits:
        raise DDError(
            f"document width {document['num_qubits']} does not match "
            f"manager width {manager.num_qubits}"
        )
    rebuilt: List[Edge] = []
    for record in document["nodes"]:
        children = []
        for child in record["children"]:
            weight = _weight_from_payload(manager, child["weight"])
            if child["node"] < 0:
                children.append(manager.terminal_edge(weight))
            else:
                base = rebuilt[child["node"]]
                children.append(manager.scale(base, weight))
        interned = manager.make_node(record["level"], children)
        # Saved child weights are relative to the normalised node, so
        # for a save produced under this manager's own normalisation
        # scheme re-normalising is a no-op (eta == 1 by canonicity).
        # Keep eta anyway: a document written under a *different*
        # scheme (e.g. numeric leftmost vs max-magnitude) re-normalises
        # on load, and dropping the factor would silently rescale every
        # subtree that references this node.
        rebuilt.append(interned)
    root_weight = _weight_from_payload(manager, document["root"]["weight"])
    if document["root"]["node"] < 0:
        return manager.terminal_edge(root_weight)
    return manager.scale(rebuilt[document["root"]["node"]], root_weight)


def dump(manager: DDManager, edge: Edge, path: str) -> None:
    """Serialise to a file."""
    with open(path, "w") as handle:
        handle.write(dumps(manager, edge))


def load(manager: DDManager, path: str) -> Edge:
    """Deserialise from a file."""
    with open(path) as handle:
        return loads(manager, handle.read())
