r"""Node lifecycle and memory management for the QMDD engine.

The unique tables hash-cons every node ever built, so a long simulation
accumulates the interned remains of every intermediate state and the
engine's footprint is bounded by *history*, not by the live DD size.
This module converts the engine to steady-state memory:

* **Reference counts.**  Every :class:`~repro.dd.edge.Node` carries a
  ``ref`` slot maintained by the unique table: one count per parent
  edge slot (incremented when a parent node is interned, decremented
  when the parent is swept) plus one count per externally registered
  root.  Counts saturate at :data:`~repro.dd.edge.REF_SATURATION` --
  widely shared terminal-adjacent nodes stop counting and are treated
  as immortal by the *counters*, never by the collector.

* **Mark and sweep.**  :meth:`MemoryManager.collect` walks the
  registered roots and pins, marks the reachable closure, sweeps
  unmarked nodes out of both unique tables (maintaining child
  refcounts), invalidates every operation compute table and the
  algebraic weight-arithmetic memos (their entries may reference swept
  nodes or swept weights), and finally garbage-collects the weight
  interning tables themselves.  Liveness comes from reachability, so
  refcount saturation can never leak nodes.

* **Weight GC without id reuse.**  Swept weight-table slots are
  *tombstoned*, never reused: unique- and compute-table keys embed
  weight ids, so a recycled id could alias two different weights and
  resurrect the very shadow-node bugs hash-consing exists to prevent.
  The numeric tolerance table (``eps > 0``) is never swept at all --
  every stored entry is an identification anchor and dropping one
  would change which values later lookups snap to.

* **Trigger policy.**  :meth:`MemoryManager.maybe_collect` runs the
  collector when the resident node count crosses a threshold; a
  collection that frees less than ``min_yield`` of the table grows the
  threshold (the classic grow-on-low-yield heuristic -- if everything
  is live, collecting more often only burns time).  An optional
  :class:`MemoryBudget` turns the soft policy into a hard limit:
  exceeding it triggers a collection, and if the *live* state still
  does not fit, a typed :class:`~repro.errors.MemoryBudgetExceeded`
  is raised instead of thrashing.

Observability: collections run under a ``dd.gc`` span and feed the
``dd.gc.*`` instruments (see ``docs/OBSERVABILITY.md``).  The sanitizer
audits the stored refcounts against a full reachability recount via
:meth:`MemoryManager.audit`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.dd.edge import REF_SATURATION, Edge, Node
from repro.errors import DDError, MemoryBudgetExceeded

if TYPE_CHECKING:
    from repro.dd.manager import DDManager
    from repro.dd.sanitizer import SanitizerViolation

__all__ = [
    "GC_SECONDS_BUCKETS",
    "GcStats",
    "MemoryBudget",
    "MemoryConfig",
    "MemoryManager",
]

#: Bucket layout of the ``dd.gc.seconds`` histogram (seconds; a pass
#: over a few thousand nodes lands in the sub-millisecond buckets).
GC_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)

# Approximate CPython footprints used by the byte budget: a slotted
# Node plus its unique-table key and dict slot, one slotted Edge, and
# one interned weight (entry object plus two dict slots).  Ballpark
# figures -- the budget is explicitly "approximate bytes".
_NODE_BYTES = 160
_EDGE_BYTES = 56
_WEIGHT_BYTES = 120


class MemoryBudget:
    """A hard ceiling on resident DD state.

    ``max_nodes`` bounds the summed size of both unique tables;
    ``max_bytes`` bounds the approximate byte footprint (nodes, edges
    and interned weights at CPython ballpark sizes).  Crossing either
    limit triggers a collection; if the live state still exceeds the
    budget afterwards, :class:`~repro.errors.MemoryBudgetExceeded` is
    raised -- a typed failure instead of GC thrash.
    """

    __slots__ = ("max_nodes", "max_bytes")

    def __init__(
        self, max_nodes: Optional[int] = None, max_bytes: Optional[int] = None
    ) -> None:
        if max_nodes is None and max_bytes is None:
            raise ValueError("a MemoryBudget needs max_nodes and/or max_bytes")
        if max_nodes is not None and max_nodes < 1:
            raise ValueError("max_nodes must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_nodes = max_nodes
        self.max_bytes = max_bytes

    def __repr__(self) -> str:
        return f"MemoryBudget(max_nodes={self.max_nodes}, max_bytes={self.max_bytes})"


class MemoryConfig:
    """Trigger policy of the garbage collector.

    Parameters
    ----------
    enabled:
        Whether :meth:`MemoryManager.maybe_collect` collects at all.
        Explicit :meth:`MemoryManager.collect` calls (and ``prune``)
        work regardless.
    threshold:
        Resident node count (both unique tables) above which
        ``maybe_collect`` runs the collector.
    growth_factor / min_yield / max_threshold:
        Grow-on-low-yield heuristic: when a threshold-triggered
        collection frees less than ``min_yield`` of the table, the
        threshold is multiplied by ``growth_factor`` (clamped to
        ``max_threshold``) -- mostly-live tables should be collected
        less often, not thrashed.
    sweep_weights:
        Whether collections also GC the weight tables (tombstoning;
        see the module docstring).  On by default.
    budget:
        Optional hard :class:`MemoryBudget` enforced after the soft
        policy.
    """

    __slots__ = (
        "enabled",
        "threshold",
        "growth_factor",
        "min_yield",
        "max_threshold",
        "sweep_weights",
        "budget",
    )

    def __init__(
        self,
        enabled: bool = True,
        threshold: int = 100_000,
        growth_factor: float = 2.0,
        min_yield: float = 0.25,
        max_threshold: Optional[int] = None,
        sweep_weights: bool = True,
        budget: Optional[MemoryBudget] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("gc threshold must be positive")
        if growth_factor < 1.0:
            raise ValueError("gc growth_factor must be >= 1")
        if not 0.0 <= min_yield <= 1.0:
            raise ValueError("gc min_yield must be in [0, 1]")
        self.enabled = enabled
        self.threshold = threshold
        self.growth_factor = growth_factor
        self.min_yield = min_yield
        self.max_threshold = max_threshold
        self.sweep_weights = sweep_weights
        self.budget = budget

    @classmethod
    def coerce(
        cls, value: Union["MemoryConfig", MemoryBudget, bool, int, None]
    ) -> "MemoryConfig":
        """Normalise the ``gc=`` / ``memory=`` option shorthands.

        ``None``/``False`` -> disabled, ``True`` -> defaults, an int ->
        enabled with that node threshold, a :class:`MemoryBudget` ->
        enabled with that budget, a :class:`MemoryConfig` -> itself.
        """
        if value is None or value is False:
            return cls(enabled=False)
        if value is True:
            return cls()
        if isinstance(value, MemoryConfig):
            return value
        if isinstance(value, MemoryBudget):
            return cls(budget=value)
        if isinstance(value, int):
            return cls(threshold=value)
        raise TypeError(f"cannot build a MemoryConfig from {value!r}")


class GcStats:
    """Outcome of one :meth:`MemoryManager.collect` pass."""

    __slots__ = (
        "trigger",
        "before_nodes",
        "after_nodes",
        "swept_vector",
        "swept_matrix",
        "swept_weights",
        "invalidated_entries",
        "seconds",
        "threshold_after",
    )

    def __init__(
        self,
        trigger: str,
        before_nodes: int,
        after_nodes: int,
        swept_vector: int,
        swept_matrix: int,
        swept_weights: int,
        invalidated_entries: int,
        seconds: float,
        threshold_after: int,
    ) -> None:
        self.trigger = trigger
        self.before_nodes = before_nodes
        self.after_nodes = after_nodes
        self.swept_vector = swept_vector
        self.swept_matrix = swept_matrix
        self.swept_weights = swept_weights
        self.invalidated_entries = invalidated_entries
        self.seconds = seconds
        self.threshold_after = threshold_after

    @property
    def swept_nodes(self) -> int:
        return self.swept_vector + self.swept_matrix

    def __repr__(self) -> str:
        return (
            f"GcStats(trigger={self.trigger!r}, nodes {self.before_nodes}"
            f"->{self.after_nodes}, swept_weights={self.swept_weights}, "
            f"seconds={self.seconds:.2e})"
        )


class _RootEntry:
    """One registered external root: the edge plus its registration count."""

    __slots__ = ("edge", "count")

    def __init__(self, edge: Edge, count: int) -> None:
        self.edge = edge
        self.count = count


class MemoryManager:
    """Root registry, mark-and-sweep collector and trigger policy.

    One instance per :class:`~repro.dd.manager.DDManager` (created by
    the manager itself; reach it as ``manager.memory``).  The manager
    also installs this object's consolidated invalidation as the
    unique tables' pruning hook, so legacy ``retain``/``clear`` calls
    can no longer leave compute tables or weight memos referencing
    swept nodes.
    """

    def __init__(
        self,
        manager: "DDManager",
        config: Union[MemoryConfig, MemoryBudget, bool, int, None] = None,
    ) -> None:
        self.manager = manager
        self.config = MemoryConfig.coerce(config)
        self._roots: Dict[int, _RootEntry] = {}
        self._pins: Dict[int, Edge] = {}
        self._threshold = self.config.threshold
        self.collections = 0
        self.swept_nodes_total = 0
        self.swept_weights_total = 0
        self.peak_nodes = 0
        self.last_stats: Optional[GcStats] = None
        registry = manager.telemetry.metrics
        self._collections_counter = registry.counter("dd.gc.collections")
        self._swept_nodes_counter = registry.counter("dd.gc.swept_nodes")
        self._swept_weights_counter = registry.counter("dd.gc.swept_weights")
        self._budget_failures = registry.counter("dd.gc.budget_failures")
        self._threshold_gauge = registry.gauge("dd.gc.threshold")
        self._peak_gauge = registry.gauge("dd.gc.peak_resident_nodes")
        self._seconds_histogram = registry.histogram("dd.gc.seconds", GC_SECONDS_BUCKETS)
        self._threshold_gauge.set(self._threshold)
        registry.register_collector(self._collect_metrics)
        manager._vector_table.set_invalidation_hook(self.invalidate_derived_state)
        manager._matrix_table.set_invalidation_hook(self.invalidate_derived_state)

    # -- configuration ---------------------------------------------------

    def configure(
        self, config: Union[MemoryConfig, MemoryBudget, bool, int, None]
    ) -> None:
        """Replace the trigger policy (``Simulator(gc=...)`` wiring)."""
        self.config = MemoryConfig.coerce(config)
        self._threshold = self.config.threshold
        self._threshold_gauge.set(self._threshold)

    # -- root registry ---------------------------------------------------

    def inc_ref(self, edge: Edge) -> None:
        """Register ``edge`` as an external root (refcount +1).

        Registered roots survive every collection.  Registration
        nests: ``inc_ref`` twice needs ``dec_ref`` twice.  Terminal
        edges need no protection and are ignored.
        """
        node = edge.node
        if node.is_terminal:
            return
        entry = self._roots.get(node.uid)
        if entry is None:
            self._roots[node.uid] = _RootEntry(edge, 1)
        else:
            entry.count += 1
        count = node.ref
        if count < REF_SATURATION:
            node.ref = count + 1

    def dec_ref(self, edge: Edge) -> None:
        """Drop one root registration of ``edge`` (refcount -1)."""
        node = edge.node
        if node.is_terminal:
            return
        entry = self._roots.get(node.uid)
        if entry is None:
            raise DDError(
                f"dec_ref on unregistered root (node uid {node.uid}); "
                "inc_ref/dec_ref must be balanced"
            )
        entry.count -= 1
        if entry.count == 0:
            del self._roots[node.uid]
        count = node.ref
        if 0 < count < REF_SATURATION:
            node.ref = count - 1

    @contextmanager
    def protecting(self, edge: Edge) -> Iterator[Edge]:
        """Scoped root registration: ``with memory.protecting(edge):``.

        Registers ``edge`` on entry and releases it on exit (including
        on exceptions), so ad-hoc callers -- benchmarks, sanitizer
        probes, tests poking at intermediate states -- get balanced
        inc_ref/dec_ref without writing the try/finally themselves.
        """
        self.inc_ref(edge)
        try:
            yield edge
        finally:
            self.dec_ref(edge)

    def pin(self, edge: Edge) -> None:
        """Permanently protect ``edge`` from collection (idempotent).

        For long-lived derived structure whose owner has no natural
        release point -- cached gate DDs, the apply kernels' lazily
        built matrix fallbacks.  Pins mark reachability but do not
        touch refcounts; the sanitizer audit accounts for them
        separately.
        """
        node = edge.node
        if not node.is_terminal:
            self._pins.setdefault(node.uid, edge)

    def roots(self) -> List[Edge]:
        """All currently registered root edges (pins included)."""
        edges = [entry.edge for entry in self._roots.values()]
        edges.extend(self._pins.values())
        return edges

    # -- accounting ------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Resident nodes across both unique tables."""
        manager = self.manager
        return len(manager._vector_table) + len(manager._matrix_table)

    def approx_bytes(self) -> int:
        """Approximate resident byte footprint (nodes, edges, weights)."""
        manager = self.manager
        vector_nodes = len(manager._vector_table)
        matrix_nodes = len(manager._matrix_table)
        weights = 0
        for counters in manager.system.weight_statistics().values():
            weights = int(counters.get("entries", counters.get("size", 0)))
            break  # first table is the interning table; memos are separate
        return (
            vector_nodes * (_NODE_BYTES + 2 * _EDGE_BYTES)
            + matrix_nodes * (_NODE_BYTES + 4 * _EDGE_BYTES)
            + weights * _WEIGHT_BYTES
        )

    # -- collection ------------------------------------------------------

    def invalidate_derived_state(self) -> int:
        """Drop every memo that may reference swept nodes or weights.

        Clears (and generation-stamps) the manager's five operation
        compute tables and the number system's weight-arithmetic memos.
        Installed as the unique tables' pruning hook and called by the
        collector after sweeping.  Returns the number of entries
        dropped.
        """
        manager = self.manager
        dropped = 0
        for table in manager._compute_tables():
            dropped += table.invalidate()
        dropped += manager.system.invalidate_memos()
        return dropped

    def collect(
        self, extra_roots: Iterable[Edge] = (), trigger: str = "explicit"
    ) -> GcStats:
        """One full mark-and-sweep pass.

        Order matters and is part of the contract (see
        ``docs/ALGORITHMS.md``): mark from roots/pins/``extra_roots``,
        sweep both unique tables (child refcounts decremented), then
        invalidate all derived memo state, then sweep the weight
        tables against the live weight-key set collected during
        marking.
        """
        manager = self.manager
        started = time.perf_counter()
        with manager.telemetry.tracer.span("dd.gc", trigger=trigger):
            before = self.node_count
            marked, live_weight_keys = self._mark(extra_roots)
            swept_vector = manager._vector_table.sweep(marked)
            swept_matrix = manager._matrix_table.sweep(marked)
            invalidated = self.invalidate_derived_state()
            swept_weights = 0
            if self.config.sweep_weights:
                swept_weights = manager.system.sweep_weights(live_weight_keys)
        seconds = time.perf_counter() - started
        after = self.node_count
        self.collections += 1
        self.swept_nodes_total += swept_vector + swept_matrix
        self.swept_weights_total += swept_weights
        self._collections_counter.inc()
        self._swept_nodes_counter.inc(swept_vector + swept_matrix)
        self._swept_weights_counter.inc(swept_weights)
        self._seconds_histogram.observe(seconds)
        stats = GcStats(
            trigger=trigger,
            before_nodes=before,
            after_nodes=after,
            swept_vector=swept_vector,
            swept_matrix=swept_matrix,
            swept_weights=swept_weights,
            invalidated_entries=invalidated,
            seconds=seconds,
            threshold_after=self._threshold,
        )
        self.last_stats = stats
        return stats

    def _mark(
        self, extra_roots: Iterable[Edge]
    ) -> Tuple[Set[int], Set[Any]]:
        """Reachable node uids and live weight keys from all roots."""
        system = self.manager.system
        key = system.key
        marked: Set[int] = set()
        live_keys: Set[Any] = set()
        stack: List[Node] = []

        def push_root(edge: Edge) -> None:
            live_keys.add(key(edge.weight))
            node = edge.node
            if not node.is_terminal:
                stack.append(node)

        for entry in self._roots.values():
            push_root(entry.edge)
        for pinned in self._pins.values():
            push_root(pinned)
        for edge in extra_roots:
            push_root(edge)
        while stack:
            node = stack.pop()
            if node.uid in marked:
                continue
            marked.add(node.uid)
            for child in node.edges:
                live_keys.add(key(child.weight))
                if not child.node.is_terminal:
                    stack.append(child.node)
        # Zero/one are structurally load-bearing (shared zero edge,
        # identity fast paths) and gate-signature keys embed weight
        # keys that must survive for kernels to keep hitting their
        # apply-cache namespace.
        live_keys.add(key(system.zero))
        live_keys.add(key(system.one))
        for signature_key in self.manager._gate_signatures:
            live_keys.update(signature_key[0])
        return marked, live_keys

    def maybe_collect(self) -> Optional[GcStats]:
        """Apply the trigger policy; returns stats when a pass ran.

        Raises :class:`~repro.errors.MemoryBudgetExceeded` when a
        budget is configured and even a collection cannot satisfy it.
        """
        nodes = self.node_count
        if nodes > self.peak_nodes:
            # peak_nodes is a monotone high-water mark: it records that
            # the resident set *did* reach this size, so it stays
            # truthful even if the budget check below raises.
            self.peak_nodes = nodes  # repro-lint: allow[RL013]
            self._peak_gauge.set_max(nodes)
        config = self.config
        stats: Optional[GcStats] = None
        grown: Optional[int] = None
        if config.enabled and nodes >= self._threshold:
            stats = self.collect(trigger="threshold")
            if stats.swept_nodes < config.min_yield * max(1, stats.before_nodes):
                grown = int(self._threshold * config.growth_factor)
                if config.max_threshold is not None:
                    grown = min(grown, config.max_threshold)
        if config.budget is not None:
            stats = self._enforce_budget(stats)
        # The threshold grows only after the budget check has passed: a
        # raised MemoryBudgetExceeded must not strand a larger trigger
        # point that would delay every subsequent collection.
        if grown is not None and grown > self._threshold:
            self._threshold = grown
            self._threshold_gauge.set(grown)
        return stats

    def _enforce_budget(self, already: Optional[GcStats]) -> Optional[GcStats]:
        budget = self.config.budget
        assert budget is not None
        if not self._over_budget(budget):
            return already
        stats = already if already is not None else self.collect(trigger="budget")
        if self._over_budget(budget):
            nodes = self.node_count
            approx = self.approx_bytes() if budget.max_bytes is not None else None
            self._budget_failures.inc()
            raise MemoryBudgetExceeded(
                f"live DD state ({nodes} nodes"
                + (f", ~{approx} bytes" if approx is not None else "")
                + f") exceeds the memory budget {budget!r} even after garbage "
                "collection",
                nodes=nodes,
                approx_bytes=approx,
                max_nodes=budget.max_nodes,
                max_bytes=budget.max_bytes,
            )
        return stats

    def _over_budget(self, budget: MemoryBudget) -> bool:
        if budget.max_nodes is not None and self.node_count > budget.max_nodes:
            return True
        if budget.max_bytes is not None and self.approx_bytes() > budget.max_bytes:
            return True
        return False

    # -- audit (sanitizer hook) ------------------------------------------

    def audit(self) -> List["SanitizerViolation"]:
        """Check stored refcounts against a full reachability recount.

        For every resident node the expected count is its structural
        in-degree over both unique tables (one per parent edge slot)
        plus its root-registration count; saturated counters are exempt
        (saturation is a deliberate loss of precision).  Registered
        roots and pins must still be resident.  Returns the violations
        (code ``refcount``) instead of raising, so the sanitizer can
        merge them into its report.
        """
        from repro.dd.sanitizer import SanitizerViolation

        manager = self.manager
        expected: Dict[int, int] = {}
        resident: Dict[int, Node] = {}
        for table in (manager._vector_table, manager._matrix_table):
            for node in table.nodes():
                resident[node.uid] = node
                for child in node.edges:
                    child_node = child.node
                    if not child_node.is_terminal:
                        expected[child_node.uid] = expected.get(child_node.uid, 0) + 1
        for uid, entry in self._roots.items():
            expected[uid] = expected.get(uid, 0) + entry.count
        violations: List[SanitizerViolation] = []
        for uid, node in resident.items():
            stored = node.ref
            if stored >= REF_SATURATION:
                continue
            wanted = expected.get(uid, 0)
            if stored != wanted:
                violations.append(
                    SanitizerViolation(
                        "refcount",
                        f"stored refcount {stored} != reachability recount {wanted}",
                        None,
                        uid,
                    )
                )
        for uid in self._roots:
            if uid not in resident:
                violations.append(
                    SanitizerViolation(
                        "refcount",
                        "registered root is no longer resident in any unique table",
                        None,
                        uid,
                    )
                )
        for uid in self._pins:
            if uid not in resident:
                violations.append(
                    SanitizerViolation(
                        "refcount",
                        "pinned edge was swept from the unique tables",
                        None,
                        uid,
                    )
                )
        return violations

    # -- observability ---------------------------------------------------

    def _collect_metrics(self) -> Dict[str, float]:
        return {
            "dd.gc.resident_nodes": float(self.node_count),
            "dd.gc.registered_roots": float(len(self._roots)),
            "dd.gc.pinned_roots": float(len(self._pins)),
        }

    def statistics(self) -> Dict[str, Any]:
        """Scalar summary for reports and the ``gc`` CLI subcommand."""
        return {
            "enabled": self.config.enabled,
            "collections": self.collections,
            "swept_nodes": self.swept_nodes_total,
            "swept_weights": self.swept_weights_total,
            "threshold": self._threshold,
            "resident_nodes": self.node_count,
            "peak_resident_nodes": self.peak_nodes,
            "registered_roots": len(self._roots),
            "pinned_roots": len(self._pins),
        }
