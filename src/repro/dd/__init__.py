"""QMDD decision diagrams, generic over the edge-weight number system.

Public surface:

* :class:`~repro.dd.manager.DDManager` plus the factory helpers
  :func:`~repro.dd.manager.numeric_manager`,
  :func:`~repro.dd.manager.algebraic_manager` (Q[omega], Algorithm 2) and
  :func:`~repro.dd.manager.algebraic_gcd_manager` (D[omega] GCDs,
  Algorithm 3);
* :func:`~repro.dd.gatebuild.build_gate_dd` for linear-size controlled
  gate construction;
* :func:`~repro.dd.apply.apply_gate` for direct (matrix-free) gate
  application to a state vector DD;
* :func:`~repro.dd.metrics.collect_metrics` for the paper's size /
  bit-width measurements and :func:`~repro.dd.dot.to_dot` for rendering;
* :class:`~repro.dd.sanitizer.Sanitizer` /
  :func:`~repro.dd.sanitizer.sanitize_dd` for runtime verification of
  the canonical-form invariants;
* :class:`~repro.dd.mem.MemoryManager` (every manager owns one as
  ``manager.memory``) with :class:`~repro.dd.mem.MemoryConfig` /
  :class:`~repro.dd.mem.MemoryBudget` for refcounted roots,
  mark-and-sweep garbage collection and hard memory budgets.
"""

from repro.dd.apply import apply_gate, prepare_gate
from repro.dd.edge import Edge, Node, TERMINAL, iter_nodes
from repro.dd.gatebuild import build_diagonal_dd, build_gate_dd
from repro.dd.manager import (
    DDManager,
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.dd.mem import GcStats, MemoryBudget, MemoryConfig, MemoryManager
from repro.dd.metrics import DDMetrics, collect_metrics, count_trivial_weights
from repro.dd.dot import to_dot
from repro.dd.serialize import dump, dumps, load, loads
from repro.dd.number_system import (
    AlgebraicGcdSystem,
    AlgebraicQOmegaSystem,
    NumberSystem,
    NumericSystem,
)
from repro.dd.sanitizer import (
    Sanitizer,
    SanitizerMode,
    SanitizerReport,
    SanitizerViolation,
    sanitize_dd,
)

__all__ = [
    "AlgebraicGcdSystem",
    "AlgebraicQOmegaSystem",
    "DDManager",
    "DDMetrics",
    "Edge",
    "GcStats",
    "MemoryBudget",
    "MemoryConfig",
    "MemoryManager",
    "Node",
    "NumberSystem",
    "NumericSystem",
    "Sanitizer",
    "SanitizerMode",
    "SanitizerReport",
    "SanitizerViolation",
    "TERMINAL",
    "algebraic_gcd_manager",
    "algebraic_manager",
    "apply_gate",
    "build_diagonal_dd",
    "build_gate_dd",
    "collect_metrics",
    "count_trivial_weights",
    "dump",
    "dumps",
    "iter_nodes",
    "load",
    "loads",
    "numeric_manager",
    "prepare_gate",
    "sanitize_dd",
    "to_dot",
]
