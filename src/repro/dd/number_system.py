r"""Edge-weight number systems for QMDDs.

The decision-diagram engine (:mod:`repro.dd.manager`) is generic over a
*number system* -- the object that owns edge weights and defines

* the arithmetic (``add``, ``mul``) used by the DD operations,
* canonical hashable *keys* for the unique and compute tables, and
* the edge-weight *normalisation* rule applied to every freshly built
  node (this is where the paper's Algorithms 2 and 3 live).

Three families are provided:

:class:`NumericSystem`
    The state of the art the paper critiques (Section III): IEEE-754
    complex doubles interned through a tolerance table
    (:class:`~repro.numeric.complex_table.ComplexTable`) with
    configurable ``eps``.  Normalisation divides by the leftmost
    non-zero weight (default) or by the largest-magnitude weight
    (variant of [29], more numerically stable).

:class:`AlgebraicQOmegaSystem`
    The paper's first proposed scheme: exact weights in the field
    ``Q[omega]``; normalisation per **Algorithm 2** divides all outgoing
    weights by the leftmost non-zero one using exact field inverses.

:class:`AlgebraicGcdSystem`
    The paper's second scheme: exact weights in the ring ``D[omega]``;
    normalisation per **Algorithm 3** factors out a greatest common
    divisor, unit-adjusted so the leftmost non-zero weight becomes the
    canonical associate (properties (a)-(c) of Section IV-B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence, Tuple

from repro.errors import DDError
from repro.numeric.complex_table import ComplexEntry, ComplexTable
from repro.rings.domega import DOmega
from repro.rings.qomega import QOmega

__all__ = [
    "NumberSystem",
    "NumericSystem",
    "AlgebraicQOmegaSystem",
    "AlgebraicGcdSystem",
]


class NumberSystem(ABC):
    """Strategy interface for QMDD edge weights."""

    #: Short identifier used in reports ("numeric", "algebraic-q", ...).
    name: str = "abstract"

    #: Whether arbitrary (non-Clifford+T) complex values can be
    #: represented.  False for the exact systems: they raise on values
    #: outside D[omega] (such gates must first be Clifford+T approximated,
    #: see :mod:`repro.approx`).
    supports_arbitrary_complex: bool = False

    # -- constants ------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> Any: ...

    @property
    @abstractmethod
    def one(self) -> Any: ...

    # -- arithmetic -------------------------------------------------------

    @abstractmethod
    def add(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def mul(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def neg(self, value: Any) -> Any: ...

    @abstractmethod
    def conj(self, value: Any) -> Any:
        """Complex conjugation (needed for adjoints and inner products)."""

    # -- predicates and keys ------------------------------------------------

    @abstractmethod
    def is_zero(self, value: Any) -> bool: ...

    @abstractmethod
    def is_one(self, value: Any) -> bool: ...

    @abstractmethod
    def key(self, value: Any) -> Any:
        """A canonical hashable key (equal keys <=> identified values)."""

    # -- conversions -----------------------------------------------------------

    @abstractmethod
    def from_domega(self, value: DOmega) -> Any:
        """Import an exact Clifford+T amplitude (always possible)."""

    @abstractmethod
    def from_complex(self, value: complex) -> Any:
        """Import an arbitrary complex value (exact systems raise)."""

    @abstractmethod
    def to_complex(self, value: Any) -> complex:
        """Export for display / accuracy metrics."""

    # -- normalisation ----------------------------------------------------------

    @abstractmethod
    def normalize(self, weights: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        """Normalise a node's outgoing weights.

        Returns ``(eta, normalized)`` with
        ``weights[i] == eta * normalized[i]`` for all ``i`` and at least
        one weight non-zero on input.  The normalised tuple must be
        canonical: any two weight tuples describing the same node up to
        a scalar factor normalise to identical tuples.
        """

    # -- optional metrics ----------------------------------------------------------

    def bit_width(self, value: Any) -> int:
        """Largest integer bit-width in the representation (0 if N/A)."""
        return 0

    def division_helper(self, numerator: Any, denominator: Any) -> Optional[Any]:
        """``numerator / denominator`` if cheap and exact, else ``None``.

        Used by the addition compute-table to factor out a common weight
        for better cache locality; systems where division can leave the
        ring return ``None`` and the cache falls back to explicit keys.
        """
        return None


# ---------------------------------------------------------------------------
# Numerical system (state of the art, Section III)
# ---------------------------------------------------------------------------


class NumericSystem(NumberSystem):
    """Floating-point weights with tolerance ``eps``.

    Parameters
    ----------
    eps:
        The identification tolerance (paper Section III); ``0`` for
        bit-exact comparison.
    normalization:
        ``"leftmost"`` divides by the leftmost non-zero weight (the
        original QMDD rule); ``"max-magnitude"`` divides by the (leftmost
        of the) largest-magnitude weights, keeping all weights at
        absolute value <= 1 for better numerical stability [29].
    """

    supports_arbitrary_complex = True

    def __init__(
        self,
        eps: float = 0.0,
        normalization: str = "leftmost",
        precision: str = "double",
    ) -> None:
        if normalization not in ("leftmost", "max-magnitude"):
            raise ValueError(f"unknown normalization scheme {normalization!r}")
        self.table = ComplexTable(eps=eps, precision=precision)
        self.eps = self.table.eps
        self.normalization = normalization
        self.precision = precision
        suffix = ", single" if precision == "single" else ""
        self.name = f"numeric(eps={eps:g}{suffix})"

    # -- constants ------------------------------------------------------

    @property
    def zero(self) -> ComplexEntry:
        return self.table.zero

    @property
    def one(self) -> ComplexEntry:
        return self.table.one

    # -- arithmetic -------------------------------------------------------

    def add(self, left: ComplexEntry, right: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(left.value + right.value)

    def mul(self, left: ComplexEntry, right: ComplexEntry) -> ComplexEntry:
        if left is self.table.zero or right is self.table.zero:
            return self.table.zero
        if left is self.table.one:
            return right
        if right is self.table.one:
            return left
        return self.table.lookup(left.value * right.value)

    def neg(self, value: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(-value.value)

    def conj(self, value: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(value.value.conjugate())

    # -- predicates ----------------------------------------------------------

    def is_zero(self, value: ComplexEntry) -> bool:
        return value is self.table.zero

    def is_one(self, value: ComplexEntry) -> bool:
        return value is self.table.one

    def key(self, value: ComplexEntry) -> int:
        return value.index

    # -- conversions -------------------------------------------------------------

    def from_domega(self, value: DOmega) -> ComplexEntry:
        return self.table.lookup(value.to_complex())

    def from_complex(self, value: complex) -> ComplexEntry:
        return self.table.lookup(value)

    def to_complex(self, value: ComplexEntry) -> complex:
        return value.value

    # -- normalisation ---------------------------------------------------------------

    def normalize(self, weights: Tuple[ComplexEntry, ...]) -> Tuple[ComplexEntry, Tuple[ComplexEntry, ...]]:
        pivot_index = self._pivot(weights)
        eta = weights[pivot_index]
        normalized = []
        for index, weight in enumerate(weights):
            if weight is self.table.zero:
                normalized.append(self.table.zero)
            elif index == pivot_index:
                normalized.append(self.table.one)
            else:
                normalized.append(self.table.lookup(weight.value / eta.value))
        return (eta, tuple(normalized))

    def _pivot(self, weights: Sequence[ComplexEntry]) -> int:
        if self.normalization == "leftmost":
            for index, weight in enumerate(weights):
                if weight is not self.table.zero:
                    return index
            raise DDError("normalize called on all-zero weights")
        best_index, best_magnitude = -1, -1.0
        for index, weight in enumerate(weights):
            if weight is self.table.zero:
                continue
            magnitude = abs(weight.value)
            if magnitude > best_magnitude + 1e-18:
                best_index, best_magnitude = index, magnitude
        if best_index < 0:
            raise DDError("normalize called on all-zero weights")
        return best_index

    def division_helper(self, numerator: ComplexEntry, denominator: ComplexEntry) -> Optional[ComplexEntry]:
        if denominator is self.table.zero:
            return None
        return self.table.lookup(numerator.value / denominator.value)


# ---------------------------------------------------------------------------
# Algebraic system with Q[omega] inverses (paper Algorithm 2)
# ---------------------------------------------------------------------------


class AlgebraicQOmegaSystem(NumberSystem):
    """Exact weights in the cyclotomic field ``Q[omega]``.

    Normalisation implements the paper's **Algorithm 2**: divide every
    outgoing weight by the leftmost non-zero weight (exact field
    inverse), so the leftmost non-zero normalised weight is exactly 1.
    At least half of all edge weights become trivial this way, which the
    paper identifies as the reason this scheme outperforms the GCD
    scheme (Section V-B).
    """

    name = "algebraic-q"
    supports_arbitrary_complex = False

    _ZERO = QOmega.zero()
    _ONE = QOmega.one()

    @property
    def zero(self) -> QOmega:
        return self._ZERO

    @property
    def one(self) -> QOmega:
        return self._ONE

    def add(self, left: QOmega, right: QOmega) -> QOmega:
        return left + right

    def mul(self, left: QOmega, right: QOmega) -> QOmega:
        if left.is_zero() or right.is_zero():
            return self._ZERO
        if left.is_one():
            return right
        if right.is_one():
            return left
        return left * right

    def neg(self, value: QOmega) -> QOmega:
        return -value

    def conj(self, value: QOmega) -> QOmega:
        return value.conj()

    def is_zero(self, value: QOmega) -> bool:
        return value.is_zero()

    def is_one(self, value: QOmega) -> bool:
        return value.is_one()

    def key(self, value: QOmega) -> Tuple[int, ...]:
        return value.key()

    def from_domega(self, value: DOmega) -> QOmega:
        return QOmega.from_domega(value)

    def from_complex(self, value: complex) -> QOmega:
        raise DDError(
            "the algebraic representation cannot import arbitrary complex "
            "values; approximate the gate with Clifford+T first (repro.approx)"
        )

    def to_complex(self, value: QOmega) -> complex:
        return value.to_complex()

    def normalize(self, weights: Tuple[QOmega, ...]) -> Tuple[QOmega, Tuple[QOmega, ...]]:
        pivot_index = -1
        for index, weight in enumerate(weights):
            if not weight.is_zero():
                pivot_index = index
                break
        if pivot_index < 0:
            raise DDError("normalize called on all-zero weights")
        eta = weights[pivot_index]
        inverse = eta.inverse()
        normalized = []
        for index, weight in enumerate(weights):
            if weight.is_zero():
                normalized.append(self._ZERO)
            elif index == pivot_index:
                normalized.append(self._ONE)
            else:
                normalized.append(weight * inverse)
        return (eta, tuple(normalized))

    def bit_width(self, value: QOmega) -> int:
        return value.max_bit_width()

    def division_helper(self, numerator: QOmega, denominator: QOmega) -> Optional[QOmega]:
        if denominator.is_zero():
            return None
        return numerator * denominator.inverse()


# ---------------------------------------------------------------------------
# Algebraic system with D[omega] GCDs (paper Algorithm 3)
# ---------------------------------------------------------------------------


class AlgebraicGcdSystem(NumberSystem):
    """Exact weights in the ring ``D[omega]`` with GCD normalisation.

    Normalisation implements the paper's **Algorithm 3**: the
    normalisation factor is a greatest common divisor of the outgoing
    weights, unit-adjusted so the leftmost non-zero weight becomes the
    canonical associate satisfying properties (a)-(c) of Section IV-B.
    All weights stay inside ``D[omega]`` (no odd denominators), at the
    price that few weights become trivial -- the overhead the paper
    measures in Section V-B.
    """

    name = "algebraic-gcd"
    supports_arbitrary_complex = False

    _ZERO = DOmega.zero()
    _ONE = DOmega.one()

    @property
    def zero(self) -> DOmega:
        return self._ZERO

    @property
    def one(self) -> DOmega:
        return self._ONE

    def add(self, left: DOmega, right: DOmega) -> DOmega:
        return left + right

    def mul(self, left: DOmega, right: DOmega) -> DOmega:
        if left.is_zero() or right.is_zero():
            return self._ZERO
        if left.is_one():
            return right
        if right.is_one():
            return left
        return left * right

    def neg(self, value: DOmega) -> DOmega:
        return -value

    def conj(self, value: DOmega) -> DOmega:
        return value.conj()

    def is_zero(self, value: DOmega) -> bool:
        return value.is_zero()

    def is_one(self, value: DOmega) -> bool:
        return value.is_one()

    def key(self, value: DOmega) -> Tuple[int, ...]:
        return value.key()

    def from_domega(self, value: DOmega) -> DOmega:
        return value

    def from_complex(self, value: complex) -> DOmega:
        raise DDError(
            "the algebraic representation cannot import arbitrary complex "
            "values; approximate the gate with Clifford+T first (repro.approx)"
        )

    def to_complex(self, value: DOmega) -> complex:
        return value.to_complex()

    def normalize(self, weights: Tuple[DOmega, ...]) -> Tuple[DOmega, Tuple[DOmega, ...]]:
        nonzero = [weight for weight in weights if not weight.is_zero()]
        if not nonzero:
            raise DDError("normalize called on all-zero weights")
        divisor = DOmega.gcd(nonzero)
        pivot = next(weight for weight in weights if not weight.is_zero())
        # Algorithm 3 lines 5-10: adjust the GCD by a unit so the leftmost
        # non-zero weight becomes its canonical associate.
        pivot_quotient = pivot.exact_divide(divisor)
        canonical, unit = pivot_quotient.canonical_associate()
        eta = divisor * unit
        unit_inverse = unit.unit_inverse()
        normalized = []
        for weight in weights:
            if weight.is_zero():
                normalized.append(self._ZERO)
            else:
                normalized.append(weight.exact_divide(divisor) * unit_inverse)
        return (eta, tuple(normalized))

    def bit_width(self, value: DOmega) -> int:
        return value.max_bit_width()
