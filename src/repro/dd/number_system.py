r"""Edge-weight number systems for QMDDs.

The decision-diagram engine (:mod:`repro.dd.manager`) is generic over a
*number system* -- the object that owns edge weights and defines

* the arithmetic (``add``, ``mul``) used by the DD operations,
* canonical hashable *keys* for the unique and compute tables, and
* the edge-weight *normalisation* rule applied to every freshly built
  node (this is where the paper's Algorithms 2 and 3 live).

Three families are provided:

:class:`NumericSystem`
    The state of the art the paper critiques (Section III): IEEE-754
    complex doubles interned through a tolerance table
    (:class:`~repro.numeric.complex_table.ComplexTable`) with
    configurable ``eps``.  Normalisation divides by the leftmost
    non-zero weight (default) or by the largest-magnitude weight
    (variant of [29], more numerically stable).

:class:`AlgebraicQOmegaSystem`
    The paper's first proposed scheme: exact weights in the field
    ``Q[omega]``; normalisation per **Algorithm 2** divides all outgoing
    weights by the leftmost non-zero one using exact field inverses.

:class:`AlgebraicGcdSystem`
    The paper's second scheme: exact weights in the ring ``D[omega]``;
    normalisation per **Algorithm 3** factors out a greatest common
    divisor, unit-adjusted so the leftmost non-zero weight becomes the
    canonical associate (properties (a)-(c) of Section IV-B).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from math import gcd as _int_gcd
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dd.unique_table import ComputeTable
from repro.errors import DDError, InexactDivisionError
from repro.numeric.complex_table import ComplexEntry, ComplexTable
from repro.rings.domega import DOmega
from repro.rings.qomega import QOmega

__all__ = [
    "NumberSystem",
    "NumericSystem",
    "AlgebraicQOmegaSystem",
    "AlgebraicGcdSystem",
    "WeightTable",
]


class WeightTable:
    """Hash-cons table interning exact ring values to dense int ids.

    The numerical system already interns weights through
    :class:`~repro.numeric.complex_table.ComplexTable`; this is the
    algebraic counterpart (arXiv:1911.12691's lookup-table idea applied
    to exact ring elements).  Interning buys two things:

    * ``NumberSystem.key`` becomes a small ``int`` instead of a tuple of
      big integers, so unique- and compute-table keys hash cheaply;
    * arithmetic over interned ids can be memoised (see the
      ``weight_*`` compute tables of the algebraic systems).

    Canonical instances are kept alive in ``_values``, so the
    identity-keyed fast path (``id(value)``) can never observe a recycled
    object id for a registered value.  The garbage collector may
    :meth:`sweep` unreferenced entries: swept slots are *tombstoned*
    (set to ``None``), never reused -- ids stay append-only monotonic,
    because unique- and compute-table keys embed them and a recycled id
    could alias two different weights.
    """

    __slots__ = (
        "_by_key",
        "_by_identity",
        "_values",
        "_width_of",
        "hits",
        "misses",
        "swept",
        "max_bit_width",
    )

    def __init__(self, width_of: Optional[Callable[[Any], int]] = None) -> None:
        self._by_key: Dict[Tuple, int] = {}
        self._by_identity: Dict[int, int] = {}
        self._values: List[Optional[Any]] = []
        #: Optional bit-width probe run once per *fresh* value (the cold
        #: insert path), feeding the ``rings.<ring>.bit_width`` gauge of
        #: :mod:`repro.obs` without touching interned-value arithmetic.
        self._width_of = width_of
        self.hits = 0
        self.misses = 0
        self.swept = 0
        self.max_bit_width = 0

    def __len__(self) -> int:
        """The id space size (tombstones included; ids never shrink)."""
        return len(self._values)

    def intern_id(self, value: Any) -> int:
        """The dense id of ``value``, interning it on first sight.

        Note on counters: the number systems bind ``_by_identity.get``
        directly for their identity fast path, so ``hits``/``misses``
        describe the *fallback* probes that reach this method -- i.e.
        values seen through a fresh Python object.
        """
        eid = self._by_identity.get(id(value))
        if eid is not None:
            self.hits += 1
            return eid
        key = value.key()
        eid = self._by_key.get(key)
        if eid is None:
            self.misses += 1
            eid = len(self._values)
            self._values.append(value)
            self._by_key[key] = eid
            self._by_identity[id(value)] = eid
            if self._width_of is not None:
                width = self._width_of(value)
                if width > self.max_bit_width:
                    self.max_bit_width = width
        else:
            self.hits += 1
        return eid

    def intern(self, value: Any) -> Any:
        """The canonical instance equal to ``value``."""
        return self._values[self.intern_id(value)]

    def value(self, eid: int) -> Any:
        value = self._values[eid]
        if value is None:
            raise DDError(
                f"weight id {eid} was swept by the garbage collector "
                "(stale id escaped a memo invalidation)"
            )
        return value

    def sweep(self, live_ids: "set[int]") -> int:
        """Tombstone every interned value whose id is not in ``live_ids``.

        Swept slots are set to ``None`` and removed from both lookup
        indexes; the id is never reused (see the class docstring).  A
        previously swept *value* re-interns later under a fresh id.
        Returns the number of entries swept.
        """
        swept = 0
        values = self._values
        by_key = self._by_key
        by_identity = self._by_identity
        for eid, value in enumerate(values):
            if value is None or eid in live_ids:
                continue
            by_key.pop(value.key(), None)
            by_identity.pop(id(value), None)
            values[eid] = None
            swept += 1
        self.swept += swept
        return swept

    def lookup_key(self, key: Tuple) -> Optional[int]:
        """The id registered for a canonical ring key, or ``None``.

        Sanitizer hook: unlike :meth:`intern_id` this never inserts, so
        probing whether a weight is a registered canonical instance has
        no side effect that would mask the violation on a later probe.
        """
        return self._by_key.get(key)

    def statistics(self) -> Dict[str, int]:
        # Uniform engine-table schema (see repro.obs): every miss
        # inserts, so inserts == misses; the garbage collector's sweeps
        # are the only form of eviction (live canonical instances still
        # never leave -- the identity fast path depends on that).
        live = len(self._values) - self.swept
        return {
            "size": live,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.misses,
            "evictions": self.swept,
            "swept": self.swept,
            "entries": live,
            "max_bit_width": self.max_bit_width,
        }


class NumberSystem(ABC):
    """Strategy interface for QMDD edge weights."""

    #: Short identifier used in reports ("numeric", "algebraic-q", ...).
    name: str = "abstract"

    #: Whether arbitrary (non-Clifford+T) complex values can be
    #: represented.  False for the exact systems: they raise on values
    #: outside D[omega] (such gates must first be Clifford+T approximated,
    #: see :mod:`repro.approx`).
    supports_arbitrary_complex: bool = False

    # -- constants ------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> Any: ...

    @property
    @abstractmethod
    def one(self) -> Any: ...

    # -- arithmetic -------------------------------------------------------

    @abstractmethod
    def add(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def mul(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def neg(self, value: Any) -> Any: ...

    @abstractmethod
    def conj(self, value: Any) -> Any:
        """Complex conjugation (needed for adjoints and inner products)."""

    # -- predicates and keys ------------------------------------------------

    @abstractmethod
    def is_zero(self, value: Any) -> bool: ...

    @abstractmethod
    def is_one(self, value: Any) -> bool: ...

    @abstractmethod
    def key(self, value: Any) -> Any:
        """A canonical hashable key (equal keys <=> identified values)."""

    # -- conversions -----------------------------------------------------------

    @abstractmethod
    def from_domega(self, value: DOmega) -> Any:
        """Import an exact Clifford+T amplitude (always possible)."""

    @abstractmethod
    def from_complex(self, value: complex) -> Any:
        """Import an arbitrary complex value (exact systems raise)."""

    @abstractmethod
    def to_complex(self, value: Any) -> complex:
        """Export for display / accuracy metrics."""

    # -- normalisation ----------------------------------------------------------

    @abstractmethod
    def normalize(self, weights: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        """Normalise a node's outgoing weights.

        Returns ``(eta, normalized)`` with
        ``weights[i] == eta * normalized[i]`` for all ``i`` and at least
        one weight non-zero on input.  The normalised tuple must be
        canonical: any two weight tuples describing the same node up to
        a scalar factor normalise to identical tuples.
        """

    def normalize_keyed(
        self, weights: Tuple[Any, ...]
    ) -> Tuple[Any, Tuple[Any, ...], Tuple[Any, ...]]:
        """:meth:`normalize` plus the keys of the normalised weights.

        The unique table needs both; systems that memoise normalisation
        override this to return the cached keys alongside, saving one
        ``key`` round-trip per weight on the node-construction hot path.
        """
        eta, normalized = self.normalize(weights)
        return eta, normalized, tuple(self.key(weight) for weight in normalized)

    # -- sanitizer hooks ---------------------------------------------------------

    def check_canonical(self, value: Any) -> Optional[str]:
        """Why ``value`` is *not* a canonical weight, or ``None`` if it is.

        The sanitizer calls this on every edge weight of a walked DD.
        A canonical weight is (a) in the representation's normal form
        (Algorithm 1 for the exact systems, the eps-snap residue
        property for the numeric table) and (b) the *registered*
        instance of the system's interning table, so weight keys
        round-trip.  The check must be side-effect free: it must not
        intern the probed value.
        """
        return None

    def value_for_key(self, key: Any) -> Any:
        """The canonical weight registered under a table ``key``.

        Inverse of :meth:`key` for keys that were handed out before;
        used by the sanitizer to replay compute-table entries whose
        keys embed weight keys.  Raises if the key is unknown.
        """
        raise DDError(f"system {self.name!r} cannot resolve weight keys")

    # -- optional metrics ----------------------------------------------------------

    def bit_width(self, value: Any) -> int:
        """Largest integer bit-width in the representation (0 if N/A)."""
        return 0

    def division_helper(self, numerator: Any, denominator: Any) -> Optional[Any]:
        """``numerator / denominator`` if cheap and exact, else ``None``.

        Used by the addition compute-table to factor out a common weight
        for better cache locality; systems where division can leave the
        ring return ``None`` and the cache falls back to explicit keys.
        """
        return None

    def weight_order_key(self, value: Any) -> Optional[Any]:
        """A *value-based* total-order key for weights, or ``None``.

        When this returns a key, the addition compute-table orders its
        operands by ``(weight_order_key, node uid)`` instead of by node
        uid alone.  The distinction only matters for inexact systems:
        the operand order decides which weight the ratio factoring
        divides by, and float division is not direction-symmetric, so a
        uid-based order makes the last bits of numeric results depend
        on node *creation history* -- in particular, on whether the
        garbage collector has re-interned a node under a fresh uid.
        Exact systems return ``None`` (division direction cannot change
        an exact result) and keep the cheaper uid comparison.
        """
        return None

    def weight_statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-system interning/memo counters (empty if not applicable).

        Maps a table name to its counter dict; the manager merges this
        into :meth:`~repro.dd.manager.DDManager.cache_stats`.
        """
        return {}

    # -- garbage-collection hooks -------------------------------------------------

    def invalidate_memos(self) -> int:
        """Drop memoised weight-arithmetic results (GC invalidation hook).

        Called whenever interned nodes or weights may have been swept:
        memo entries embed weight ids/instances, so they must not
        outlive a sweep.  Returns the number of entries dropped.
        """
        return 0

    def sweep_weights(self, live_keys: "set[Any]") -> int:
        """Garbage-collect interned weights not in ``live_keys``.

        ``live_keys`` holds the canonical weight keys (as produced by
        :meth:`key`) that must survive -- every weight referenced by a
        resident node, root edge or gate signature.  Systems whose
        interning table cannot be swept safely return 0.  Callers must
        invalidate memos in the same pass.
        """
        return 0

    def metric_values(self) -> Dict[str, float]:
        """System-specific scalar metrics under their dotted obs names.

        Sampled lazily by the manager's registry collector (see
        :mod:`repro.obs`), so producing these costs nothing per
        operation.  Numeric systems report the eps-identification
        counters; algebraic systems report the interned coefficient
        bit-width high-water mark.
        """
        return {}


# ---------------------------------------------------------------------------
# Numerical system (state of the art, Section III)
# ---------------------------------------------------------------------------


class NumericSystem(NumberSystem):
    """Floating-point weights with tolerance ``eps``.

    Parameters
    ----------
    eps:
        The identification tolerance (paper Section III); ``0`` for
        bit-exact comparison.
    normalization:
        ``"leftmost"`` divides by the leftmost non-zero weight (the
        original QMDD rule); ``"max-magnitude"`` divides by the (leftmost
        of the) largest-magnitude weights, keeping all weights at
        absolute value <= 1 for better numerical stability [29].
    """

    supports_arbitrary_complex = True

    def __init__(
        self,
        eps: float = 0.0,
        normalization: str = "leftmost",
        precision: str = "double",
    ) -> None:
        if normalization not in ("leftmost", "max-magnitude"):
            raise ValueError(f"unknown normalization scheme {normalization!r}")
        self.table = ComplexTable(eps=eps, precision=precision)
        self.eps = self.table.eps
        self.normalization = normalization
        self.precision = precision
        suffix = ", single" if precision == "single" else ""
        self.name = f"numeric(eps={eps:g}{suffix})"

    # -- constants ------------------------------------------------------

    @property
    def zero(self) -> ComplexEntry:
        return self.table.zero

    @property
    def one(self) -> ComplexEntry:
        return self.table.one

    # -- arithmetic -------------------------------------------------------

    def add(self, left: ComplexEntry, right: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(left.value + right.value)

    def mul(self, left: ComplexEntry, right: ComplexEntry) -> ComplexEntry:
        if left is self.table.zero or right is self.table.zero:
            return self.table.zero
        if left is self.table.one:
            return right
        if right is self.table.one:
            return left
        return self.table.lookup(left.value * right.value)

    def neg(self, value: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(-value.value)

    def conj(self, value: ComplexEntry) -> ComplexEntry:
        return self.table.lookup(value.value.conjugate())

    # -- predicates ----------------------------------------------------------

    def is_zero(self, value: ComplexEntry) -> bool:
        return value is self.table.zero

    def is_one(self, value: ComplexEntry) -> bool:
        return value is self.table.one

    def key(self, value: ComplexEntry) -> int:
        return value.index

    # -- conversions -------------------------------------------------------------

    def from_domega(self, value: DOmega) -> ComplexEntry:
        return self.table.lookup(value.to_complex())

    def from_complex(self, value: complex) -> ComplexEntry:
        return self.table.lookup(value)

    def to_complex(self, value: ComplexEntry) -> complex:
        return value.value

    # -- normalisation ---------------------------------------------------------------

    def normalize(self, weights: Tuple[ComplexEntry, ...]) -> Tuple[ComplexEntry, Tuple[ComplexEntry, ...]]:
        pivot_index = self._pivot(weights)
        eta = weights[pivot_index]
        normalized = []
        for index, weight in enumerate(weights):
            if weight is self.table.zero:
                normalized.append(self.table.zero)
            elif index == pivot_index:
                normalized.append(self.table.one)
            else:
                normalized.append(self.table.lookup(weight.value / eta.value))
        return (eta, tuple(normalized))

    def _pivot(self, weights: Sequence[ComplexEntry]) -> int:
        if self.normalization == "leftmost":
            for index, weight in enumerate(weights):
                if weight is not self.table.zero:
                    return index
            raise DDError("normalize called on all-zero weights")
        best_index, best_magnitude = -1, -1.0
        for index, weight in enumerate(weights):
            if weight is self.table.zero:
                continue
            magnitude = abs(weight.value)
            if magnitude > best_magnitude + 1e-18:
                best_index, best_magnitude = index, magnitude
        if best_index < 0:
            raise DDError("normalize called on all-zero weights")
        return best_index

    def division_helper(self, numerator: ComplexEntry, denominator: ComplexEntry) -> Optional[ComplexEntry]:
        if denominator is self.table.zero:
            return None
        return self.table.lookup(numerator.value / denominator.value)

    def weight_order_key(self, value: ComplexEntry) -> Tuple[float, float]:
        # Value-based operand order keeps the add-cache's ratio
        # direction (and with it the last float bits of every result)
        # independent of node uids, which change when the garbage
        # collector re-interns swept structure.
        return (value.value.real, value.value.imag)

    # -- sanitizer hooks ---------------------------------------------------------

    def check_canonical(self, value: ComplexEntry) -> Optional[str]:
        if not isinstance(value, ComplexEntry):
            return f"weight {value!r} is not a ComplexEntry of the tolerance table"
        registered = self.table.entry(value.index)
        if registered is None or registered is not value:
            return (
                f"entry index {value.index} does not round-trip through the "
                "complex table (shadow ComplexEntry instance)"
            )
        # eps-snap residue: a stored value must identify with itself --
        # looking it up again may never create or pick another entry.
        if self.table.lookup(value.value) is not value:
            return (
                f"stored value {value.value!r} no longer snaps onto its own "
                f"entry within eps={self.eps:g}"
            )
        return None

    def value_for_key(self, key: int) -> ComplexEntry:
        entry = self.table.entry(key)
        if entry is None:
            raise DDError(f"unknown complex-table index {key!r}")
        return entry

    def weight_statistics(self) -> Dict[str, Dict[str, int]]:
        return {"weight_table": self.table.statistics()}  # type: ignore[dict-item]

    def metric_values(self) -> Dict[str, float]:
        return {
            "numeric.eps.identifications": float(self.table.identifications),
            "numeric.eps.lookups": float(self.table.lookups),
            "numeric.eps.inserts": float(self.table.inserts),
        }

    # -- garbage-collection hooks -------------------------------------------------

    def sweep_weights(self, live_keys: "set[Any]") -> int:
        # Exact mode (eps == 0) sweeps safely: re-interning a swept
        # value is bit-identical.  The tolerance table refuses (returns
        # 0): its entries are identification anchors (see
        # ComplexTable.sweep_entries).
        return self.table.sweep_entries(live_keys)


# ---------------------------------------------------------------------------
# Shared interned-arithmetic base of the two algebraic systems
# ---------------------------------------------------------------------------


class _InternedAlgebraicSystem(NumberSystem):
    """Common machinery of the exact systems: a :class:`WeightTable`
    hash-consing ring elements into int ids, plus bounded memo tables
    for ``mul``/``add``/``conj``/``normalize`` keyed on those ids.

    The DD hot path produces the same few weight products over and over
    (states mid-simulation carry a small set of distinct weights), so
    memoising the exact big-integer arithmetic turns most ring
    operations into two dict lookups.
    """

    supports_arbitrary_complex = False

    #: Ring tag used in the dotted metric namespace
    #: (``rings.<ring_name>.bit_width``).
    ring_name: str = "ring"

    def __init__(self) -> None:
        # Probe coefficient bit-widths on the cold insert path only, so
        # the ``rings.<ring>.bit_width`` high-water mark costs nothing
        # on interned-value hits.
        self.table = WeightTable(width_of=self._width_of)
        self._zero = self.table.intern(self._raw_zero())
        self._one = self.table.intern(self._raw_one())
        self._mul_memo = ComputeTable("weight_mul", 1 << 17)
        self._add_memo = ComputeTable("weight_add", 1 << 17)
        self._conj_memo = ComputeTable("weight_conj", 1 << 16)
        self._norm_memo = ComputeTable("weight_normalize", 1 << 16)
        self._div_memo = ComputeTable("weight_div", 1 << 16)
        # Bound lookup for the interning fast path: almost every operand
        # on the hot path is already a canonical instance, so a single
        # dict probe replaces the ``intern_id`` call (miss -> full path).
        self._id_of = self.table._by_identity.get
        self._zero_id = self.table.intern_id(self._zero)
        self._one_id = self.table.intern_id(self._one)

    # Subclasses provide the raw ring constants and operations.

    @abstractmethod
    def _raw_zero(self) -> Any: ...

    @abstractmethod
    def _raw_one(self) -> Any: ...

    @abstractmethod
    def _raw_normalize(self, weights: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]: ...

    # -- constants ------------------------------------------------------

    @property
    def zero(self) -> Any:
        return self._zero

    @property
    def one(self) -> Any:
        return self._one

    # -- interning ------------------------------------------------------

    def key(self, value: Any) -> int:
        return self.table.intern_id(value)

    # -- memoised arithmetic --------------------------------------------

    def add(self, left: Any, right: Any) -> Any:
        # Identity-only fast paths: hot-path weights are interned, so the
        # canonical zero/one flow through as singletons.  Raw equal-but-
        # not-identical values still get the right answer from the memo
        # path below (the actual ring addition runs).
        if left is self._zero:
            return right
        if right is self._zero:
            return left
        id_of = self._id_of
        left_id = id_of(id(left))
        if left_id is None:
            left_id = self.table.intern_id(left)
        right_id = id_of(id(right))
        if right_id is None:
            right_id = self.table.intern_id(right)
        if right_id < left_id:
            left_id, right_id = right_id, left_id
        memo_key = (left_id, right_id)
        result = self._add_memo.get(memo_key)
        if result is None:
            result = self.table.intern(self.table.value(left_id) + self.table.value(right_id))
            self._add_memo.put(memo_key, result)
        return result

    def mul(self, left: Any, right: Any) -> Any:
        if left is self._one:
            return right
        if right is self._one:
            return left
        if left is self._zero or right is self._zero:
            return self._zero
        id_of = self._id_of
        left_id = id_of(id(left))
        if left_id is None:
            left_id = self.table.intern_id(left)
        right_id = id_of(id(right))
        if right_id is None:
            right_id = self.table.intern_id(right)
        if right_id < left_id:
            left_id, right_id = right_id, left_id
        memo_key = (left_id, right_id)
        result = self._mul_memo.get(memo_key)
        if result is None:
            result = self.table.intern(self.table.value(left_id) * self.table.value(right_id))
            self._mul_memo.put(memo_key, result)
        return result

    def neg(self, value: Any) -> Any:
        return -value

    def conj(self, value: Any) -> Any:
        memo_key = self.table.intern_id(value)
        result = self._conj_memo.get(memo_key)
        if result is None:
            result = self.table.intern(value.conj())
            self._conj_memo.put(memo_key, result)
        return result

    def normalize(self, weights: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        eta, normalized, _keys = self.normalize_keyed(weights)
        return eta, normalized

    def normalize_keyed(
        self, weights: Tuple[Any, ...]
    ) -> Tuple[Any, Tuple[Any, ...], Tuple[int, ...]]:
        intern_id = self.table.intern_id
        if len(weights) == 2:
            id_of = self._id_of
            key0 = id_of(id(weights[0]))
            if key0 is None:
                key0 = intern_id(weights[0])
            key1 = id_of(id(weights[1]))
            if key1 is None:
                key1 = intern_id(weights[1])
            memo_key = (key0, key1)
        else:
            memo_key = tuple(intern_id(weight) for weight in weights)
        result = self._norm_memo.get(memo_key)
        if result is None:
            result = self._normalize_miss(weights, memo_key)
            self._norm_memo.put(memo_key, result)
        return result

    def _normalize_miss(
        self, weights: Tuple[Any, ...], memo_key: Tuple[int, ...]
    ) -> Tuple[Any, Tuple[Any, ...], Tuple[int, ...]]:
        if len(weights) == 2:
            # Scale-invariance fast path: for both exact normalisations
            # ``normalize(c*w) == (c * eta', normalized')`` *exactly* --
            # Algorithm 2 divides by the pivot (the common factor
            # cancels) and Algorithm 3's gcd is multiplicative with an
            # associate-invariant output.  Reducing to the ratio class
            # ``(w0/pivot, w1/pivot)`` lets one raw normalisation serve
            # every globally-rescaled weight tuple.
            key0, key1 = memo_key
            zero_id = self._zero_id
            pivot_id = key0 if key0 != zero_id else key1
            if pivot_id != self._one_id and pivot_id != zero_id:
                value = self.table.value
                pivot = value(pivot_id)
                ratio0 = self.division_helper(value(key0), pivot)
                ratio1 = self.division_helper(value(key1), pivot)
                if ratio0 is not None and ratio1 is not None:
                    base = self.normalize_keyed((ratio0, ratio1))
                    return (self.mul(pivot, base[0]), base[1], base[2])
        eta, normalized = self._raw_normalize(weights)
        interned = tuple(self.table.intern(weight) for weight in normalized)
        return (
            self.table.intern(eta),
            interned,
            tuple(self.table.intern_id(weight) for weight in interned),
        )

    # -- predicates -----------------------------------------------------

    def is_zero(self, value: Any) -> bool:
        # Identity fast path: canonical zero flows through unchanged
        # almost everywhere (zero edges share the interned instance).
        return value is self._zero or value.is_zero()

    def is_one(self, value: Any) -> bool:
        return value is self._one or value.is_one()

    # -- sanitizer hooks ------------------------------------------------

    @abstractmethod
    def _recanonicalize(self, value: Any) -> Any:
        """Rebuild ``value`` through the ring constructor.

        The constructors apply the representation's normal form
        (Algorithm 1 for ``D[omega]``; the extended reduction for
        ``Q[omega]``), so a value is in normal form iff rebuilding it
        reproduces the same canonical key.
        """

    def check_canonical(self, value: Any) -> Optional[str]:
        try:
            rebuilt = self._recanonicalize(value)
        except Exception as error:  # malformed ring element
            return f"weight {value!r} cannot be recanonicalised: {error}"
        if rebuilt.key() != value.key():
            return (
                f"weight {value!r} is not in ring normal form "
                f"(recanonicalises to {rebuilt!r})"
            )
        eid = self.table.lookup_key(value.key())
        if eid is None:
            return f"weight {value!r} was never interned in the WeightTable"
        if self.table.value(eid) is not value:
            return (
                f"weight {value!r} is a shadow instance of interned id {eid} "
                "(weight ids would not round-trip)"
            )
        return None

    def value_for_key(self, key: int) -> Any:
        if not isinstance(key, int) or not 0 <= key < len(self.table):
            raise DDError(f"unknown weight-table id {key!r}")
        return self.table.value(key)

    # -- conversions ----------------------------------------------------

    def from_complex(self, value: complex) -> Any:
        raise DDError(
            "the algebraic representation cannot import arbitrary complex "
            "values; approximate the gate with Clifford+T first (repro.approx)"
        )

    def to_complex(self, value: Any) -> complex:
        return value.to_complex()

    def bit_width(self, value: Any) -> int:
        return value.max_bit_width()

    @staticmethod
    def _width_of(value: Any) -> int:
        return int(value.max_bit_width())

    def metric_values(self) -> Dict[str, float]:
        prefix = f"rings.{self.ring_name}"
        return {
            f"{prefix}.bit_width": float(self.table.max_bit_width),
            f"{prefix}.interned_values": float(len(self.table)),
        }

    def weight_statistics(self) -> Dict[str, Dict[str, int]]:
        stats: Dict[str, Dict[str, int]] = {"weight_table": self.table.statistics()}
        for memo in self._weight_memos():
            stats[memo.name] = memo.statistics()
        return stats

    # -- garbage-collection hooks ---------------------------------------

    def _weight_memos(self) -> Tuple[ComputeTable, ...]:
        return (
            self._mul_memo,
            self._add_memo,
            self._conj_memo,
            self._norm_memo,
            self._div_memo,
        )

    def invalidate_memos(self) -> int:
        # Memo keys and values embed interned ids/instances; after any
        # sweep they could resolve to tombstones, so the whole
        # generation goes.
        dropped = 0
        for memo in self._weight_memos():
            dropped += memo.invalidate()
        return dropped

    def sweep_weights(self, live_keys: "set[Any]") -> int:
        live = {key for key in live_keys if isinstance(key, int)}
        live.add(self._zero_id)
        live.add(self._one_id)
        return self.table.sweep(live)


# ---------------------------------------------------------------------------
# Algebraic system with Q[omega] inverses (paper Algorithm 2)
# ---------------------------------------------------------------------------


class AlgebraicQOmegaSystem(_InternedAlgebraicSystem):
    """Exact weights in the cyclotomic field ``Q[omega]``.

    Normalisation implements the paper's **Algorithm 2**: divide every
    outgoing weight by the leftmost non-zero weight (exact field
    inverse), so the leftmost non-zero normalised weight is exactly 1.
    At least half of all edge weights become trivial this way, which the
    paper identifies as the reason this scheme outperforms the GCD
    scheme (Section V-B).
    """

    name = "algebraic-q"
    ring_name = "qomega"

    def _raw_zero(self) -> QOmega:
        return QOmega.zero()

    def _raw_one(self) -> QOmega:
        return QOmega.one()

    def from_domega(self, value: DOmega) -> QOmega:
        return QOmega.from_domega(value)

    def _recanonicalize(self, value: QOmega) -> QOmega:
        return QOmega(value.zeta, value.k, value.e)

    def _raw_normalize(self, weights: Tuple[QOmega, ...]) -> Tuple[QOmega, Tuple[QOmega, ...]]:
        pivot_index = -1
        for index, weight in enumerate(weights):
            if not weight.is_zero():
                pivot_index = index
                break
        if pivot_index < 0:
            raise DDError("normalize called on all-zero weights")
        eta = weights[pivot_index]
        inverse = eta.inverse()
        normalized = []
        for index, weight in enumerate(weights):
            if weight.is_zero():
                normalized.append(self._zero)
            elif index == pivot_index:
                normalized.append(self._one)
            else:
                normalized.append(weight * inverse)
        return (eta, tuple(normalized))

    def division_helper(self, numerator: QOmega, denominator: QOmega) -> Optional[QOmega]:
        if denominator.is_zero():
            return None
        numerator_id = self.table.intern_id(numerator)
        denominator_id = self.table.intern_id(denominator)
        memo_key = (numerator_id, denominator_id)
        result = self._div_memo.get(memo_key)
        if result is None:
            result = self.table.intern(numerator * denominator.inverse())
            self._div_memo.put(memo_key, result)
        return result


# ---------------------------------------------------------------------------
# Algebraic system with D[omega] GCDs (paper Algorithm 3)
# ---------------------------------------------------------------------------

#: Sentinel cached by :meth:`AlgebraicGcdSystem.division_helper` for pairs
#: whose quotient leaves ``D[omega]`` (a plain ``None`` would read as a miss).
_INEXACT = object()


class AlgebraicGcdSystem(_InternedAlgebraicSystem):
    """Exact weights in the ring ``D[omega]`` with GCD normalisation.

    Normalisation implements the paper's **Algorithm 3**: the
    normalisation factor is a greatest common divisor of the outgoing
    weights, unit-adjusted so the leftmost non-zero weight becomes the
    canonical associate satisfying properties (a)-(c) of Section IV-B.
    All weights stay inside ``D[omega]`` (no odd denominators), at the
    price that few weights become trivial -- the overhead the paper
    measures in Section V-B.
    """

    name = "algebraic-gcd"
    ring_name = "domega"

    def __init__(self) -> None:
        super().__init__()
        # canonical_associate is a fundamental-unit walk plus a
        # lexicographic scan; the same pivot quotients recur across many
        # weight tuples, so memoise per canonical key.
        self._assoc_memo = ComputeTable("weight_assoc", 1 << 15)

    def _raw_zero(self) -> DOmega:
        return DOmega.zero()

    def _raw_one(self) -> DOmega:
        return DOmega.one()

    def from_domega(self, value: DOmega) -> DOmega:
        return value

    def _recanonicalize(self, value: DOmega) -> DOmega:
        # Algorithm 1: the constructor divides out sqrt2 while the
        # parity criterion holds, so this re-derives the minimal k.
        return DOmega(value.zeta, value.k)

    def _raw_normalize(self, weights: Tuple[DOmega, ...]) -> Tuple[DOmega, Tuple[DOmega, ...]]:
        nonzero = [weight for weight in weights if not weight.is_zero()]
        if not nonzero:
            raise DDError("normalize called on all-zero weights")
        pivot = nonzero[0]
        # Fast path: the pivot divides every other weight.  Then every
        # gcd is an associate of the pivot, the pivot quotient is a unit
        # and Algorithm 3's output collapses to ``eta = pivot`` with
        # weights ``w_i / pivot`` -- identical to the general path
        # (independent of which associate the Euclidean gcd returns) but
        # without the Euclidean loop or the canonical-associate walk.
        # Empirically this covers the large majority of fresh tuples in
        # simulation (single non-zero children, proportional branches).
        quotients: Optional[List[DOmega]] = []
        for weight in nonzero[1:]:
            quotient = self.division_helper(weight, pivot)
            if quotient is None:
                quotients = None
                break
            quotients.append(quotient)
        if quotients is not None:
            iterator = iter([self._one] + quotients)
            normalized = tuple(
                self._zero if weight.is_zero() else next(iterator) for weight in weights
            )
            return (pivot, normalized)
        # Second fast path: detect a *unit* gcd without running the
        # Euclidean algorithm.  ``sqrt2`` (hence 2) is a unit of
        # ``D[omega]``, so any common divisor ``g`` satisfies
        # ``E(g) | gcd_i E(w_i)`` over the integer Euclidean norms of the
        # numerators; when that integer gcd is a power of two, ``E(g)``
        # is too and ``g`` is a unit.  The output below is invariant
        # under the choice of associate, so ``divisor = 1`` (an associate
        # of any unit) gives the same result as the Euclidean gcd.  This
        # covers e.g. permuted children of an already-normalised node
        # (coprime weights -- the Euclidean loop's worst case) and the
        # Hadamard sums ``(a + b, a - b)`` of a coprime pair, whose gcd
        # divides the unit 2.
        norm_gcd = 0
        for weight in nonzero:
            norm_gcd = _int_gcd(norm_gcd, weight.numerator_euclidean_norm())
            if norm_gcd == 1:
                break
        if norm_gcd & (norm_gcd - 1) == 0:
            divisor = DOmega.one()
        else:
            # Third fast path: some *other* weight divides the rest, so
            # it is itself an associate of the gcd.
            divisor = None
            for candidate in nonzero[1:]:
                if all(
                    self.division_helper(weight, candidate) is not None
                    for weight in nonzero
                    if weight is not candidate
                ):
                    divisor = candidate
                    break
            if divisor is None:
                divisor = DOmega.gcd(nonzero)
        # Algorithm 3 lines 5-10: adjust the GCD by a unit so the leftmost
        # non-zero weight becomes its canonical associate.
        unit_divisor = divisor.k == 0 and divisor.zeta.is_one()
        pivot_quotient = pivot if unit_divisor else pivot.exact_divide(divisor)
        assoc_key = pivot_quotient.key()
        pair = self._assoc_memo.get(assoc_key)
        if pair is None:
            _canonical, unit = pivot_quotient.canonical_associate()
            pair = (self.table.intern(unit), self.table.intern(unit.unit_inverse()))
            self._assoc_memo.put(assoc_key, pair)
        unit, unit_inverse = pair
        eta = unit if unit_divisor else divisor * unit
        division_helper = self.division_helper
        mul = self.mul
        normalized = []
        for weight in weights:
            if weight.is_zero():
                normalized.append(self._zero)
            else:
                quotient = weight if unit_divisor else division_helper(weight, divisor)
                normalized.append(mul(quotient, unit_inverse))
        return (eta, tuple(normalized))

    def weight_statistics(self) -> Dict[str, Dict[str, int]]:
        stats = super().weight_statistics()
        stats[self._assoc_memo.name] = self._assoc_memo.statistics()
        return stats

    def _weight_memos(self) -> Tuple[ComputeTable, ...]:
        # The associate memo caches interned unit instances, which a
        # weight sweep may tombstone -- invalidate it alongside.
        return super()._weight_memos() + (self._assoc_memo,)

    def division_helper(self, numerator: DOmega, denominator: DOmega) -> Optional[DOmega]:
        if denominator.is_zero():
            return None
        id_of = self._id_of
        numerator_id = id_of(id(numerator))
        if numerator_id is None:
            numerator_id = self.table.intern_id(numerator)
        denominator_id = id_of(id(denominator))
        if denominator_id is None:
            denominator_id = self.table.intern_id(denominator)
        memo_key = (numerator_id, denominator_id)
        result = self._div_memo.get(memo_key)
        if result is None:
            try:
                result = self.table.intern(numerator.exact_divide(denominator))
            except InexactDivisionError:
                result = _INEXACT
            self._div_memo.put(memo_key, result)
        return None if result is _INEXACT else result
