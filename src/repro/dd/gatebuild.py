r"""Direct construction of gate DDs (no dense matrices).

A quantum gate on ``n`` qubits -- a single-qubit operation ``U`` with an
arbitrary set of positive/negative controls -- is built directly as a
matrix QMDD in ``O(n)`` nodes, never materialising the ``2^n x 2^n``
matrix (paper Section II-A describes the Kronecker-product structure
this exploits).

Construction idea
-----------------
Walking levels top-down:

* an *uninvolved* qubit contributes ``diag(R, R)``;
* a *control above the target* contributes ``diag(I, R)`` (positive
  control; the unsatisfied branch is a plain identity) or ``diag(R, I)``
  (negative control);
* at the *target* level the four quadrants are
  ``u_ij * S + delta_ij * (I - S)`` where ``S`` is the diagonal
  projector onto the assignments of the *remaining lower* qubits that
  satisfy all controls sitting below the target.  ``S`` and its
  complement are themselves linear-size diagonal DDs.

This handles any control/target layout uniformly, including the
multi-controlled X/Z gates of Grover's diffusion operator with exact
``D[omega]`` weights.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence

from repro.dd.edge import Edge
from repro.dd.manager import DDManager
from repro.errors import CircuitError

__all__ = ["build_gate_dd", "build_diagonal_dd"]


def build_gate_dd(
    manager: DDManager,
    entries: Sequence[Any],
    target: int,
    controls: Iterable[int] = (),
    negative_controls: Iterable[int] = (),
) -> Edge:
    """Build the full-width matrix DD of a (multi-)controlled gate.

    Parameters
    ----------
    manager:
        The owning :class:`~repro.dd.manager.DDManager`.
    entries:
        The 2x2 base matrix as four weights of the manager's number
        system, row-major ``(u00, u01, u10, u11)``.
    target:
        Target qubit (0-based, qubit 0 = most significant / top level).
    controls, negative_controls:
        Qubits that must be in state 1 (resp. 0) for ``U`` to act.
    """
    if len(entries) != 4:
        raise CircuitError("gate entries must be a 2x2 matrix (4 weights)")
    controls = frozenset(controls)
    negative_controls = frozenset(negative_controls)
    n = manager.num_qubits
    involved = controls | negative_controls | {target}
    if controls & negative_controls:
        raise CircuitError("a qubit cannot be both a positive and a negative control")
    if target in controls or target in negative_controls:
        raise CircuitError(f"target qubit {target} cannot also be a control")
    for qubit in involved:
        if not 0 <= qubit < n:
            raise CircuitError(f"qubit {qubit} out of range for {n} qubits")

    target_level = manager.level_of_qubit(target)
    builder = _GateBuilder(manager, entries, target_level, controls, negative_controls)
    return builder.gate(n)


def build_diagonal_dd(manager: DDManager, phases: Dict[int, Any]) -> Edge:
    """Build ``diag(f(0), ..., f(2^n - 1))`` where ``f(i)`` multiplies the
    weights ``phases[q]`` of every qubit ``q`` whose bit is 1 in ``i``.

    Convenience used by phase-oracle style constructions; a missing
    qubit contributes the weight one.
    """
    edge = manager.one_edge()
    for level in range(1, manager.num_qubits + 1):
        qubit = manager.num_qubits - level
        phase = phases.get(qubit, manager.system.one)
        lower = manager.scale(edge, phase)
        edge = manager.make_node(level, [edge, manager.zero_edge(), manager.zero_edge(), lower])
    return edge


class _GateBuilder:
    """Level-wise recursive gate construction with per-level caching."""

    def __init__(
        self,
        manager: DDManager,
        entries: Sequence[Any],
        target_level: int,
        controls: frozenset,
        negative_controls: frozenset,
    ) -> None:
        self.manager = manager
        self.entries = tuple(entries)
        self.target_level = target_level
        self.controls = controls
        self.negative_controls = negative_controls
        self._identity_cache: Dict[int, Edge] = {}  # repro-lint: allow[RL005] (one entry per level)
        self._sat_cache: Dict[int, Edge] = {}  # repro-lint: allow[RL005] (one entry per level)
        self._unsat_cache: Dict[int, Edge] = {}  # repro-lint: allow[RL005] (one entry per level)

    def _qubit(self, level: int) -> int:
        return self.manager.num_qubits - level

    # -- building blocks -------------------------------------------------

    def identity(self, level: int) -> Edge:
        """Identity DD over levels ``1..level``."""
        cached = self._identity_cache.get(level)
        if cached is not None:
            return cached
        manager = self.manager
        if level == 0:
            edge = manager.one_edge()
        else:
            below = self.identity(level - 1)
            edge = manager.make_node(
                level, [below, manager.zero_edge(), manager.zero_edge(), below]
            )
        self._identity_cache[level] = edge
        return edge

    def satisfied(self, level: int) -> Edge:
        """Diagonal projector: all controls at levels <= ``level`` satisfied."""
        cached = self._sat_cache.get(level)
        if cached is not None:
            return cached
        manager = self.manager
        if level == 0:
            edge = manager.one_edge()
        else:
            below = self.satisfied(level - 1)
            qubit = self._qubit(level)
            if qubit in self.controls:
                low, high = manager.zero_edge(), below
            elif qubit in self.negative_controls:
                low, high = below, manager.zero_edge()
            else:
                low, high = below, below
            edge = manager.make_node(
                level, [low, manager.zero_edge(), manager.zero_edge(), high]
            )
        self._sat_cache[level] = edge
        return edge

    def unsatisfied(self, level: int) -> Edge:
        """Diagonal projector: at least one control <= ``level`` unsatisfied."""
        cached = self._unsat_cache.get(level)
        if cached is not None:
            return cached
        manager = self.manager
        if level == 0:
            edge = manager.zero_edge()
        else:
            below = self.unsatisfied(level - 1)
            qubit = self._qubit(level)
            if qubit in self.controls:
                low, high = self.identity(level - 1), below
            elif qubit in self.negative_controls:
                low, high = below, self.identity(level - 1)
            else:
                low, high = below, below
            if manager.is_zero_edge(low) and manager.is_zero_edge(high):
                edge = manager.zero_edge()
            else:
                edge = manager.make_node(
                    level, [low, manager.zero_edge(), manager.zero_edge(), high]
                )
        self._unsat_cache[level] = edge
        return edge

    # -- the gate itself ---------------------------------------------------

    def gate(self, level: int) -> Edge:
        manager = self.manager
        if level == 0:
            return manager.one_edge()
        qubit = self._qubit(level)
        if level == self.target_level:
            u00, u01, u10, u11 = self.entries
            sat = self.satisfied(level - 1)
            unsat = self.unsatisfied(level - 1)
            quadrants = [
                manager.add(manager.scale(sat, u00), unsat),
                manager.scale(sat, u01),
                manager.scale(sat, u10),
                manager.add(manager.scale(sat, u11), unsat),
            ]
            return manager.make_node(level, quadrants)
        below = self.gate(level - 1)
        zero = manager.zero_edge()
        if qubit in self.controls:
            return manager.make_node(level, [self.identity(level - 1), zero, zero, below])
        if qubit in self.negative_controls:
            return manager.make_node(level, [below, zero, zero, self.identity(level - 1)])
        return manager.make_node(level, [below, zero, zero, below])
