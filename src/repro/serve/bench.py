r"""Service latency benchmark: warm workers vs the cold batch path.

The claim the service has to earn: a repeated request answered by a
*warm* worker (hot unique/compute/weight tables, pinned gate DDs --
result cache deliberately disabled) is at least 2x cheaper than the
cold path that builds a fresh manager per job.  This module measures
exactly that on the paper's Grover workload and emits a versioned
:class:`~repro.obs.perf.BenchRecord` (``BENCH_serve_grover_<n>q.json``)
so CI can hold the ratio with the 3-sigma MAD band of
:func:`repro.obs.perf.compare_records`.

Three timings per run:

``cold``     per-job cost of :func:`repro.api.run_batch` (workers=1) --
             fresh manager/simulator stack for every job.
``warm``     per-request latency through a service whose result cache
             is OFF: every request really simulates, but on hot tables.
``cached``   per-request latency with the cache ON: after the first
             miss, requests are answered from the canonical-form LRU.

Driven by ``repro-qmdd serve-bench`` and the committed baseline under
``benchmarks/baselines/``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.algorithms.grover import grover_circuit
from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.obs.perf import BenchRecord, TimingStats
from repro.serve.service import SimulationService

__all__ = ["percentile", "run_serve_bench"]


def percentile(samples: List[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` (nearest-rank)."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _latency_series(
    service: SimulationService, request: RunRequest, repeats: int
) -> List[float]:
    samples: List[float] = []
    for index in range(repeats):
        timed = RunRequest(
            request.circuit, request.config, label=f"{request.job_label}#{index}"
        )
        started = time.perf_counter()
        service.submit(timed)
        samples.append(time.perf_counter() - started)
    return samples


def run_serve_bench(
    qubits: int = 8,
    iterations: int = 6,
    repeats: int = 12,
    workers: int = 1,
    mode: str = "inline",
    config: Optional[SimulatorConfig] = None,
) -> Dict[str, Any]:
    """Measure cold vs warm vs cached latency on one Grover workload.

    Returns a JSON-ready report dict with a ``record`` entry holding
    the :class:`~repro.obs.perf.BenchRecord` payload (timing = the
    warm-path samples; the cold/cached numbers ride as counters).
    """
    if repeats < 2:
        raise ValueError("serve bench needs at least 2 repeats")
    config = config if config is not None else SimulatorConfig()
    circuit = grover_circuit(qubits, 3, iterations=iterations)
    request = RunRequest(circuit, config, label="serve-bench")

    # Cold reference: the per-job cost of the batch engine's fresh
    # manager-per-job path over the same number of identical jobs.
    cold_jobs = [
        RunRequest(circuit, config, label=f"cold#{index}") for index in range(repeats)
    ]
    started = time.perf_counter()
    cold_batch = run_batch(cold_jobs, workers=1)
    cold_wall = time.perf_counter() - started
    if not cold_batch.ok:
        failure = cold_batch.failures[0]
        raise RuntimeError(
            f"cold reference batch failed: {failure.error_type}: {failure.message}"
        )
    cold_per_job = cold_wall / repeats

    # Warm path: cache off -- every request simulates on hot tables.
    with SimulationService(
        workers=workers, mode=mode, cache_capacity=0
    ) as service:
        warm_first = _latency_series(service, request, 1)[0]  # builds the entry
        warm_samples = _latency_series(service, request, repeats)

    # Cached path: first request misses and fills, the rest hit.
    with SimulationService(workers=workers, mode=mode) as service:
        _latency_series(service, request, 1)
        cached_samples = _latency_series(service, request, repeats)
        cache_stats = service.stats()

    warm_median = percentile(warm_samples, 0.5)
    speedup = cold_per_job / warm_median if warm_median else float("inf")
    counters = {
        "cold_per_job_seconds": cold_per_job,
        "cold_wall_seconds": cold_wall,
        "warm_first_seconds": warm_first,
        "warm_p50_seconds": warm_median,
        "warm_p99_seconds": percentile(warm_samples, 0.99),
        "warm_throughput_rps": (
            len(warm_samples) / sum(warm_samples) if sum(warm_samples) else 0.0
        ),
        "cached_p50_seconds": percentile(cached_samples, 0.5),
        "cached_p99_seconds": percentile(cached_samples, 0.99),
        "cold_over_warm_speedup": speedup,
        "cache_hits": int(cache_stats.get("serve.cache.hits", 0)),
        "cache_misses": int(cache_stats.get("serve.cache.misses", 0)),
    }
    record = BenchRecord(
        workload=f"serve_grover_{qubits}q",
        config={
            "qubits": qubits,
            "iterations": iterations,
            "repeats": repeats,
            "workers": workers,
            "mode": mode,
            "system": config.system,
            "eps": config.eps,
        },
        timing=TimingStats.from_samples(warm_samples),
        counters=counters,
        created_unix=time.time(),
    )
    return {
        "workload": record.workload,
        "circuit": {
            "name": circuit.name,
            "num_qubits": circuit.num_qubits,
            "num_gates": len(circuit),
        },
        "cold_per_job_seconds": cold_per_job,
        "warm_p50_seconds": warm_median,
        "warm_p99_seconds": counters["warm_p99_seconds"],
        "warm_throughput_rps": counters["warm_throughput_rps"],
        "cached_p50_seconds": counters["cached_p50_seconds"],
        "cold_over_warm_speedup": speedup,
        "record": record.to_dict(),
    }
