r"""``repro.serve`` -- the persistent simulation service.

The batch engine (:mod:`repro.exec`) is built for sweeps: fan out,
compute, tear down.  Interactive and repeated workloads -- notebooks
iterating on one circuit, an evaluation driver replaying cases, CI
smoke loops -- pay its per-job manager construction and cold
unique/compute/weight tables every single time.  This package keeps
the stack *alive* instead:

:class:`SimulationService`
    The synchronous facade: a fleet of warm workers behind an asyncio
    front door on a daemon thread.  Pass it as ``client=`` to
    :func:`repro.api.run` / :func:`repro.api.run_batch`.

:class:`~repro.serve.frontend.ServiceFrontend`
    Admission control: canonical-form result cache, shard routing by
    number system and qubit bucket, bounded per-worker queues with
    typed :class:`~repro.errors.QueueFull` /
    :class:`~repro.errors.DeadlineExceeded` rejections.

:class:`~repro.serve.worker.WarmWorker`
    One live manager/simulator per configuration, hot tables across
    requests, GC between jobs, LRU-bounded warm entries.  In-process
    or child-process (``SIGALRM`` deadlines) flavours.

The service contract: **latency changes, payloads never do.**  Every
result -- cache hit, warm run, cold run -- is byte-identical to the
direct :func:`repro.api.run` path (asserted across all four number
systems by ``tests/serve/`` and the CI ``serve-smoke`` job).
"""

from __future__ import annotations

from repro.serve.cache import ResultCache, request_key
from repro.serve.frontend import ServiceFrontend
from repro.serve.protocol import ServeRequest, ServeResponse
from repro.serve.router import ShardRouter
from repro.serve.service import SimulationService
from repro.serve.worker import (
    InlineWorkerClient,
    ProcessWorkerClient,
    WarmWorker,
    WorkerOptions,
)

__all__ = [
    "InlineWorkerClient",
    "ProcessWorkerClient",
    "ResultCache",
    "ServeRequest",
    "ServeResponse",
    "ServiceFrontend",
    "ShardRouter",
    "SimulationService",
    "WarmWorker",
    "WorkerOptions",
    "request_key",
]
