r"""Shard routing: pin similar requests to the same warm worker.

A warm worker's payoff is table locality: a :class:`~repro.dd.manager.
DDManager` whose unique/compute/weight tables were populated by one
Grover run answers the next Grover run mostly from cache.  That only
happens if requests with the same configuration land on the same
worker, so the router shards deterministically by the *warm-entry
identity*: number system, numeric variant knobs, and the qubit-count
bucket (managers are built per width; bucketing adjacent widths keeps
the shard count stable while a sweep ramps qubits).

The shard index comes from SHA-256 over the shard key's repr --
**not** the builtin ``hash()``, which is salted per process
(``PYTHONHASHSEED``) and would scatter the same workload differently
every service start, defeating warm reuse and making latency
irreproducible.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.api import RunRequest

__all__ = ["ShardRouter"]

#: Qubit widths per routing bucket: 1-4 qubits share a shard key, 5-8
#: the next, and so on.
DEFAULT_BUCKET_SIZE = 4


class ShardRouter:
    """Deterministic request-to-worker assignment."""

    def __init__(self, num_workers: int, bucket_size: int = DEFAULT_BUCKET_SIZE) -> None:
        if num_workers < 1:
            raise ValueError("router needs at least one worker")
        if bucket_size < 1:
            raise ValueError("bucket size must be positive")
        self.num_workers = num_workers
        self.bucket_size = bucket_size

    def shard_key(self, request: RunRequest) -> Tuple[object, ...]:
        """The warm-entry identity this request will want on its worker."""
        config = request.config
        bucket = (request.circuit.num_qubits - 1) // self.bucket_size
        return (
            config.system,
            config.eps,
            config.normalization,
            config.precision,
            bucket,
        )

    def route(self, request: RunRequest) -> int:
        """Worker index in ``range(num_workers)`` for this request."""
        digest = hashlib.sha256(repr(self.shard_key(request)).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_workers
