r"""The asyncio front-end: admission, routing, dispatch, backpressure.

One :class:`ServiceFrontend` owns the service's moving parts:

* a :class:`~repro.serve.cache.ResultCache` consulted before any work
  is queued -- a canonical-form hit answers immediately, off the
  workers' critical path;
* a :class:`~repro.serve.router.ShardRouter` pinning each miss to the
  worker whose tables are warm for its configuration;
* one **bounded** :class:`asyncio.Queue` per worker.  Admission is
  ``put_nowait``: a full shard rejects with the typed
  :class:`~repro.errors.QueueFull` instead of blocking the caller --
  backpressure is explicit, never silent latency;
* one dispatcher task per worker, draining its shard in FIFO order and
  running the (blocking) worker client call on an executor thread.

Deadlines are absolute, minted at submission: a request that expires
while queued is rejected (:class:`~repro.errors.DeadlineExceeded`)
without ever reaching a worker; one that expires mid-run is cut off by
the worker-side alarm (process workers) or by the front-end abandoning
its response (inline workers).

Tracing: the front-end mints one trace id for its lifetime.  Every
request runs inside a ``serve.request`` span, and the worker's
``exec.job`` span ring ships home on the response and is re-parented
under that request span (:func:`repro.obs.reparent_spans`), so one
export shows queue wait and worker execution on a single timeline.

Instruments (all under the service scope; catalogued in
``docs/OBSERVABILITY.md``): ``serve.requests``,
``serve.rejected.queue_full``, ``serve.rejected.deadline``,
``serve.queue.depth``, ``serve.worker.busy``,
``serve.request.seconds`` plus the cache's ``serve.cache.*`` family.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro import errors
from repro.api import RunRequest, RunResult
from repro.exec.batch import JOB_SECONDS_BUCKETS
from repro.obs import Telemetry, TraceContext, new_span_id, new_trace_id, reparent_spans
from repro.serve.cache import DEFAULT_CAPACITY, ResultCache
from repro.serve.protocol import SHUTDOWN, ServeRequest, ServeResponse
from repro.serve.router import DEFAULT_BUCKET_SIZE, ShardRouter

__all__ = ["ServiceFrontend"]

#: Default per-worker queue capacity (requests, not bytes).
DEFAULT_QUEUE_SIZE = 32


def _swallow_abandoned(future: "asyncio.Future[ServeResponse]") -> None:
    """Retrieve an abandoned future's exception (quiets the loop's
    'exception was never retrieved' warning after a deadline abandon)."""
    if not future.cancelled() and future.done():
        future.exception()



class ServiceFrontend:
    """Admission control and dispatch over a fleet of worker clients.

    Built and driven by :class:`repro.serve.SimulationService`; all
    methods except the constructor must run on the service's event
    loop.
    """

    def __init__(
        self,
        clients: Sequence[Any],
        telemetry: Optional[Telemetry] = None,
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
    ) -> None:
        if not clients:
            raise ValueError("service needs at least one worker client")
        if queue_size < 1:
            raise ValueError("queue size must be positive")
        self.clients = list(clients)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        metrics = self.telemetry.metrics
        self.cache = ResultCache(metrics, capacity=cache_capacity)
        self.router = ShardRouter(len(self.clients), bucket_size=bucket_size)
        self.queue_size = queue_size
        self.trace_id = new_trace_id() if self.telemetry.tracer.enabled else None

        self._requests = metrics.counter("serve.requests")
        self._rejected_full = metrics.counter("serve.rejected.queue_full")
        self._rejected_deadline = metrics.counter("serve.rejected.deadline")
        self._queue_depth = metrics.gauge("serve.queue.depth")
        self._worker_busy = metrics.gauge("serve.worker.busy")
        self._request_seconds = metrics.histogram(
            "serve.request.seconds", buckets=JOB_SECONDS_BUCKETS
        )

        self._seq = 0
        self._busy = 0
        self._started = False
        self._closed = False
        self._queues: List["asyncio.Queue[Any]"] = []
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spin up one dispatcher task (and queue) per worker."""
        if self._started:
            return
        self._started = True
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.clients), thread_name_prefix="repro-serve"
        )
        for index, client in enumerate(self.clients):
            queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=self.queue_size)
            self._queues.append(queue)
            self._dispatchers.append(
                asyncio.create_task(
                    self._dispatch(index, client, queue),
                    name=f"repro-serve-dispatch-{index}",
                )
            )

    async def close(self) -> None:
        """Drain queued work, stop dispatchers, shut workers down."""
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            await queue.put(SHUTDOWN)
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for client in self.clients:
            # Worker shutdown can block on a child process join; keep
            # it off the event loop.
            await loop.run_in_executor(self._pool, client.close)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- submission ------------------------------------------------------

    async def submit(
        self, request: RunRequest, timeout: Optional[float] = None
    ) -> RunResult:
        """One request through cache, shard queue and worker.

        Raises the service's typed rejections --
        :class:`~repro.errors.QueueFull`,
        :class:`~repro.errors.DeadlineExceeded`,
        :class:`~repro.errors.ServiceClosed` -- or
        :class:`~repro.errors.ServeError` when the worker reported a
        simulation failure.
        """
        if self._closed or not self._started:
            raise errors.ServiceClosed(
                "service is not running (submit after close or before start)"
            )
        loop = asyncio.get_running_loop()
        started = loop.time()
        self._requests.inc()

        tracer = self.telemetry.tracer
        span_attrs: Dict[str, Any] = {"label": request.job_label}
        if self.trace_id is not None:
            span_attrs["trace_id"] = self.trace_id
        with tracer.span("serve.request", **span_attrs) as request_span:
            cached = self.cache.get(request)
            if cached is not None:
                self._request_seconds.observe(loop.time() - started)
                return cached

            dispatched = request
            if self.trace_id is not None:
                context = TraceContext(
                    trace_id=self.trace_id,
                    parent_span_id=new_span_id(),
                    epoch_unix=tracer.epoch_unix,
                )
                request_span.attrs["span_id"] = context.parent_span_id
                dispatched = replace(request, trace_context=context)

            worker_index = self.router.route(request)
            self._seq += 1
            serve_request = ServeRequest(
                seq=self._seq, request=dispatched, timeout=timeout
            )
            future: "asyncio.Future[ServeResponse]" = loop.create_future()
            deadline = started + timeout if timeout is not None else None
            queue = self._queues[worker_index]
            try:
                queue.put_nowait((serve_request, future, deadline))
            except asyncio.QueueFull:
                self._rejected_full.inc()
                raise errors.QueueFull(
                    f"worker {worker_index} queue is at capacity "
                    f"({self.queue_size} requests); retry later or raise "
                    "queue_size/workers"
                ) from None
            self._queue_depth.set(queue.qsize())

            if deadline is None:
                response = await future
            else:
                try:
                    response = await asyncio.wait_for(
                        asyncio.shield(future), timeout=deadline - loop.time()
                    )
                except asyncio.TimeoutError:
                    # Inline workers have no SIGALRM: the computation
                    # finishes on its executor thread, but the caller's
                    # deadline contract holds -- the response is
                    # abandoned.  (Process workers are interrupted
                    # worker-side and answer timed_out instead.)
                    future.add_done_callback(_swallow_abandoned)
                    self._rejected_deadline.inc()
                    raise errors.DeadlineExceeded(
                        f"request {request.job_label!r} missed its "
                        f"{timeout:g}s deadline mid-run"
                    ) from None

            if response.spans is not None:
                reparent_spans(
                    tracer,
                    response.spans,
                    parent_depth=request_span.depth,
                    tid=response.worker_id,
                )
            if not response.ok:
                if response.timed_out:
                    self._rejected_deadline.inc()
                    raise errors.DeadlineExceeded(
                        f"request {request.job_label!r} missed its "
                        f"{timeout:g}s deadline in worker {response.worker_id}"
                    )
                raise errors.ServeError(
                    f"worker {response.worker_id} failed request "
                    f"{request.job_label!r}: {response.error_type}: "
                    f"{response.message}"
                )
            result = response.result
            assert result is not None
            self.cache.put(request, result)
            self._request_seconds.observe(loop.time() - started)
            return result

    # -- dispatch --------------------------------------------------------

    async def _dispatch(
        self, worker_index: int, client: Any, queue: "asyncio.Queue[Any]"
    ) -> None:
        """Drain one shard queue into one worker, FIFO."""
        loop = asyncio.get_running_loop()
        while True:
            item = await queue.get()
            if item == SHUTDOWN:
                break
            serve_request, future, deadline = item
            self._queue_depth.set(queue.qsize())
            if future.done():
                # Caller already gave up (deadline fired while queued
                # under a slow worker); don't burn the worker on it.
                continue
            if deadline is not None:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    self._rejected_deadline.inc()
                    future.set_exception(
                        errors.DeadlineExceeded(
                            f"request {serve_request.request.job_label!r} "
                            "expired while queued"
                        )
                    )
                    continue
                serve_request = replace(serve_request, timeout=remaining)
            self._busy += 1
            self._worker_busy.set(self._busy)
            try:
                response = await loop.run_in_executor(
                    self._pool, client.execute, serve_request
                )
            except Exception as exc:  # noqa: BLE001 - worker client died
                if not future.done():
                    future.set_exception(exc)
                continue
            finally:
                self._busy -= 1
                self._worker_busy.set(self._busy)
            if not future.done():
                future.set_result(response)

    # -- introspection ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A fresh service-scope metrics snapshot (includes cache size)."""
        return dict(self.telemetry.metrics.snapshot())
