r"""``SimulationService``: the synchronous facade over the front-end.

The event loop lives on a daemon thread owned by the service, so the
callers of :func:`repro.api.run`/:func:`repro.api.run_batch` stay plain
synchronous code -- they pass ``client=service`` and every request goes
through :meth:`submit` via :func:`asyncio.run_coroutine_threadsafe`.

Two worker modes:

``"inline"``
    Workers live in the service process
    (:class:`~repro.serve.worker.InlineWorkerClient`).  Deterministic,
    no subprocess cost, ideal for tests and single-machine batch use;
    deadlines are enforced at the queue and by response abandonment.

``"process"``
    Each worker is a child process behind a pipe
    (:class:`~repro.serve.worker.ProcessWorkerClient`): true
    parallelism across cores and hard ``SIGALRM`` deadlines mid-run.

Use as a context manager::

    from repro.serve import SimulationService
    from repro.api import RunRequest, SimulatorConfig, run

    with SimulationService(workers=2) as service:
        result = run(RunRequest(circuit, SimulatorConfig()), client=service)

Results are byte-identical to the direct :func:`repro.api.run` path --
warm tables and the result cache change latency, never payloads (the
CI ``serve-smoke`` job asserts this across all four number systems).
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro import errors
from repro.api import RunRequest, RunResult
from repro.exec.batch import BatchResult, JobFailure
from repro.obs import Telemetry
from repro.serve.cache import DEFAULT_CAPACITY
from repro.serve.frontend import DEFAULT_QUEUE_SIZE, ServiceFrontend
from repro.serve.router import DEFAULT_BUCKET_SIZE
from repro.serve.worker import (
    DEFAULT_MAX_WARM,
    InlineWorkerClient,
    ProcessWorkerClient,
    WorkerOptions,
)

__all__ = ["SimulationService"]

_MODES = ("inline", "process")


class SimulationService:
    """A running simulation service: warm workers behind one front door.

    Parameters
    ----------
    workers:
        Fleet size (one shard queue and dispatcher per worker).
    mode:
        ``"inline"`` (in-process workers) or ``"process"``.
    cache_capacity / queue_size / bucket_size / max_warm:
        Result-cache entries, per-worker queue bound, router
        qubit-bucket width, warm simulator stacks per worker.
    telemetry:
        The service scope (``serve.*`` instruments land here).  Pass
        :meth:`Telemetry.tracing() <repro.obs.Telemetry.tracing>` to
        get per-request ``serve.request`` spans with worker
        ``exec.job`` spans re-parented onto them.
    """

    def __init__(
        self,
        workers: int = 2,
        mode: str = "inline",
        cache_capacity: int = DEFAULT_CAPACITY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        bucket_size: int = DEFAULT_BUCKET_SIZE,
        max_warm: int = DEFAULT_MAX_WARM,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if workers < 1:
            raise errors.ConfigError("service needs at least one worker")
        if mode not in _MODES:
            raise errors.ConfigError(
                f"unknown service mode {mode!r}; choose from {_MODES}"
            )
        self.workers = workers
        self.mode = mode
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._options = WorkerOptions(
            max_warm=max_warm, tracing=self.telemetry.tracer.enabled
        )
        self._cache_capacity = cache_capacity
        self._queue_size = queue_size
        self._bucket_size = bucket_size
        self._frontend: Optional[ServiceFrontend] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._frontend is not None and not self._closed

    def start(self) -> "SimulationService":
        """Build the worker fleet and start the event-loop thread."""
        if self._closed:
            raise errors.ServiceClosed("a closed service cannot be restarted")
        if self._frontend is not None:
            return self
        if self.mode == "inline":
            clients: List[Any] = [
                InlineWorkerClient(index, self._options)
                for index in range(self.workers)
            ]
        else:
            clients = [
                ProcessWorkerClient(index, self._options)
                for index in range(self.workers)
            ]
        self._frontend = ServiceFrontend(
            clients,
            telemetry=self.telemetry,
            cache_capacity=self._cache_capacity,
            queue_size=self._queue_size,
            bucket_size=self._bucket_size,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._call(self._frontend.start())
        return self

    def close(self) -> None:
        """Drain queues, stop workers, tear the loop thread down."""
        if self._closed or self._frontend is None:
            self._closed = True
            return
        self._call(self._frontend.close())
        self._closed = True
        assert self._loop is not None and self._thread is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    def __enter__(self) -> "SimulationService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _call(self, coroutine: Any) -> Any:
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    # -- the client API (what run/run_batch delegate to) -----------------

    def submit(self, request: RunRequest, timeout: Optional[float] = None) -> RunResult:
        """One request through the service; blocks until answered.

        Raises the typed rejections (:class:`~repro.errors.QueueFull`,
        :class:`~repro.errors.DeadlineExceeded`,
        :class:`~repro.errors.ServiceClosed`) or
        :class:`~repro.errors.ServeError` on worker failure.
        """
        if not self.running:
            raise errors.ServiceClosed("service is not running; use start()")
        assert self._frontend is not None
        return self._call(self._frontend.submit(request, timeout=timeout))

    def run_batch(
        self, requests: Sequence[RunRequest], timeout: Optional[float] = None
    ) -> BatchResult:
        """A whole batch through the service, concurrently.

        Shape-compatible with :func:`repro.exec.run_batch`: results
        index-aligned with ``requests``, typed rejections and worker
        failures recorded as :class:`~repro.exec.batch.JobFailure`
        entries instead of raising, service-scope metrics on the
        result.
        """
        if not self.running:
            raise errors.ServiceClosed("service is not running; use start()")
        assert self._frontend is not None
        frontend = self._frontend

        async def _gather() -> List[Any]:
            return await asyncio.gather(
                *(frontend.submit(request, timeout=timeout) for request in requests),
                return_exceptions=True,
            )

        started = time.perf_counter()
        outcomes = self._call(_gather())
        seconds = time.perf_counter() - started

        results: List[Optional[RunResult]] = []
        failures: List[JobFailure] = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                results.append(None)
                failures.append(
                    JobFailure(
                        index=index,
                        label=requests[index].job_label,
                        error_type=type(outcome).__name__,
                        message=str(outcome),
                        attempts=1,
                        timed_out=isinstance(outcome, errors.DeadlineExceeded),
                    )
                )
            else:
                results.append(outcome)
        return BatchResult(
            results=results,
            failures=failures,
            workers=self.workers,
            seconds=seconds,
            metrics=frontend.stats(),
            trace_id=frontend.trace_id,
        )

    # -- introspection ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Service-scope metrics snapshot (``serve.*`` family)."""
        if self._frontend is None:
            return {}
        return self._frontend.stats()
