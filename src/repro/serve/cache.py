r"""Canonical-form LRU result cache for the simulation service.

A cache hit must be indistinguishable from a fresh run, so keys come
from :func:`repro.circuits.canonical_hash` -- the structural identity
of circuit and configuration, not their display names.  Two requests
whose circuits apply the same unitaries to the same targets under the
same :class:`~repro.api.SimulatorConfig` share an entry even when one
was called ``"grover"`` and the other ``"grover (copy)"``; a request
with a different ``eps`` or number system never collides.  Requests
carrying an ``error_reference`` config are keyed on it too (the error
series on the trace depends on it).

Values are whole :class:`~repro.api.RunResult` objects: the state
travels inside them as a :mod:`repro.dd.serialize` document, which is
value-based, so replaying a cached payload is byte-identical to
recomputing it.  Only the ``label`` is request-specific and is
rewritten per hit.

Eviction is plain LRU with a fixed entry capacity.  Instrumentation
lands in the service's telemetry scope: ``serve.cache.hits`` /
``serve.cache.misses`` / ``serve.cache.evictions`` counters pushed at
the call sites, and ``serve.cache.size`` sampled by a collector at
snapshot time (the hot-path discipline of :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, Optional

from repro.api import RunRequest, RunResult
from repro.circuits.canonical import canonical_hash, config_fingerprint
from repro.obs import MetricsRegistry

__all__ = ["ResultCache", "request_key"]

#: Default entry capacity (whole RunResults; states are JSON documents,
#: so hundreds of cached 8-qubit results fit comfortably in memory).
DEFAULT_CAPACITY = 256


def request_key(request: RunRequest) -> str:
    """The canonical cache key of one request.

    Circuit structure and full simulation config via
    :func:`~repro.circuits.canonical_hash`; the ``error_reference``
    config (which shapes the trace's error series and the result's
    ``final_error``/``fidelity``) appended as its own fingerprint.
    """
    key = canonical_hash(request.circuit, request.config)
    if request.error_reference is not None:
        key += "/ref:" + repr(config_fingerprint(request.error_reference))
    return key


class ResultCache:
    """Bounded LRU mapping canonical request keys to run results."""

    def __init__(self, metrics: MetricsRegistry, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()
        self._hits = metrics.counter("serve.cache.hits")
        self._misses = metrics.counter("serve.cache.misses")
        self._evictions = metrics.counter("serve.cache.evictions")
        metrics.register_collector(self._collect)

    def __len__(self) -> int:
        return len(self._entries)

    def _collect(self) -> Dict[str, int]:
        return {"serve.cache.size": len(self._entries)}

    def get(self, request: RunRequest) -> Optional[RunResult]:
        """The cached result for ``request``, re-labelled, or ``None``.

        A hit refreshes the entry's LRU position and returns a shallow
        copy carrying the *incoming* request's label -- callers must
        see their own job label even when another circuit name first
        populated the entry.
        """
        if self.capacity == 0:
            self._misses.inc()
            return None
        key = request_key(request)
        cached = self._entries.get(key)
        if cached is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return replace(cached, label=request.job_label)

    def put(self, request: RunRequest, result: RunResult) -> None:
        """Store a successful result (failures are never cached)."""
        if self.capacity == 0:
            return
        key = request_key(request)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions.inc()
