r"""Warm workers: persistent manager/simulator stacks serving requests.

The batch engine builds a fresh :class:`~repro.dd.manager.DDManager`
per job -- correct, but every job pays cold unique/compute/weight
tables.  A :class:`WarmWorker` instead keeps one live simulator stack
per *warm-entry identity* (configuration plus circuit width) across
requests: gate DDs stay pinned, compute-table entries survive, interned
ring coefficients are already there.  Repeated requests then run mostly
out of cache, which is the latency win the service exists for.

Correctness of reuse:

* The exact systems and ``eps=0`` numerics produce value-based
  serialized payloads, so a warm run is byte-identical to a cold one.
* ``eps>0`` numeric tolerance tables *snap* -- which representative a
  weight collapses to depends on insertion history.  Re-running the
  same circuit replays the same history (still byte-identical), but a
  *different* circuit could pre-seed snapping targets.  Warm entries
  for lossy numeric configs are therefore additionally keyed by the
  canonical circuit hash: reuse only ever happens for structurally
  identical circuits there.
* A request that fails (including a deadline hit mid-run) discards its
  warm entry entirely -- a half-applied simulation may hold root
  registrations the worker cannot account for, and rebuilding the
  entry on next use is cheap compared to auditing it.

Memory discipline: entries are LRU-bounded (``max_warm``), state roots
are released after serialization (``keep_state=False`` on
:func:`repro.api.run_with`), and the manager's own
:meth:`~repro.dd.mem.MemoryManager.maybe_collect` runs between jobs so
a budgeted config stays inside its :class:`~repro.dd.mem.MemoryBudget`
across requests, not just within one.

Two client shapes front a worker: :class:`InlineWorkerClient` keeps it
in-process (deterministic, test-friendly, shares the GIL), and
:class:`ProcessWorkerClient` runs :func:`worker_main` in a child
process connected by a pipe -- there the job executes on the child's
main thread, so the batch engine's ``SIGALRM``
:func:`~repro.exec.batch.deadline_guard` enforces per-request deadlines
even mid-simulation.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.api import RunRequest, run_with
from repro.circuits.canonical import canonical_hash
from repro.errors import ServeError
from repro.exec.batch import JobTimeout, deadline_guard
from repro.obs import Telemetry, export_local_spans, export_worker_spans
from repro.serve.protocol import SHUTDOWN, ServeRequest, ServeResponse
from repro.sim.simulator import Simulator

__all__ = [
    "InlineWorkerClient",
    "ProcessWorkerClient",
    "WarmWorker",
    "WorkerOptions",
    "worker_main",
]

#: Default number of warm simulator stacks one worker keeps alive.
DEFAULT_MAX_WARM = 4


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable worker configuration (crosses the process boundary).

    ``tracing`` builds every warm entry's telemetry scope with the span
    ring enabled, so requests carrying a
    :class:`~repro.obs.TraceContext` come back with their worker spans;
    the front-end sets it from its own telemetry mode.
    """

    max_warm: int = DEFAULT_MAX_WARM
    tracing: bool = False


class WarmWorker:
    """One worker's warm-entry table plus the request execution loop."""

    def __init__(
        self,
        worker_id: int,
        options: Optional[WorkerOptions] = None,
        serialize_spans: bool = True,
    ) -> None:
        self.worker_id = worker_id
        self.options = options if options is not None else WorkerOptions()
        self.serialize_spans = serialize_spans
        self._entries: "OrderedDict[Tuple[Any, ...], Tuple[Simulator, Telemetry]]" = (
            OrderedDict()
        )

    # -- warm-entry management ------------------------------------------

    def _entry_key(self, request: RunRequest) -> Tuple[Any, ...]:
        config = request.config
        key: Tuple[Any, ...] = (config, request.circuit.num_qubits)
        if config.system == "numeric" and config.eps > 0.0:
            # Lossy tolerance tables snap history-dependently; only a
            # structurally identical circuit may reuse this entry.
            key += (canonical_hash(request.circuit),)
        return key

    def _entry_for(self, request: RunRequest) -> Tuple[Simulator, Telemetry, bool]:
        """The (simulator, scope) pair for this request, plus warm flag."""
        key = self._entry_key(request)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry[0], entry[1], True
        config = request.config
        scope = Telemetry(
            metrics=config.telemetry != "off", tracing=self.options.tracing
        )
        simulator = config.create_simulator(request.circuit.num_qubits, scope)
        self._entries[key] = (simulator, scope)
        while len(self._entries) > self.options.max_warm:
            self._entries.popitem(last=False)
        return simulator, scope, False

    def _discard(self, request: RunRequest) -> None:
        self._entries.pop(self._entry_key(request), None)

    @property
    def warm_entries(self) -> int:
        return len(self._entries)

    # -- execution -------------------------------------------------------

    def execute(self, serve_request: ServeRequest) -> ServeResponse:
        """Run one request on its warm entry; never raises.

        Mirrors the batch engine's ``_execute_job``: the whole attempt
        runs inside an ``exec.job`` span when the request carries a
        trace context, spans ship home on every outcome path, and any
        exception (including a ``SIGALRM`` deadline hit armed by the
        caller) becomes a typed failure response.
        """
        request = serve_request.request
        context = request.trace_context
        simulator, scope, warm = self._entry_for(request)
        export = export_worker_spans if self.serialize_spans else export_local_spans
        job_attrs: Dict[str, Any] = {
            "label": request.job_label,
            "seq": serve_request.seq,
            "worker": self.worker_id,
            "warm": warm,
        }
        if context is not None:
            job_attrs["trace_id"] = context.trace_id
            job_attrs["parent_span_id"] = context.parent_span_id
        try:
            with scope.tracer.span("exec.job", **job_attrs):
                result = run_with(
                    request, simulator, telemetry=scope, keep_state=False
                )
            response = ServeResponse(
                seq=serve_request.seq,
                ok=True,
                worker_id=self.worker_id,
                result=result,
                warm=warm,
            )
        except Exception as exc:  # noqa: BLE001 - becomes a typed response
            self._discard(request)
            response = ServeResponse(
                seq=serve_request.seq,
                ok=False,
                worker_id=self.worker_id,
                error_type=type(exc).__name__,
                message=str(exc) or traceback.format_exc(limit=1),
                timed_out=isinstance(exc, JobTimeout),
                warm=warm,
                metrics=dict(scope.metrics.snapshot()),
            )
        if context is not None:
            response.spans = export(scope.tracer, context)
        # The warm scope lives across requests: drain its span ring so
        # the next request does not re-ship this one's spans.
        scope.tracer.clear()
        # Budgeted configs collect between jobs, not only under gate
        # pressure -- a long-lived worker must return to its floor.
        memory = simulator.manager.memory
        if memory.config.enabled or memory.config.budget is not None:
            memory.maybe_collect()
        return response


# ---------------------------------------------------------------------------
# Worker clients (what the front-end dispatches to)
# ---------------------------------------------------------------------------


class InlineWorkerClient:
    """In-process worker: direct calls, no pickle boundary.

    Deadlines are enforced only at the queue (the front-end's dispatch
    check and response timeout): the execute call runs on an executor
    thread where ``SIGALRM`` cannot be armed.
    """

    def __init__(self, worker_id: int, options: Optional[WorkerOptions] = None) -> None:
        self.worker_id = worker_id
        self._worker = WarmWorker(worker_id, options, serialize_spans=False)

    def execute(self, serve_request: ServeRequest) -> ServeResponse:
        return self._worker.execute(serve_request)

    def close(self) -> None:
        return None


def worker_main(worker_id: int, conn: Any, options: WorkerOptions) -> None:
    """Child-process request loop: recv, execute under deadline, send.

    Runs on the child's main thread, so
    :func:`~repro.exec.batch.deadline_guard` arms a real ``SIGALRM``
    per request -- a wedged simulation is interrupted mid-run and still
    answers with its partial telemetry.
    """
    worker = WarmWorker(worker_id, options, serialize_spans=True)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item == SHUTDOWN:
            break
        try:
            with deadline_guard(item.timeout):
                response = worker.execute(item)
        except Exception as exc:  # noqa: BLE001 - alarm outside execute()
            response = ServeResponse(
                seq=item.seq,
                ok=False,
                worker_id=worker_id,
                error_type=type(exc).__name__,
                message=str(exc),
                timed_out=isinstance(exc, JobTimeout),
            )
        conn.send(response)
    conn.close()


class ProcessWorkerClient:
    """Worker in a child process behind a pipe.

    One request is in flight per worker at a time (the front-end's
    dispatcher serializes its shard), so a plain send/recv pair is the
    whole protocol.
    """

    def __init__(self, worker_id: int, options: Optional[WorkerOptions] = None) -> None:
        self.worker_id = worker_id
        options = options if options is not None else WorkerOptions()
        # Platform-default start method (fork on Linux), matching the
        # batch engine's ProcessPoolExecutor: spawn would re-import
        # __main__, breaking script-driven services.
        ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, options),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        self._process.start()
        child_conn.close()

    def execute(self, serve_request: ServeRequest) -> ServeResponse:
        try:
            self._conn.send(serve_request)
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ServeError(
                f"worker {self.worker_id} process died mid-request: {exc}"
            ) from exc

    def close(self) -> None:
        try:
            self._conn.send(SHUTDOWN)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._conn.close()
