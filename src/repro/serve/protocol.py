r"""The wire protocol between the service front-end and its workers.

Everything crossing the worker boundary is plain, picklable data --
the same transport discipline as the batch engine
(:mod:`repro.exec.batch`): a :class:`ServeRequest` carries a
:class:`~repro.api.RunRequest` (itself built from picklable parts) plus
the service envelope (sequence number, remaining deadline), and a
:class:`ServeResponse` carries either a :class:`~repro.api.RunResult`
or a typed failure description.  Worker processes receive requests over
a :class:`multiprocessing.Pipe`; the in-process worker mode passes the
same objects by reference.

``SHUTDOWN`` is the sentinel the front-end sends to end a worker loop
cleanly (flushes the pipe, joins the process).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.api import RunRequest, RunResult

__all__ = ["SHUTDOWN", "ServeRequest", "ServeResponse"]

#: Sentinel ending a worker loop (string: trivially picklable/comparable).
SHUTDOWN = "__repro_serve_shutdown__"


@dataclass(frozen=True)
class ServeRequest:
    """One request as dispatched to a worker.

    ``seq`` is the front-end's monotonically increasing request number
    (response correlation and log lines).  ``timeout`` is the
    *remaining* per-request budget in seconds at dispatch time -- an
    interval, not an absolute timestamp, because worker clocks are not
    the front-end's clock.  Worker processes arm it with the batch
    engine's ``SIGALRM`` deadline guard.
    """

    seq: int
    request: RunRequest
    timeout: Optional[float] = None


@dataclass
class ServeResponse:
    """A worker's answer to one :class:`ServeRequest`.

    Exactly one of ``result`` (success) or ``error_type``/``message``
    (typed failure, mirroring :class:`~repro.exec.batch.JobFailure`) is
    populated.  ``timed_out`` marks worker-side deadline hits so the
    front-end can convert them into the typed
    :class:`~repro.errors.DeadlineExceeded` rejection.  ``spans`` is
    the serialized tracer ring when the request carried a
    :class:`~repro.obs.TraceContext` (shipped on success and failure
    alike, as in the batch engine); ``metrics`` is the partial
    telemetry snapshot of a failed attempt.  ``warm`` reports whether
    the worker served the request from an already-hot manager (table
    reuse) or had to build one.
    """

    seq: int
    ok: bool
    worker_id: int
    result: Optional[RunResult] = None
    error_type: str = ""
    message: str = ""
    timed_out: bool = False
    warm: bool = False
    spans: Optional[Dict[str, Any]] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
