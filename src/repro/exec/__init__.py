r"""``repro.exec`` -- the parallel batch-execution engine.

The evaluation sweeps of the paper (eps tradeoff, qubit scaling, GC
tuning, kernel ablation) are embarrassingly parallel: every point is an
independent simulation.  This package fans typed
:class:`~repro.api.RunRequest` jobs out over a
:class:`concurrent.futures.ProcessPoolExecutor` and brings results home
as plain data:

* per-job **timeout** (worker-side alarm) and bounded **retry** with
  exponential backoff;
* typed failure capture -- a crashed or timed-out job becomes a
  :class:`JobFailure` carrying the exception text, attempt count and
  the partial telemetry snapshot, instead of aborting the sweep;
* result transport through :mod:`repro.dd.serialize` state documents
  plus a :class:`~repro.obs.MetricsRegistry` snapshot per job, merged
  fleet-wide (:func:`repro.obs.merge_snapshots`) on the
  :class:`BatchResult`.

``workers=1`` never spawns a process: jobs run sequentially in-process,
which is the deterministic fallback the test-suite uses and the
baseline that parallel runs are verified byte-identical against.

Callers should reach this engine through the facade --
:func:`repro.api.run_batch` -- rather than importing it directly.
"""

from __future__ import annotations

from repro.exec.batch import BatchResult, JobFailure, JobTimeout, deadline_guard, run_batch

__all__ = ["BatchResult", "JobFailure", "JobTimeout", "deadline_guard", "run_batch"]
