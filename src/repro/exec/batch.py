r"""Batch engine internals: worker protocol, timeout, retry, aggregation.

The public entry point is :func:`run_batch` (re-exported by
:mod:`repro.exec` and fronted by :func:`repro.api.run_batch`).  The
engine's contract, in order of importance:

**Determinism.**  ``workers=1`` runs every job sequentially in the
current process.  ``workers>1`` fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor`, but because every job
builds its *own* manager/simulator stack from a picklable
:class:`~repro.api.SimulatorConfig` and ships its state home as a
:mod:`repro.dd.serialize` document, the per-job payloads are
byte-identical across worker counts (asserted by
``tests/exec/test_determinism.py`` and the CI batch-smoke job).

**Failure isolation.**  A job that raises, times out or loses its
worker process becomes a typed :class:`JobFailure` -- the rest of the
sweep completes.  Retries happen in rounds: every failed job of round
*n* is re-submitted in round *n+1* after an exponential backoff sleep,
up to ``retries`` extra rounds.

**Timeouts** are enforced worker-side with ``SIGALRM`` /
``signal.setitimer`` so a wedged simulation is interrupted inside the
job and still reports its partial telemetry.  When the engine runs off
the main thread (or on platforms without ``SIGALRM``) the deadline is
silently skipped rather than mis-fired.

**Telemetry.**  Each job snapshots its own registry (success *or*
failure); :func:`run_batch` merges the per-job ``sim.*``/``dd.*``
snapshots fleet-wide via :func:`repro.obs.merge_snapshots` and overlays
its own ``exec.batch.*`` instruments (jobs, completed, failed, retries,
timeouts, worker count, per-job seconds histogram), all inside one
``exec.batch`` span.

**Distributed tracing.**  When the coordinator's telemetry scope has
tracing enabled, :func:`run_batch` mints a
:class:`~repro.obs.TraceContext` (trace id + the ``exec.batch`` span's
id + the coordinator clock anchor) and injects it into every request.
Workers then record spans -- an ``exec.job`` root span wrapping the
whole job, the simulator's ``sim.gate``/``dd.apply.direct`` spans
below it -- and serialize them into the job outcome dict alongside the
metrics snapshot, on the success, failure *and* timeout paths.  The
coordinator re-parents every shipped span under its ``exec.batch``
span with per-worker clock-offset alignment
(:func:`repro.obs.reparent_spans`), so one export of the coordinator
tracer yields a single multi-process trace with one track per worker.
Trace propagation never touches simulation state: results are
byte-identical with tracing on or off.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api import RunRequest, RunResult, run
from repro.errors import ConfigError, ReproError
from repro.obs import (
    Telemetry,
    TraceContext,
    export_local_spans,
    export_worker_spans,
    merge_snapshots,
    reparent_spans,
)

__all__ = [
    "BatchResult",
    "JobFailure",
    "JobTimeout",
    "deadline_guard",
    "run_batch",
]

#: Histogram buckets for per-job wall time (seconds): batch jobs span
#: sub-10ms smoke circuits up to multi-minute GSE sweeps.
JOB_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


class JobTimeout(ReproError):
    """A batch job exceeded its per-job wall-clock deadline."""


@dataclass(frozen=True)
class JobFailure:
    """Typed record of one job that failed all its attempts.

    ``metrics`` is the partial telemetry snapshot taken inside the
    worker after the last failing attempt -- for a timeout it shows how
    far the simulation got (gate counters, table sizes) before the
    alarm fired.
    """

    index: int
    label: str
    error_type: str
    message: str
    attempts: int
    timed_out: bool
    traceback: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "metrics": self.metrics,
        }


@dataclass
class BatchResult:
    """Outcome of one :func:`run_batch` call.

    ``results`` is index-aligned with the submitted requests (``None``
    where the job ultimately failed); ``failures`` holds the typed
    failure records.  ``metrics`` is the fleet-wide merge of every
    job's telemetry snapshot plus the engine's own ``exec.batch.*``
    instruments.  ``trace_id`` is the batch-wide trace id when the
    coordinator scope had tracing enabled, else ``None``.
    """

    results: List[Optional[RunResult]]
    failures: List[JobFailure]
    workers: int
    seconds: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None

    @property
    def completed(self) -> List[RunResult]:
        """Successful results in submission order."""
        return [result for result in self.results if result is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready batch report (per-job payloads plus fleet view)."""
        return {
            "workers": self.workers,
            "seconds": self.seconds,
            "jobs": len(self.results),
            "completed": len(self.completed),
            "failed": len(self.failures),
            "results": [
                result.to_dict() if result is not None else None
                for result in self.results
            ],
            "failures": [failure.to_dict() for failure in self.failures],
            "metrics": self.metrics,
            "trace_id": self.trace_id,
        }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


@contextmanager
def deadline_guard(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` in this thread after ``seconds``.

    ``SIGALRM`` only works on the main thread of a process; worker
    processes always run jobs there, but the in-process fallback may
    not (e.g. under a threaded test runner), in which case the deadline
    is skipped rather than armed incorrectly.  Shared with the
    persistent service's worker loop (:mod:`repro.serve.worker`), whose
    child processes likewise run jobs on their main thread.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum: int, frame: Any) -> None:
        raise JobTimeout(f"job exceeded its {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_job(
    index: int,
    request: RunRequest,
    timeout: Optional[float],
    serialize: bool = True,
) -> Tuple[int, Dict[str, Any]]:
    """Run one job; always return a picklable outcome payload.

    Executed inside the pool workers (and, for ``workers=1``, inline).
    The telemetry scope is created *before* the deadline is armed so a
    timed-out job still ships its partial snapshot home.  When the
    request carries a :class:`~repro.obs.TraceContext` the scope is
    forced into tracing mode, the whole attempt is wrapped in an
    ``exec.job`` span, and the span ring rides home in the outcome
    dict -- on the success, failure and timeout paths alike.  Pool
    workers serialize the ring to plain dicts; the in-process fallback
    passes ``serialize=False`` and ships the live :class:`Span`
    objects instead (no pickle boundary to cross).
    """
    context = request.trace_context
    scope = request.config.create_telemetry()
    if context is not None and not scope.tracer.enabled:
        scope = Telemetry(metrics=scope.metrics.enabled, tracing=True)
    export = export_worker_spans if serialize else export_local_spans
    job_attrs: Dict[str, Any] = {"label": request.job_label, "index": index}
    if context is not None:
        job_attrs["trace_id"] = context.trace_id
        job_attrs["parent_span_id"] = context.parent_span_id
    try:
        with deadline_guard(timeout):
            with scope.tracer.span("exec.job", **job_attrs):
                result = run(request, telemetry=scope)
        outcome: Dict[str, Any] = {"ok": True, "result": result}
        if context is not None:
            outcome["spans"] = export(scope.tracer, context)
        return index, outcome
    except Exception as exc:  # noqa: BLE001 - converted into JobFailure
        outcome = {
            "ok": False,
            "error_type": type(exc).__name__,
            "message": str(exc),
            "timed_out": isinstance(exc, JobTimeout),
            "traceback": traceback.format_exc(),
            "metrics": dict(scope.metrics.snapshot()),
        }
        if context is not None:
            outcome["spans"] = export(scope.tracer, context)
        return index, outcome


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _run_round(
    jobs: Sequence[Tuple[int, RunRequest]],
    workers: int,
    timeout: Optional[float],
) -> List[Tuple[int, Dict[str, Any]]]:
    """One attempt for every job in ``jobs``; outcomes in any order."""
    if workers <= 1:
        return [
            _execute_job(index, request, timeout, serialize=False)
            for index, request in jobs
        ]

    outcomes: List[Tuple[int, Dict[str, Any]]] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures: Dict["Future[Tuple[int, Dict[str, Any]]]", int] = {
            pool.submit(_execute_job, index, request, timeout): index
            for index, request in jobs
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                try:
                    outcomes.append(future.result())
                except Exception as exc:  # noqa: BLE001 - worker died hard
                    outcomes.append(
                        (
                            index,
                            {
                                "ok": False,
                                "error_type": type(exc).__name__,
                                "message": f"worker process failed: {exc}",
                                "timed_out": False,
                                "traceback": traceback.format_exc(),
                                "metrics": {},
                            },
                        )
                    )
    return outcomes


def run_batch(
    requests: Sequence[RunRequest],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    telemetry: Optional[Telemetry] = None,
) -> BatchResult:
    """Execute independent requests, optionally across a process pool.

    Parameters
    ----------
    requests:
        The jobs; results stay index-aligned with this sequence.
    workers:
        ``1`` (default) runs sequentially in-process -- fully
        deterministic, no subprocesses.  Higher counts use a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    timeout:
        Per-job wall-clock deadline in seconds (``None`` = unlimited).
    retries:
        Extra rounds granted to failed jobs (``0`` = single attempt).
    backoff:
        Base sleep between retry rounds; round *n* sleeps
        ``backoff * 2**(n-1)`` seconds.
    telemetry:
        The fleet scope for ``exec.batch.*`` instruments (a fresh
        metrics-only scope when omitted).
    """
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ConfigError("timeout must be positive when set")
    if backoff < 0:
        raise ConfigError("backoff must be non-negative")

    scope = telemetry if telemetry is not None else Telemetry()
    metrics = scope.metrics
    jobs_total = metrics.counter("exec.batch.jobs")
    jobs_completed = metrics.counter("exec.batch.completed")
    jobs_failed = metrics.counter("exec.batch.failed")
    jobs_retried = metrics.counter("exec.batch.retries")
    jobs_timed_out = metrics.counter("exec.batch.timeouts")
    trace_spans = metrics.counter("exec.batch.trace.spans")
    worker_gauge = metrics.gauge("exec.batch.workers")
    job_seconds = metrics.histogram(
        "exec.job.seconds", buckets=JOB_SECONDS_BUCKETS
    )

    jobs_total.inc(len(requests))
    worker_gauge.set(workers)

    # Trace-context injection: one trace id for the whole batch, the
    # coordinator's exec.batch span as the common parent.  The traced
    # copies are what gets submitted (including retry rounds); the
    # caller's request objects are never mutated.
    context: Optional[TraceContext] = None
    if scope.tracer.enabled:
        context = TraceContext.for_tracer(scope.tracer)
    submitted: List[RunRequest] = [
        request if context is None else replace(request, trace_context=context)
        for request in requests
    ]
    span_payloads: List[Dict[str, Any]] = []

    results: List[Optional[RunResult]] = [None] * len(requests)
    attempts: Dict[int, int] = {index: 0 for index in range(len(requests))}
    last_failure: Dict[int, Dict[str, Any]] = {}
    pending: List[Tuple[int, RunRequest]] = list(enumerate(submitted))

    started = time.perf_counter()
    batch_attrs: Dict[str, Any] = {"jobs": len(requests), "workers": workers}
    if context is not None:
        batch_attrs["trace_id"] = context.trace_id
        batch_attrs["span_id"] = context.parent_span_id
    with scope.tracer.span("exec.batch", **batch_attrs) as batch_span:
        round_no = 0
        while pending and round_no <= retries:
            if round_no:
                jobs_retried.inc(len(pending))
                time.sleep(backoff * (2 ** (round_no - 1)))
            failed_this_round: List[Tuple[int, RunRequest]] = []
            for index, outcome in _run_round(pending, workers, timeout):
                attempts[index] += 1
                payload = outcome.pop("spans", None)
                if payload is not None:
                    span_payloads.append(payload)
                if outcome["ok"]:
                    result: RunResult = outcome["result"]
                    result.attempts = attempts[index]
                    results[index] = result
                    last_failure.pop(index, None)
                    jobs_completed.inc()
                    job_seconds.observe(result.seconds)
                else:
                    last_failure[index] = outcome
                    if outcome["timed_out"]:
                        jobs_timed_out.inc()
                    failed_this_round.append((index, submitted[index]))
            pending = sorted(failed_this_round)
            round_no += 1

        # Re-parent the shipped worker spans under this exec.batch span
        # while it is still open, so containment holds in the export:
        # offset-aligned worker times always land inside the batch
        # window.  Each worker process gets its own pid track; tid
        # numbers the payloads (attempts) within a worker.
        if context is not None:
            tids: Dict[int, int] = {}
            for payload in span_payloads:
                worker_pid = int(payload.get("pid", 0))
                tid = tids.get(worker_pid, 0)
                tids[worker_pid] = tid + 1
                adopted = reparent_spans(
                    scope.tracer,
                    payload,
                    parent_depth=batch_span.depth,
                    tid=tid,
                )
                trace_spans.inc(len(adopted))

    failures = [
        JobFailure(
            index=index,
            label=requests[index].job_label,
            error_type=outcome["error_type"],
            message=outcome["message"],
            attempts=attempts[index],
            timed_out=outcome["timed_out"],
            traceback=outcome.get("traceback", ""),
            metrics=outcome.get("metrics", {}),
        )
        for index, outcome in sorted(last_failure.items())
    ]
    jobs_failed.inc(len(failures))
    seconds = time.perf_counter() - started

    job_snapshots = [result.metrics for result in results if result is not None]
    job_snapshots.extend(failure.metrics for failure in failures)
    # One merge covers the per-job snapshots *and* the coordinator's
    # own registry, so shared counters (obs.trace.dropped) sum instead
    # of being overwritten; exec.batch.* exists only here and passes
    # through unchanged.  With zero requests this is just the
    # coordinator snapshot -- never the empty-list error case.
    merged = merge_snapshots([*job_snapshots, metrics.snapshot()])

    return BatchResult(
        results=results,
        failures=failures,
        workers=workers,
        seconds=seconds,
        metrics=merged,
        trace_id=None if context is None else context.trace_id,
    )
