"""DD-based circuit verification (exact O(1) equivalence checking)."""

from repro.verify.equivalence import (
    EquivalenceResult,
    check_equivalence,
    check_equivalence_miter,
    check_state_equivalence,
    find_counterexample,
)
from repro.verify.faults import (
    Fault,
    enumerate_single_faults,
    inject_fault,
    locate_fault,
)

__all__ = [
    "EquivalenceResult",
    "Fault",
    "check_equivalence",
    "check_equivalence_miter",
    "check_state_equivalence",
    "enumerate_single_faults",
    "find_counterexample",
    "inject_fault",
    "locate_fault",
]
