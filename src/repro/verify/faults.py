r"""Gate-fault injection and exact diagnosis.

The paper motivates design automation with, among others, "the
detection and diagnosis of faulty quantum gates" [7].  Exactness makes
that task crisp: with algebraic QMDDs a faulty circuit *provably*
differs from its specification (no tolerance false verdicts), and the
fault position can be located by comparing prefix unitaries.

Fault models (single faults):

* ``drop``      -- a gate is skipped;
* ``replace``   -- a gate is replaced by another gate on the same
  target (e.g. ``T -> Tdg``, the classic phase fault);
* ``extra``     -- a spurious Pauli is inserted after a gate;
* ``control-drop`` -- one control of a controlled gate is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import STANDARD_GATES, TDG, X, Z
from repro.dd.manager import DDManager, algebraic_manager
from repro.errors import CircuitError
from repro.api import make_simulator

__all__ = ["Fault", "inject_fault", "enumerate_single_faults", "locate_fault"]

_REPLACEMENTS = {
    "t": TDG,
    "tdg": STANDARD_GATES["t"],
    "s": STANDARD_GATES["sdg"],
    "sdg": STANDARD_GATES["s"],
    "x": Z,
    "z": X,
    "h": Z,
    "y": X,
}


@dataclass(frozen=True)
class Fault:
    """A single-gate fault at ``position`` of a circuit."""

    kind: str  # "drop" | "replace" | "extra" | "control-drop"
    position: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}@{self.position}{suffix}"


def inject_fault(circuit: Circuit, fault: Fault) -> Circuit:
    """Return a copy of ``circuit`` with the fault applied."""
    if not 0 <= fault.position < len(circuit):
        raise CircuitError(f"fault position {fault.position} out of range")
    faulty = Circuit(circuit.num_qubits, name=f"{circuit.name}!{fault}")
    for index, operation in enumerate(circuit):
        if index != fault.position:
            faulty.operations.append(operation)
            continue
        if fault.kind == "drop":
            continue
        if fault.kind == "replace":
            replacement = _REPLACEMENTS.get(operation.gate.name)
            if replacement is None:
                raise CircuitError(
                    f"no replacement fault defined for gate {operation.gate.name!r}"
                )
            faulty.operations.append(
                Operation(
                    replacement,
                    operation.target,
                    operation.controls,
                    operation.negative_controls,
                )
            )
            continue
        if fault.kind == "extra":
            faulty.operations.append(operation)
            faulty.operations.append(Operation(Z, operation.target))
            continue
        if fault.kind == "control-drop":
            if not operation.controls:
                raise CircuitError("control-drop fault needs a controlled gate")
            faulty.operations.append(
                Operation(
                    operation.gate,
                    operation.target,
                    operation.controls[1:],
                    operation.negative_controls,
                )
            )
            continue
        raise CircuitError(f"unknown fault kind {fault.kind!r}")
    return faulty


def enumerate_single_faults(circuit: Circuit) -> List[Fault]:
    """All applicable single faults of every kind for every gate."""
    faults: List[Fault] = []
    for index, operation in enumerate(circuit):
        faults.append(Fault("drop", index, operation.gate.name))
        if operation.gate.name in _REPLACEMENTS:
            faults.append(
                Fault(
                    "replace",
                    index,
                    f"{operation.gate.name}->{_REPLACEMENTS[operation.gate.name].name}",
                )
            )
        faults.append(Fault("extra", index, "z"))
        if operation.controls:
            faults.append(Fault("control-drop", index, f"c{operation.controls[0]}"))
    return faults


def locate_fault(
    reference: Circuit,
    suspect: Circuit,
    manager: Optional[DDManager] = None,
) -> Optional[int]:
    """Locate the earliest diverging gate by prefix bisection.

    Returns the 0-based index of the first gate after which the prefix
    unitaries of the two circuits differ, or ``None`` when the circuits
    are exactly equivalent gate for gate.  Cost: ``O(log n)`` prefix
    unitary constructions (each incremental over the DD).

    Requires equal gate counts (the common case for replace/phase
    faults; for drop/extra faults align the circuits first or compare
    whole-circuit equivalence instead).

    .. note::
       Bisection assumes the divergence persists once introduced --
       true for phase-style faults, which commute forward as a fixed
       deviation, but a later gate sequence could in principle cancel a
       fault exactly; in that case the returned index is the boundary
       of the last *agreeing* prefix rather than the physical fault.
    """
    if reference.num_qubits != suspect.num_qubits:
        raise CircuitError("circuits must have equal width")
    if len(reference) != len(suspect):
        raise CircuitError(
            "prefix bisection needs equal gate counts; use check_equivalence "
            "for length-changing faults"
        )
    if manager is None:
        manager = algebraic_manager(reference.num_qubits)
    simulator = make_simulator(manager)

    def prefix_unitary(circuit: Circuit, length: int):
        partial = Circuit(circuit.num_qubits)
        partial.operations = circuit.operations[:length]
        return simulator.unitary(partial)

    total = len(reference)
    if manager.edges_equal(prefix_unitary(reference, total), prefix_unitary(suspect, total)):
        return None
    low, high = 0, total  # prefix of length `low` equal, `high` differs
    while high - low > 1:
        middle = (low + high) // 2
        if manager.edges_equal(
            prefix_unitary(reference, middle), prefix_unitary(suspect, middle)
        ):
            low = middle
        else:
            high = middle
    return high - 1
