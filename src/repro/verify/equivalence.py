r"""DD-based equivalence checking of quantum circuits.

Section V-B of the paper highlights verification as the design task that
benefits most from exact representations: "checking equivalence of two
matrices or vectors then boils down to comparing the root nodes of the
corresponding QMDDs (which can be done in O(1)) instead of looking for
(tiny) deviations in the whole representations".

:func:`check_equivalence` builds both circuit unitaries as matrix DDs
(matrix-matrix products, Section II-A) and compares root edges.  With an
algebraic manager the verdict is mathematically exact; with a numeric
manager it inherits the tolerance semantics of the representation --
including false negatives at ``eps = 0`` (missed equivalences) and
false positives at large ``eps``, which the evaluation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.dd.edge import Edge
from repro.dd.manager import DDManager, algebraic_manager
from repro.errors import CircuitError
from repro.api import make_simulator

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "check_equivalence_miter",
    "check_state_equivalence",
    "find_counterexample",
]


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    up_to_global_phase: bool
    system_name: str
    #: Set when the circuits agree only up to a scalar factor; the
    #: factor as a complex number (None when exactly equal or unequal).
    phase_factor: Optional[complex] = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    first: Circuit,
    second: Circuit,
    manager: Optional[DDManager] = None,
    up_to_global_phase: bool = True,
) -> EquivalenceResult:
    """Decide whether two circuits implement the same unitary.

    With the default (algebraic) manager the check is exact.  The root
    comparison itself is O(1); the cost lies in building the two matrix
    DDs.
    """
    if first.num_qubits != second.num_qubits:
        raise CircuitError("cannot compare circuits of different width")
    if manager is None:
        manager = algebraic_manager(first.num_qubits)
    simulator = make_simulator(manager)
    unitary_first = simulator.unitary(first)
    unitary_second = simulator.unitary(second)
    if manager.edges_equal(unitary_first, unitary_second):
        return EquivalenceResult(True, up_to_global_phase, manager.system.name)
    if up_to_global_phase and unitary_first.node is unitary_second.node:
        # Same structure, weights differing by a scalar: a global phase
        # iff the factor has modulus one.
        w1 = manager.system.to_complex(unitary_first.weight)
        w2 = manager.system.to_complex(unitary_second.weight)
        if w2 != 0:
            factor = w1 / w2
            if abs(abs(factor) - 1.0) < 1e-9:
                return EquivalenceResult(
                    True, up_to_global_phase, manager.system.name, phase_factor=factor
                )
    return EquivalenceResult(False, up_to_global_phase, manager.system.name)


def check_equivalence_miter(
    first: Circuit,
    second: Circuit,
    manager: Optional[DDManager] = None,
    up_to_global_phase: bool = True,
) -> EquivalenceResult:
    """Miter-style equivalence: ``U_first * U_second^dagger == I``.

    The classical hardware-verification formulation (cf. [23]): instead
    of comparing two DDs, build the product with the adjoint -- for
    equivalent circuits the result collapses to the (linear-size)
    identity DD *during construction*, which is often far smaller than
    either unitary.  A global-phase-only difference shows up as the
    identity structure with a modulus-one weight.
    """
    if first.num_qubits != second.num_qubits:
        raise CircuitError("cannot compare circuits of different width")
    if manager is None:
        manager = algebraic_manager(first.num_qubits)
    simulator = make_simulator(manager)
    product = manager.mat_mat(
        simulator.unitary(first), manager.adjoint(simulator.unitary(second))
    )
    identity = manager.identity()
    if manager.edges_equal(product, identity):
        return EquivalenceResult(True, up_to_global_phase, manager.system.name)
    if up_to_global_phase and product.node is identity.node:
        factor = manager.system.to_complex(product.weight)
        if abs(abs(factor) - 1.0) < 1e-9:
            return EquivalenceResult(
                True, up_to_global_phase, manager.system.name, phase_factor=factor
            )
    return EquivalenceResult(False, up_to_global_phase, manager.system.name)


def find_counterexample(
    first: Circuit,
    second: Circuit,
    manager: Optional[DDManager] = None,
) -> Optional[int]:
    """A basis input on which the two circuits differ, or ``None``.

    Builds the difference DD ``U_first - U_second`` and extracts the
    column of any non-zero entry by walking a non-zero path -- linear in
    the number of qubits once the DDs are built.  With the (default)
    algebraic manager the verdict is exact.
    """
    if first.num_qubits != second.num_qubits:
        raise CircuitError("cannot compare circuits of different width")
    if manager is None:
        manager = algebraic_manager(first.num_qubits)
    simulator = make_simulator(manager)
    difference = manager.add(
        simulator.unitary(first),
        manager.scale(simulator.unitary(second), manager.system.neg(manager.system.one)),
    )
    if manager.is_zero_edge(difference):
        return None
    # Walk any non-zero path; collect the column (input) bits.
    column = 0
    node = difference.node
    while not node.is_terminal:
        for position, child in enumerate(node.edges):
            if not manager.is_zero_edge(child):
                column_bit = position & 1  # quadrant order: (row, col) bits
                if column_bit:
                    column |= 1 << (node.level - 1)
                node = child.node
                break
        else:  # pragma: no cover - non-zero DDs always have a path
            raise CircuitError("malformed difference DD")
    return column


def check_state_equivalence(
    first: Circuit,
    second: Circuit,
    manager: Optional[DDManager] = None,
    initial_state: Optional[Edge] = None,
    up_to_global_phase: bool = True,
) -> EquivalenceResult:
    """Equivalence on one initial state (cheaper: matrix-vector only).

    The weaker but often sufficient check used by simulation-based
    verification flows: do both circuits map ``initial_state`` (default
    ``|0..0>``) to the same state?
    """
    if first.num_qubits != second.num_qubits:
        raise CircuitError("cannot compare circuits of different width")
    if manager is None:
        manager = algebraic_manager(first.num_qubits)
    simulator = make_simulator(manager)
    start = initial_state if initial_state is not None else manager.zero_state()
    state_first = simulator.run(first, initial_state=start).state
    state_second = simulator.run(second, initial_state=start).state
    if manager.edges_equal(state_first, state_second):
        return EquivalenceResult(True, up_to_global_phase, manager.system.name)
    if up_to_global_phase and state_first.node is state_second.node:
        w1 = manager.system.to_complex(state_first.weight)
        w2 = manager.system.to_complex(state_second.weight)
        if w2 != 0:
            factor = w1 / w2
            if abs(abs(factor) - 1.0) < 1e-9:
                return EquivalenceResult(
                    True, up_to_global_phase, manager.system.name, phase_factor=factor
                )
    return EquivalenceResult(False, up_to_global_phase, manager.system.name)
