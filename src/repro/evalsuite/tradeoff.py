r"""The accuracy-vs-compactness experiment runner (paper Section V-A).

For one benchmark circuit, :func:`run_tradeoff` simulates the same gate
sequence under

* the numerical representation for a sweep of tolerance values ``eps``
  (the paper uses ``0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3``), and
* the proposed algebraic representation(s),

recording per gate: the QMDD node count (compactness), the cumulative
CPU time, and -- for the numerical runs -- the deviation from the exact
algebraic state per the paper's footnote-8 metric.  These are exactly
the three panels of Figs. 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.dd.edge import Edge
from repro.dd.manager import (
    DDManager,
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.sim.accuracy import state_error
from repro.sim.simulator import Simulator
from repro.sim.trace import SimulationTrace

__all__ = ["TradeoffResult", "run_tradeoff", "DEFAULT_EPSILONS"]

#: The tolerance sweep of the paper's Figs. 3-5.
DEFAULT_EPSILONS: Tuple[float, ...] = (0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3)


@dataclass
class TradeoffResult:
    """All traces of one trade-off experiment, keyed by configuration.

    Configuration names: ``eps=<value>`` for numerical runs,
    ``algebraic`` (Q[omega], Algorithm 2) and ``algebraic-gcd``
    (D[omega] GCDs, Algorithm 3) for the exact ones.
    """

    circuit_name: str
    num_qubits: int
    num_gates: int
    traces: Dict[str, SimulationTrace] = field(default_factory=dict)
    final_zero: Dict[str, bool] = field(default_factory=dict)

    def configurations(self) -> List[str]:
        return list(self.traces)

    def node_series(self, config: str) -> List[int]:
        return self.traces[config].node_counts()

    def error_series(self, config: str) -> List[Optional[float]]:
        return self.traces[config].errors()

    def runtime_series(self, config: str) -> List[float]:
        return [step.cumulative_seconds for step in self.traces[config].steps]

    def bit_width_series(self, config: str) -> List[int]:
        return [step.max_bit_width for step in self.traces[config].steps]

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per configuration: the quantities the paper discusses."""
        rows = []
        for config, trace in self.traces.items():
            errors = [e for e in trace.errors() if e is not None]
            rows.append(
                {
                    "config": config,
                    "final_nodes": trace.final_node_count,
                    "peak_nodes": trace.peak_node_count,
                    "seconds": round(trace.total_seconds, 4),
                    "final_error": errors[-1] if errors else 0.0,
                    "max_error": max(errors) if errors else 0.0,
                    "zero_collapse": self.final_zero.get(config, False),
                    "max_bit_width": max(
                        (s.max_bit_width for s in trace.steps), default=0
                    ),
                }
            )
        return rows


def run_tradeoff(
    circuit: Circuit,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    include_algebraic: bool = True,
    include_gcd: bool = False,
    compute_errors: bool = True,
    record_bit_widths: bool = False,
    numeric_normalization: str = "leftmost",
    max_dense_qubits: int = 16,
) -> TradeoffResult:
    """Run the full sweep on one circuit.

    ``compute_errors`` needs the dense statevectors (bounded by
    ``max_dense_qubits``); disable it for size-only experiments like
    Fig. 2.  ``include_gcd`` adds the (slower) Algorithm-3 run used by
    the normalisation ablation.
    """
    result = TradeoffResult(
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
    )
    want_errors = compute_errors and circuit.num_qubits <= max_dense_qubits

    algebraic_states: List[Edge] = []
    algebraic_mgr: Optional[DDManager] = None
    if include_algebraic:
        algebraic_mgr = algebraic_manager(circuit.num_qubits)
        simulator = Simulator(algebraic_mgr, record_bit_widths=record_bit_widths)
        callback = (lambda _i, s: algebraic_states.append(s)) if want_errors else None
        run = simulator.run(circuit, step_callback=callback)
        result.traces["algebraic"] = run.trace
        result.final_zero["algebraic"] = run.is_zero_state

    if include_gcd:
        gcd_mgr = algebraic_gcd_manager(circuit.num_qubits)
        run = Simulator(gcd_mgr, record_bit_widths=record_bit_widths).run(circuit)
        result.traces["algebraic-gcd"] = run.trace
        result.final_zero["algebraic-gcd"] = run.is_zero_state

    numeric_states: Dict[str, List[Edge]] = {}
    numeric_mgrs: Dict[str, DDManager] = {}
    for eps in epsilons:
        config = f"eps={eps:g}"
        manager = numeric_manager(
            circuit.num_qubits, eps=eps, normalization=numeric_normalization
        )
        numeric_mgrs[config] = manager
        states: List[Edge] = []
        callback = (lambda _i, s, _states=states: _states.append(s)) if want_errors else None
        run = Simulator(manager).run(circuit, step_callback=callback)
        result.traces[config] = run.trace
        result.final_zero[config] = run.is_zero_state
        numeric_states[config] = states

    if want_errors and include_algebraic:
        _fill_errors(result, algebraic_mgr, algebraic_states, numeric_mgrs, numeric_states)
    return result


def _fill_errors(
    result: TradeoffResult,
    algebraic_mgr: DDManager,
    algebraic_states: List[Edge],
    numeric_mgrs: Dict[str, DDManager],
    numeric_states: Dict[str, List[Edge]],
) -> None:
    """Per-gate footnote-8 errors, streamed step by step to bound memory."""
    per_config_errors: Dict[str, List[float]] = {config: [] for config in numeric_states}
    for step_index, algebraic_state in enumerate(algebraic_states):
        reference = algebraic_mgr.to_statevector(algebraic_state)
        for config, states in numeric_states.items():
            numeric_vec = numeric_mgrs[config].to_statevector(states[step_index])
            per_config_errors[config].append(state_error(numeric_vec, reference))
    for config, errors in per_config_errors.items():
        result.traces[config] = result.traces[config].with_errors(errors)
