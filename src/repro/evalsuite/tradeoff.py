r"""The accuracy-vs-compactness experiment runner (paper Section V-A).

For one benchmark circuit, :func:`run_tradeoff` simulates the same gate
sequence under

* the numerical representation for a sweep of tolerance values ``eps``
  (the paper uses ``0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3``), and
* the proposed algebraic representation(s),

recording per gate: the QMDD node count (compactness), the cumulative
CPU time, and -- for the numerical runs -- the deviation from the exact
algebraic state per the paper's footnote-8 metric.  These are exactly
the three panels of Figs. 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.circuits.canonical import canonical_hash
from repro.circuits.circuit import Circuit
from repro.errors import SimulationError
from repro.sim.trace import SimulationTrace

__all__ = ["TradeoffResult", "run_tradeoff", "tradeoff_requests", "DEFAULT_EPSILONS"]

#: The tolerance sweep of the paper's Figs. 3-5.
DEFAULT_EPSILONS: Tuple[float, ...] = (0.0, 1e-20, 1e-15, 1e-10, 1e-5, 1e-3)


@dataclass
class TradeoffResult:
    """All traces of one trade-off experiment, keyed by configuration.

    Configuration names: ``eps=<value>`` for numerical runs,
    ``algebraic`` (Q[omega], Algorithm 2) and ``algebraic-gcd``
    (D[omega] GCDs, Algorithm 3) for the exact ones.
    """

    circuit_name: str
    num_qubits: int
    num_gates: int
    traces: Dict[str, SimulationTrace] = field(default_factory=dict)
    final_zero: Dict[str, bool] = field(default_factory=dict)
    #: Canonical structural identity of the swept circuit
    #: (:func:`repro.circuits.canonical_hash`) -- display names like
    #: ``grover_5q_m21`` are presentation, not identity, so archived
    #: experiment results are matched up by this hash.
    circuit_hash: str = ""

    def configurations(self) -> List[str]:
        return list(self.traces)

    def node_series(self, config: str) -> List[int]:
        return self.traces[config].node_counts()

    def error_series(self, config: str) -> List[Optional[float]]:
        return self.traces[config].errors()

    def runtime_series(self, config: str) -> List[float]:
        return [step.cumulative_seconds for step in self.traces[config].steps]

    def bit_width_series(self, config: str) -> List[int]:
        return [step.max_bit_width for step in self.traces[config].steps]

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per configuration: the quantities the paper discusses."""
        rows = []
        for config, trace in self.traces.items():
            errors = [e for e in trace.errors() if e is not None]
            rows.append(
                {
                    "config": config,
                    "final_nodes": trace.final_node_count,
                    "peak_nodes": trace.peak_node_count,
                    "seconds": round(trace.total_seconds, 4),
                    "final_error": errors[-1] if errors else 0.0,
                    "max_error": max(errors) if errors else 0.0,
                    "zero_collapse": self.final_zero.get(config, False),
                    "max_bit_width": max(
                        (s.max_bit_width for s in trace.steps), default=0
                    ),
                }
            )
        return rows


def tradeoff_requests(
    circuit: Circuit,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    include_algebraic: bool = True,
    include_gcd: bool = False,
    compute_errors: bool = True,
    record_bit_widths: bool = False,
    numeric_normalization: str = "leftmost",
    max_dense_qubits: int = 16,
) -> List[RunRequest]:
    """The sweep as a list of independent :class:`~repro.api.RunRequest`.

    Each numeric job carries the exact algebraic configuration as its
    ``error_reference``, so workers compute the footnote-8 error series
    locally -- identical values regardless of worker count, because the
    algebraic reference is exact.
    """
    want_errors = compute_errors and circuit.num_qubits <= max_dense_qubits
    reference = (
        SimulatorConfig(system="algebraic")
        if want_errors and include_algebraic
        else None
    )
    requests: List[RunRequest] = []
    if include_algebraic:
        requests.append(
            RunRequest(
                circuit,
                SimulatorConfig(system="algebraic", record_bit_widths=record_bit_widths),
                label="algebraic",
            )
        )
    if include_gcd:
        requests.append(
            RunRequest(
                circuit,
                SimulatorConfig(
                    system="algebraic-gcd", record_bit_widths=record_bit_widths
                ),
                label="algebraic-gcd",
            )
        )
    for eps in epsilons:
        requests.append(
            RunRequest(
                circuit,
                SimulatorConfig(
                    system="numeric", eps=eps, normalization=numeric_normalization
                ),
                label=f"eps={eps:g}",
                error_reference=reference,
            )
        )
    return requests


def run_tradeoff(
    circuit: Circuit,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    include_algebraic: bool = True,
    include_gcd: bool = False,
    compute_errors: bool = True,
    record_bit_widths: bool = False,
    numeric_normalization: str = "leftmost",
    max_dense_qubits: int = 16,
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> TradeoffResult:
    """Run the full sweep on one circuit.

    ``compute_errors`` needs the dense statevectors (bounded by
    ``max_dense_qubits``); disable it for size-only experiments like
    Fig. 2.  ``include_gcd`` adds the (slower) Algorithm-3 run used by
    the normalisation ablation.  The sweep points are independent jobs
    dispatched through :func:`repro.api.run_batch`; ``workers > 1``
    fans them out over a process pool with byte-identical results.
    """
    requests = tradeoff_requests(
        circuit,
        epsilons=epsilons,
        include_algebraic=include_algebraic,
        include_gcd=include_gcd,
        compute_errors=compute_errors,
        record_bit_widths=record_bit_widths,
        numeric_normalization=numeric_normalization,
        max_dense_qubits=max_dense_qubits,
    )
    batch = run_batch(requests, workers=workers, timeout=timeout, retries=retries)
    if batch.failures:
        first = batch.failures[0]
        raise SimulationError(
            f"tradeoff job {first.label!r} failed after {first.attempts} "
            f"attempt(s): [{first.error_type}] {first.message}"
        )
    result = TradeoffResult(
        circuit_name=circuit.name,
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
        circuit_hash=canonical_hash(circuit),
    )
    for job in batch.completed:
        result.traces[job.label] = job.trace
        result.final_zero[job.label] = job.is_zero_state
    return result
