"""ASCII rendering of evaluation results.

The benchmark harness prints the same *series* the paper plots
(node count / error / run-time per applied gate, Figs. 2-5) as sampled
tables, plus one summary row per configuration.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.evalsuite.tradeoff import TradeoffResult

__all__ = [
    "format_table",
    "hit_rate_rows",
    "render_metrics",
    "render_series",
    "render_summary",
    "sample_indices",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain monospace table with right-aligned numeric columns."""
    columns = [[str(header)] for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            columns[index].append(_format_cell(cell))
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    header_line = "  ".join(
        value.ljust(width) if index == 0 else value.rjust(width)
        for index, (value, width) in enumerate(zip([c[0] for c in columns], widths))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row_index in range(1, len(columns[0])):
        lines.append(
            "  ".join(
                columns[col][row_index].ljust(width)
                if col == 0
                else columns[col][row_index].rjust(width)
                for col, width in enumerate(widths)
            )
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0.0:  # repro-lint: allow[RL003] (display formatting, exact zero)
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.2e}"
        return f"{cell:.4g}"
    if cell is None:
        return "-"
    return str(cell)


def sample_indices(length: int, samples: int) -> List[int]:
    """Evenly spaced gate indices (always including first and last)."""
    if length <= 0:
        return []
    if length <= samples:
        return list(range(length))
    step = (length - 1) / (samples - 1)
    return sorted({round(index * step) for index in range(samples)})


def render_series(
    result: TradeoffResult,
    metric: str = "nodes",
    samples: int = 10,
) -> str:
    """Render one figure panel: the per-gate series, sampled.

    ``metric`` is ``nodes`` (Figs. 2/3a/4a/5a), ``error`` (3b/4b/5b),
    ``seconds`` (3c/4c/5c) or ``bits`` (the Section V-B analysis).
    """
    indices = sample_indices(result.num_gates, samples)
    headers = ["config"] + [f"g{i}" for i in indices]
    rows = []
    for config in result.configurations():
        if metric == "nodes":
            series: Sequence[object] = result.node_series(config)
        elif metric == "error":
            series = result.error_series(config)
        elif metric == "seconds":
            series = result.runtime_series(config)
        elif metric == "bits":
            series = result.bit_width_series(config)
        else:
            raise ValueError(f"unknown metric {metric!r}")
        if not any(value not in (None, 0) for value in series):
            continue
        rows.append([config] + [series[i] if i < len(series) else None for i in indices])
    title = {
        "nodes": "QMDD size (nodes) per gate",
        "error": "error ||v_num/|v_num| - v_alg|| per gate",
        "seconds": "cumulative run-time (s) per gate",
        "bits": "max integer bit-width per gate",
    }[metric]
    return f"{result.circuit_name}: {title}\n" + format_table(headers, rows)


#: Table-name prefixes of the obs registry namespace that carry the
#: uniform hits/misses schema (see docs/OBSERVABILITY.md).
_TABLE_PREFIXES = ("dd.ct.", "dd.ut.", "weights.")


def hit_rate_rows(snapshot: Mapping[str, object]) -> List[List[object]]:
    """``[table, size, hits, misses, hit_rate]`` rows from a registry snapshot.

    ``snapshot`` is the flat ``{dotted.name: value}`` mapping returned by
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`; every engine
    table (compute tables, unique tables, weight memos) reports the
    uniform counter schema, so one grouping pass recovers a hit-rate
    table for any manager.
    """
    tables: Dict[str, Dict[str, float]] = {}
    for name, value in snapshot.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        for prefix in _TABLE_PREFIXES:
            if name.startswith(prefix):
                table, _, key = name[len(prefix):].partition(".")
                tables.setdefault(prefix + table, {})[key] = float(value)
                break
    rows: List[List[object]] = []
    for table in sorted(tables):
        counters = tables[table]
        if "hits" not in counters or "misses" not in counters:
            continue
        hits, misses = counters["hits"], counters["misses"]
        probes = hits + misses
        rows.append(
            [
                table,
                int(counters.get("size", 0)),
                int(hits),
                int(misses),
                round(hits / probes, 4) if probes else None,
            ]
        )
    return rows


def render_metrics(snapshot: Mapping[str, object]) -> str:
    """The hit-rate table of one registry snapshot (``profile`` CLI)."""
    return format_table(
        ["table", "size", "hits", "misses", "hit_rate"], hit_rate_rows(snapshot)
    )


def render_summary(result: TradeoffResult) -> str:
    """The per-configuration summary table."""
    headers = [
        "config",
        "final_nodes",
        "peak_nodes",
        "seconds",
        "final_error",
        "max_error",
        "zero_collapse",
        "max_bit_width",
    ]
    rows = [[row[h] for h in headers] for row in result.summary_rows()]
    return f"{result.circuit_name}: summary\n" + format_table(headers, rows)
