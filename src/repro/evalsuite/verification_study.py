r"""Verification reliability vs tolerance (paper Section V-B).

"For instance, checking equivalence of two matrices or vectors then
boils down to comparing the root nodes of the corresponding QMDDs" --
but only the exact representation makes that comparison trustworthy.
This study quantifies the verification failure modes of the numerical
representation across a tolerance sweep:

* **false negatives** -- genuinely equivalent circuit pairs (rewrite
  identities) whose float DDs differ structurally because tiny rounding
  deviations were not identified (small ``eps``);
* **false positives** -- inequivalent pairs (a single injected phase
  fault) that a coarse tolerance identifies anyway (large ``eps``).

The algebraic representation is asserted to produce zero errors of
either kind on the same pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.circuits.circuit import Circuit, Operation
from repro.circuits.gates import X
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.verify.equivalence import check_equivalence
from repro.verify.faults import Fault, inject_fault

__all__ = ["VerificationRow", "make_pairs", "verification_reliability"]


@dataclass(frozen=True)
class VerificationRow:
    """Verification outcomes for one representation configuration.

    ``subtle_false_positives`` counts inequivalent pairs that differ by
    a rotation *below* the tolerance (``p(1e-4)``); it is ``None`` for
    the algebraic row because sub-tolerance deviations cannot even be
    expressed there -- exactly representable circuits differ by a
    discrete minimum gap, which is the structural reason the exact
    checker has no false-positive regime at all.
    """

    config: str
    equivalent_pairs: int
    false_negatives: int
    inequivalent_pairs: int
    false_positives: int
    subtle_false_positives: object = None

    @property
    def is_sound_and_complete(self) -> bool:
        return self.false_negatives == 0 and self.false_positives == 0


def _rewrite_czs(circuit: Circuit) -> Circuit:
    """A sound rewrite: every (multi-)controlled Z via H-conjugated X."""
    rewritten = Circuit(circuit.num_qubits, name=f"{circuit.name}_rw")
    for operation in circuit:
        if operation.gate.name == "z" and operation.controls:
            target = operation.target
            rewritten.h(target)
            rewritten.operations.append(
                Operation(X, target, operation.controls, operation.negative_controls)
            )
            rewritten.h(target)
        else:
            rewritten.operations.append(operation)
    return rewritten


def make_pairs(
    num_qubits: int = 4, num_pairs: int = 4, seed: int = 0
) -> Tuple[List[Tuple[Circuit, Circuit]], List[Tuple[Circuit, Circuit]]]:
    """Build equivalent and inequivalent circuit pairs for the study.

    Equivalent pairs: a random Clifford+T circuit against its
    CZ-rewritten form (exactly the same unitary, different gate lists).
    Inequivalent pairs: the circuit against itself with one injected
    ``T -> Tdg`` replacement fault (a 2e-1-scale deviation on one matrix
    entry -- well above double rounding, so any *sound* checker must
    catch it; coarse tolerances may not).
    """
    return _make_pairs_impl(num_qubits, num_pairs, seed)[:2]


def _make_pairs_impl(num_qubits: int, num_pairs: int, seed: int):
    rng = random.Random(seed)
    equivalent, inequivalent, subtle = [], [], []
    for index in range(num_pairs):
        circuit = Circuit(num_qubits, name=f"pair{index}")
        for _ in range(14):
            kind = rng.randrange(6)
            qubit = rng.randrange(num_qubits)
            if kind == 0:
                circuit.h(qubit)
            elif kind == 1:
                circuit.t(qubit)
            elif kind == 2:
                circuit.cz(qubit, (qubit + 1) % num_qubits)
            elif kind == 3:
                circuit.mcz([q for q in range(num_qubits) if q != qubit][:2], qubit)
            elif kind == 4:
                circuit.cx(qubit, (qubit + 1) % num_qubits)
            else:
                circuit.s(qubit)
        equivalent.append((circuit, _rewrite_czs(circuit)))
        t_positions = [
            i for i, op in enumerate(circuit) if op.gate.name == "t"
        ]
        if t_positions:
            faulty = inject_fault(circuit, Fault("replace", t_positions[0]))
        else:
            faulty = Circuit(num_qubits, name=f"{circuit.name}_faulty")
            faulty.operations = list(circuit.operations)
            faulty.tdg(0)
        inequivalent.append((circuit, faulty))
        # Subtle fault: a rotation far below coarse tolerances (and
        # inexpressible in the exact representation -- by design).
        whispered = Circuit(num_qubits, name=f"{circuit.name}_subtle")
        whispered.operations = list(circuit.operations)
        whispered.p(1e-4, rng.randrange(num_qubits))
        subtle.append((circuit, whispered))
    return equivalent, inequivalent, subtle


def verification_reliability(
    epsilons: Sequence[float] = (0.0, 1e-10, 1e-2),
    num_qubits: int = 4,
    num_pairs: int = 4,
    seed: int = 0,
) -> List[VerificationRow]:
    """Run the study: one row per representation configuration."""
    equivalent, inequivalent, subtle = _make_pairs_impl(num_qubits, num_pairs, seed)
    rows: List[VerificationRow] = []

    def evaluate(config: str, manager_factory, check_subtle: bool) -> VerificationRow:
        false_negatives = sum(
            1
            for left, right in equivalent
            if not check_equivalence(left, right, manager=manager_factory())
        )
        false_positives = sum(
            1
            for left, right in inequivalent
            if check_equivalence(left, right, manager=manager_factory())
        )
        subtle_fp = None
        if check_subtle:
            subtle_fp = sum(
                1
                for left, right in subtle
                if check_equivalence(left, right, manager=manager_factory())
            )
        return VerificationRow(
            config=config,
            equivalent_pairs=len(equivalent),
            false_negatives=false_negatives,
            inequivalent_pairs=len(inequivalent),
            false_positives=false_positives,
            subtle_false_positives=subtle_fp,
        )

    rows.append(
        evaluate("algebraic", lambda: algebraic_manager(num_qubits), check_subtle=False)
    )
    for eps in epsilons:
        rows.append(
            evaluate(
                f"eps={eps:g}",
                lambda eps=eps: numeric_manager(num_qubits, eps=eps),
                check_subtle=True,
            )
        )
    return rows
