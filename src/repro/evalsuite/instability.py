r"""Detecting numerical instability in error traces (paper Fig. 3b).

Discussing Grover at ``eps = 1e-15`` the paper notes: "while choosing
eps = 1e-15 yields a rather small numerical error, the *peaks* in the
graph indicate an undesired numerical instability in the multiplication
algorithm that may lead to severe rounding errors in certain
simulations."  This module quantifies that observation: a *peak* is a
sample that exceeds the local background error by a large factor, and a
series' instability is summarised by its peak count and peak-to-median
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["InstabilityReport", "analyze_error_series"]


@dataclass(frozen=True)
class InstabilityReport:
    """Peak statistics of one per-gate error series."""

    samples: int
    median_error: float
    max_error: float
    peak_indices: tuple
    peak_factor: float

    @property
    def num_peaks(self) -> int:
        return len(self.peak_indices)

    @property
    def is_unstable(self) -> bool:
        """True when isolated samples tower over the background error.

        A smoothly (linearly) growing error has ``peak_factor`` close to
        the trend ratio; factors of 100x and beyond signal the
        instability events the paper describes.
        """
        return self.peak_factor > 100.0 and self.num_peaks > 0


def analyze_error_series(
    errors: Sequence[Optional[float]],
    window: int = 25,
    threshold: float = 100.0,
) -> InstabilityReport:
    """Find error peaks relative to a rolling median background.

    A sample is a *peak* when it exceeds ``threshold`` times the median
    of its surrounding ``window`` (excluding itself).  Zero backgrounds
    fall back to the global median; an all-zero series reports no
    instability.
    """
    values = np.array(
        [value for value in errors if value is not None], dtype=float
    )
    if values.size == 0:
        return InstabilityReport(0, 0.0, 0.0, (), 1.0)
    global_median = float(np.median(values))
    peaks: List[int] = []
    worst_factor = 1.0
    for index, value in enumerate(values):
        low = max(0, index - window)
        high = min(values.size, index + window + 1)
        neighbourhood = np.concatenate([values[low:index], values[index + 1 : high]])
        background = float(np.median(neighbourhood)) if neighbourhood.size else 0.0
        if background <= 0.0:
            background = global_median
        if background <= 0.0:
            continue
        factor = value / background
        if factor > worst_factor:
            worst_factor = factor
        if factor >= threshold:
            peaks.append(index)
    return InstabilityReport(
        samples=int(values.size),
        median_error=global_median,
        max_error=float(values.max()),
        peak_indices=tuple(peaks),
        peak_factor=worst_factor,
    )
