r"""Per-figure experiment drivers (paper Section V).

Each ``fig*`` function reproduces one figure of the paper's evaluation
with laptop-scale default parameters (DESIGN.md Section 3: the paper
used 15-qubit Grover on a 3.8 GHz C implementation; pure Python keeps
the exponential ``eps = 0`` runs feasible at smaller widths without
changing the qualitative shapes).  ``scale="paper"`` selects the
original sizes for users with time to spare.

Every driver returns a
:class:`~repro.evalsuite.tradeoff.TradeoffResult`;
:func:`shape_checks` distils the paper's qualitative claims into named
booleans, which the benchmark harness prints and the integration tests
assert.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.algorithms.bwt import bwt_circuit
from repro.algorithms.grover import grover_circuit
from repro.algorithms.gse import gse_circuit
from repro.evalsuite.tradeoff import DEFAULT_EPSILONS, TradeoffResult, run_tradeoff

__all__ = [
    "fig2_gse_size",
    "fig3_grover",
    "fig4_bwt",
    "fig5_gse",
    "shape_checks",
]

#: Fig. 2 uses its own epsilon set (size-only experiment).
FIG2_EPSILONS: Tuple[float, ...] = (0.0, 1e-10, 1e-7, 1e-4, 1e-3)


def fig3_grover(
    num_qubits: int = 7,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    scale: str = "default",
    workers: int = 1,
) -> TradeoffResult:
    """Fig. 3: Grover's algorithm -- size / error / run-time per gate."""
    if scale == "paper":
        num_qubits = 15
    if marked is None:
        marked = (1 << num_qubits) * 2 // 3  # arbitrary fixed element
    circuit = grover_circuit(num_qubits, marked, iterations=iterations)
    return run_tradeoff(circuit, epsilons=epsilons, workers=workers)


def fig4_bwt(
    depth: int = 2,
    steps: int = 6,
    seed: int = 0,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    scale: str = "default",
    workers: int = 1,
) -> TradeoffResult:
    """Fig. 4: the Binary Welded Tree walk."""
    if scale == "paper":
        depth, steps = 4, 20
    circuit = bwt_circuit(depth=depth, steps=steps, seed=seed)
    return run_tradeoff(circuit, epsilons=epsilons, workers=workers)


def fig5_gse(
    num_sites: int = 3,
    precision_bits: int = 3,
    time: float = 0.5,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    max_words: int = 8000,
    scale: str = "default",
    workers: int = 1,
) -> TradeoffResult:
    """Fig. 5: GSE (Clifford+T compiled) -- includes the bit-width
    series explaining the algebraic overhead (Section V-B)."""
    if scale == "paper":
        num_sites, precision_bits = 4, 5
    circuit = gse_circuit(
        num_sites=num_sites,
        precision_bits=precision_bits,
        time=time,
        max_words=max_words,
    )
    return run_tradeoff(circuit, epsilons=epsilons, record_bit_widths=True, workers=workers)


def fig2_gse_size(
    num_sites: int = 3,
    precision_bits: int = 3,
    time: float = 0.5,
    epsilons: Sequence[float] = FIG2_EPSILONS,
    max_words: int = 8000,
    scale: str = "default",
    workers: int = 1,
) -> TradeoffResult:
    """Fig. 2: QMDD size while simulating GSE, per tolerance value.

    A size-only experiment (no error column), highlighting the two
    extremes the paper calls out: ``eps = 0`` large but maximally
    precise, ``eps = 1e-3`` collapsing to the all-zero vector.
    """
    if scale == "paper":
        num_sites, precision_bits = 4, 5
    circuit = gse_circuit(
        num_sites=num_sites,
        precision_bits=precision_bits,
        time=time,
        max_words=max_words,
    )
    return run_tradeoff(circuit, epsilons=epsilons, compute_errors=True, workers=workers)


def shape_checks(result: TradeoffResult) -> Dict[str, bool]:
    """The paper's qualitative claims as named booleans.

    Only checks applicable to the present configurations are emitted:

    ``high_accuracy_is_largest``
        the ``eps = 0`` DD is at least as large (peak) as every
        moderate-accuracy numeric DD (Figs. 3a/4a/5a);
    ``algebraic_not_larger_than_eps0``
        the algebraic DD never exceeds the ``eps = 0`` peak size --
        exact redundancy detection can only help compactness;
    ``large_eps_corrupts``
        the coarsest tolerance yields a grossly wrong result (error
        above 0.5 or a zero-collapse; Fig. 3b "completely useless");
    ``moderate_eps_accurate``
        some intermediate tolerance stays accurate (error < 1e-4)
        while being more compact than ``eps = 0``;
    ``algebraic_exact``
        the algebraic run never collapses and reports no error column
        (it *is* the reference).
    """
    checks: Dict[str, bool] = {}
    numeric_configs = [c for c in result.configurations() if c.startswith("eps=")]
    if "eps=0" in result.traces:
        eps0_peak = result.traces["eps=0"].peak_node_count
        moderates = [
            c for c in numeric_configs
            if c not in ("eps=0", "eps=1e-20") and not result.final_zero.get(c, False)
        ]
        if moderates:
            checks["high_accuracy_is_largest"] = all(
                result.traces[c].peak_node_count <= eps0_peak for c in moderates
            )
        if "algebraic" in result.traces:
            checks["algebraic_not_larger_than_eps0"] = (
                result.traces["algebraic"].peak_node_count <= eps0_peak
            )
    coarse = [c for c in numeric_configs if _eps_of(c) >= 1e-5]
    if coarse:
        checks["large_eps_corrupts"] = any(
            result.final_zero.get(c, False) or _final_error(result, c) > 0.5
            for c in coarse
        )
    fine = [c for c in numeric_configs if 0.0 < _eps_of(c) <= 1e-10]
    if fine and "eps=0" in result.traces:
        checks["moderate_eps_accurate"] = any(
            _final_error(result, c) < 1e-4
            and result.traces[c].peak_node_count
            <= result.traces["eps=0"].peak_node_count
            for c in fine
        )
    if "algebraic" in result.traces:
        checks["algebraic_exact"] = not result.final_zero.get("algebraic", False)
    return checks


def _eps_of(config: str) -> float:
    return float(config.split("=", 1)[1])


def _final_error(result: TradeoffResult, config: str) -> float:
    errors = [e for e in result.traces[config].errors() if e is not None]
    return errors[-1] if errors else 0.0
