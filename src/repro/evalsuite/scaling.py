r"""Scalability experiment: DD size vs qubit count.

Supports the paper's conclusion paragraph: the algebraic representation
"has no effect on the scalability in general", whereas demanding the
best floating-point accuracy (``eps = 0``) destroys scalability because
missed redundancies make the DD grow with the state space.  For Grover
the exact state is a two-valued vector, so the algebraic DD grows
*linearly* with the qubit count while the ``eps = 0`` DD grows
*exponentially*.

Every (qubit count, representation) pair is an independent job, so the
whole grid dispatches through :func:`repro.api.run_batch` and scales
across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.algorithms.grover import grover_circuit
from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.errors import SimulationError

__all__ = ["ScalingRow", "grover_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    """Peak DD sizes for one qubit count."""

    num_qubits: int
    num_gates: int
    algebraic_peak: int
    eps0_peak: int
    algebraic_seconds: float
    eps0_seconds: float


def grover_scaling(
    qubit_range: Sequence[int] = (4, 5, 6, 7, 8), workers: int = 1
) -> List[ScalingRow]:
    """Peak node counts of algebraic vs ``eps = 0`` Grover runs."""
    requests: List[RunRequest] = []
    for num_qubits in qubit_range:
        circuit = grover_circuit(num_qubits, (1 << num_qubits) * 2 // 3)
        requests.append(
            RunRequest(circuit, SimulatorConfig(system="algebraic"), label=f"alg/{num_qubits}")
        )
        requests.append(
            RunRequest(
                circuit,
                SimulatorConfig(system="numeric", eps=0.0),
                label=f"eps0/{num_qubits}",
            )
        )
    batch = run_batch(requests, workers=workers)
    if batch.failures:
        first = batch.failures[0]
        raise SimulationError(
            f"scaling job {first.label!r} failed: [{first.error_type}] {first.message}"
        )
    rows: List[ScalingRow] = []
    for algebraic, numeric in zip(batch.results[::2], batch.results[1::2]):
        assert algebraic is not None and numeric is not None
        rows.append(
            ScalingRow(
                num_qubits=algebraic.num_qubits,
                num_gates=algebraic.num_gates,
                algebraic_peak=algebraic.trace.peak_node_count,
                eps0_peak=numeric.trace.peak_node_count,
                algebraic_seconds=algebraic.seconds,
                eps0_seconds=numeric.seconds,
            )
        )
    return rows
