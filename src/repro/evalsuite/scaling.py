r"""Scalability experiment: DD size vs qubit count.

Supports the paper's conclusion paragraph: the algebraic representation
"has no effect on the scalability in general", whereas demanding the
best floating-point accuracy (``eps = 0``) destroys scalability because
missed redundancies make the DD grow with the state space.  For Grover
the exact state is a two-valued vector, so the algebraic DD grows
*linearly* with the qubit count while the ``eps = 0`` DD grows
*exponentially*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.algorithms.grover import grover_circuit
from repro.dd.manager import algebraic_manager, numeric_manager
from repro.sim.simulator import Simulator

__all__ = ["ScalingRow", "grover_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    """Peak DD sizes for one qubit count."""

    num_qubits: int
    num_gates: int
    algebraic_peak: int
    eps0_peak: int
    algebraic_seconds: float
    eps0_seconds: float


def grover_scaling(qubit_range: Sequence[int] = (4, 5, 6, 7, 8)) -> List[ScalingRow]:
    """Peak node counts of algebraic vs ``eps = 0`` Grover runs."""
    rows: List[ScalingRow] = []
    for num_qubits in qubit_range:
        circuit = grover_circuit(num_qubits, (1 << num_qubits) * 2 // 3)
        started = time.perf_counter()
        algebraic = Simulator(algebraic_manager(num_qubits)).run(circuit)
        algebraic_seconds = time.perf_counter() - started
        started = time.perf_counter()
        numeric = Simulator(numeric_manager(num_qubits, eps=0.0)).run(circuit)
        eps0_seconds = time.perf_counter() - started
        rows.append(
            ScalingRow(
                num_qubits=num_qubits,
                num_gates=len(circuit),
                algebraic_peak=algebraic.trace.peak_node_count,
                eps0_peak=numeric.trace.peak_node_count,
                algebraic_seconds=algebraic_seconds,
                eps0_seconds=eps0_seconds,
            )
        )
    return rows
