r"""Machine-precision sensitivity of the error floor (Section V-A).

The paper observes that "even when using a tolerance value of eps = 0
... there is a lower bound to the numerical error that is never
underrun", and that this floor is a property of the machine precision:
"even when scaling up the precision/bitwidth of the floating-point
numbers ... the same effect can be expected".  This experiment
demonstrates the claim from the cheap direction -- *reducing* the
precision to IEEE-754 binary32 raises the floor by roughly the
single/double epsilon ratio (~1e9), while the algebraic representation
has no floor at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.api import SimulatorConfig, make_simulator
from repro.circuits.circuit import Circuit
from repro.sim.accuracy import state_error

__all__ = ["PrecisionRow", "precision_floor_experiment"]


@dataclass(frozen=True)
class PrecisionRow:
    """Error floor of one float precision on one workload."""

    precision: str
    final_error: float
    max_error: float
    peak_nodes: int


def precision_floor_experiment(
    circuit: Circuit,
    precisions: Sequence[str] = ("double", "single"),
    eps: float = 0.0,
) -> List[PrecisionRow]:
    """Per-precision error floors against the exact algebraic result."""
    reference_manager = SimulatorConfig(system="algebraic").create_manager(
        circuit.num_qubits
    )
    reference_states = []
    make_simulator(reference_manager).run(
        circuit, step_callback=lambda _i, s: reference_states.append(s)
    )
    rows: List[PrecisionRow] = []
    for precision in precisions:
        config = SimulatorConfig(system="numeric", eps=eps, precision=precision)
        manager = config.create_manager(circuit.num_qubits)
        states = []
        make_simulator(manager, config).run(
            circuit, step_callback=lambda _i, s: states.append(s)
        )
        errors = [
            state_error(
                manager.to_statevector(state),
                reference_manager.to_statevector(reference),
            )
            for state, reference in zip(states, reference_states)
        ]
        peak = max(
            manager.node_count(state) for state in states
        )
        rows.append(
            PrecisionRow(
                precision=precision,
                final_error=errors[-1],
                max_error=max(errors),
                peak_nodes=peak,
            )
        )
    return rows
