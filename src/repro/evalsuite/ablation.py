r"""Normalisation-scheme ablation (paper Section V-B, last paragraphs).

The paper reports that the ``Q[omega]``-inverse scheme (Algorithm 2)
"always outperformed" the GCD scheme (Algorithm 3), attributing this to
the fraction of *trivial* (weight-1) edges: at least half under
Algorithm 2, very few under the GCD scheme whose factorisations leave
"many weights with large coefficients".  This module measures exactly
those quantities for any benchmark circuit, plus the numeric
normalisation variants (leftmost vs largest-magnitude [29]) for
completeness.

Each scheme is one independent job dispatched through
:func:`repro.api.run_batch`; the weight-census metrics are recomputed
in the parent from the job's serialized final state (the serialize
round-trip is canonical, so the census is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.api import RunRequest, SimulatorConfig, run_batch
from repro.circuits.circuit import Circuit
from repro.dd.metrics import collect_metrics
from repro.errors import SimulationError

__all__ = ["AblationRow", "run_normalization_ablation"]


@dataclass(frozen=True)
class AblationRow:
    """Measurements for one normalisation scheme on one circuit."""

    scheme: str
    seconds: float
    final_nodes: int
    peak_nodes: int
    trivial_weight_fraction: float
    distinct_weights: int
    max_bit_width: int


def run_normalization_ablation(
    circuit: Circuit,
    include_gcd: bool = True,
    numeric_eps: float = 1e-12,
    workers: int = 1,
) -> List[AblationRow]:
    """Simulate ``circuit`` under every normalisation scheme.

    Returns one row per scheme, sorted as: Algorithm 2 (Q[omega]),
    Algorithm 3 (GCD, optional -- it is the slow one), numeric leftmost,
    numeric largest-magnitude.
    """
    configurations: List[Tuple[str, SimulatorConfig]] = [
        ("algebraic-q (Alg.2)", SimulatorConfig(system="algebraic"))
    ]
    if include_gcd:
        configurations.append(
            ("algebraic-gcd (Alg.3)", SimulatorConfig(system="algebraic-gcd"))
        )
    configurations.append(
        ("numeric leftmost", SimulatorConfig(system="numeric", eps=numeric_eps))
    )
    configurations.append(
        (
            "numeric max-magnitude [29]",
            SimulatorConfig(
                system="numeric", eps=numeric_eps, normalization="max-magnitude"
            ),
        )
    )
    requests = [
        RunRequest(circuit, config, label=name) for name, config in configurations
    ]
    batch = run_batch(requests, workers=workers)
    if batch.failures:
        first = batch.failures[0]
        raise SimulationError(
            f"ablation job {first.label!r} failed: [{first.error_type}] {first.message}"
        )
    rows: List[AblationRow] = []
    for result in batch.completed:
        manager, state = result.restore_state()
        metrics = collect_metrics(manager, state)
        rows.append(
            AblationRow(
                scheme=result.label,
                seconds=result.seconds,
                final_nodes=result.trace.final_node_count,
                peak_nodes=result.trace.peak_node_count,
                trivial_weight_fraction=metrics.trivial_weight_fraction,
                distinct_weights=metrics.distinct_weights,
                max_bit_width=metrics.max_bit_width,
            )
        )
    return rows
