r"""Normalisation-scheme ablation (paper Section V-B, last paragraphs).

The paper reports that the ``Q[omega]``-inverse scheme (Algorithm 2)
"always outperformed" the GCD scheme (Algorithm 3), attributing this to
the fraction of *trivial* (weight-1) edges: at least half under
Algorithm 2, very few under the GCD scheme whose factorisations leave
"many weights with large coefficients".  This module measures exactly
those quantities for any benchmark circuit, plus the numeric
normalisation variants (leftmost vs largest-magnitude [29]) for
completeness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.circuits.circuit import Circuit
from repro.dd.manager import (
    algebraic_gcd_manager,
    algebraic_manager,
    numeric_manager,
)
from repro.dd.metrics import collect_metrics
from repro.sim.simulator import Simulator

__all__ = ["AblationRow", "run_normalization_ablation"]


@dataclass(frozen=True)
class AblationRow:
    """Measurements for one normalisation scheme on one circuit."""

    scheme: str
    seconds: float
    final_nodes: int
    peak_nodes: int
    trivial_weight_fraction: float
    distinct_weights: int
    max_bit_width: int


def run_normalization_ablation(
    circuit: Circuit,
    include_gcd: bool = True,
    numeric_eps: float = 1e-12,
) -> List[AblationRow]:
    """Simulate ``circuit`` under every normalisation scheme.

    Returns one row per scheme, sorted as: Algorithm 2 (Q[omega]),
    Algorithm 3 (GCD, optional -- it is the slow one), numeric leftmost,
    numeric largest-magnitude.
    """
    configurations = [("algebraic-q (Alg.2)", lambda: algebraic_manager(circuit.num_qubits))]
    if include_gcd:
        configurations.append(
            ("algebraic-gcd (Alg.3)", lambda: algebraic_gcd_manager(circuit.num_qubits))
        )
    configurations.append(
        (
            "numeric leftmost",
            lambda: numeric_manager(circuit.num_qubits, eps=numeric_eps),
        )
    )
    configurations.append(
        (
            "numeric max-magnitude [29]",
            lambda: numeric_manager(
                circuit.num_qubits, eps=numeric_eps, normalization="max-magnitude"
            ),
        )
    )
    rows: List[AblationRow] = []
    for name, factory in configurations:
        manager = factory()
        started = time.perf_counter()
        result = Simulator(manager).run(circuit)
        elapsed = time.perf_counter() - started
        metrics = collect_metrics(manager, result.state)
        rows.append(
            AblationRow(
                scheme=name,
                seconds=elapsed,
                final_nodes=result.trace.final_node_count,
                peak_nodes=result.trace.peak_node_count,
                trivial_weight_fraction=metrics.trivial_weight_fraction,
                distinct_weights=metrics.distinct_weights,
                max_bit_width=metrics.max_bit_width,
            )
        )
    return rows
